"""Section 7.2: I/O within transactions — the logging microbenchmark.

"Each thread repeatedly performs a small computation within a transaction
and outputs a message into a log" via the transactional I/O library
(buffered output + commit handler).  The paper reports scalable
performance: throughput must grow with thread count, because the commit
handler serializes only the tiny metadata update, not the computation.
"""

from repro.common.params import paper_config
from repro.harness.experiment import scaling_curve
from repro.harness.report import format_scaling

from repro.workloads import IoLogWorkload

from benchmarks.conftest import banner

COUNTS = [1, 2, 4, 8, 16]


def run_scaling():
    return scaling_curve(
        lambda n: IoLogWorkload(n_threads=n),
        counts=COUNTS,
        config_factory=lambda n: paper_config(n_cpus=n),
        items_of=lambda w: w.n_threads * w._records,
    )


def test_figure6_transactional_io_scales(benchmark, show):
    points = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    show(banner("Section 7.2: transactional I/O microbenchmark"),
         format_scaling(points, "log records vs CPUs",
                        item_label="records"))
    by_n = {p.n: p for p in points}
    # Scalable: monotonic throughput growth, substantial at 8 and 16 CPUs.
    for small, large in zip(COUNTS, COUNTS[1:]):
        assert by_n[large].throughput > by_n[small].throughput, (
            f"throughput fell from {small} to {large} threads")
    assert by_n[8].throughput >= 3.0 * by_n[1].throughput
    assert by_n[16].throughput >= 4.0 * by_n[1].throughput


def test_figure6_output_is_exactly_once(benchmark, show):
    """The correctness half: buffered transactional output loses and
    duplicates nothing even under conflicts."""
    def run():
        workload = IoLogWorkload(n_threads=8)
        machine = workload.run(paper_config(n_cpus=8))
        return workload, machine

    workload, machine = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = workload.n_threads * workload._records
    show(banner("transactional I/O: exactly-once check"),
         f"records in log: {len(workload.log.data)} (expected {expected}); "
         f"flushes: {machine.stats.total('txio.flushes')}")
    assert len(workload.log.data) == expected
    assert len(set(workload.log.data)) == expected
