"""Table 1: the architectural state needed for rich HTM semantics.

Regenerates the paper's state inventory from the implementation itself
(registers on :class:`~repro.isa.state.IsaState`, TCB fields in
:mod:`repro.isa.tcb`) and asserts every published item exists.
"""

from repro.common.params import functional_config
from repro.harness.inventory import TABLE1
from repro.harness.report import format_table
from repro.isa import tcb
from repro.sim.engine import Machine

from benchmarks.conftest import banner


def test_table1_state_inventory(benchmark, show):
    def check():
        machine = Machine(functional_config(n_cpus=1))
        isa = machine.cpus[0].isa
        implemented = {}
        for name, storage, _ in TABLE1:
            if storage == "Reg":
                implemented[name] = hasattr(isa, name)
            else:
                field = {"xchptr": tcb.CH_TOP, "xvhptr": tcb.VH_TOP,
                         "xahptr": tcb.AH_TOP}[name]
                implemented[name] = isinstance(field, int)
        # xstatus is a derived register view over the HTM engine.
        implemented["xstatus"] = isinstance(
            machine.cpus[0].xstatus(), dict)
        return implemented

    implemented = benchmark.pedantic(check, rounds=1, iterations=1)
    rows = [
        (name, storage, "yes" if implemented[name] else "MISSING",
         description)
        for name, storage, description in TABLE1
    ]
    show(banner("Table 1: state needed for rich HTM semantics"),
         format_table(["state", "type", "implemented", "description"],
                      rows))
    assert all(implemented.values())

    # The derived xstatus register carries the published fields.
    machine = Machine(functional_config(n_cpus=1))
    status = machine.cpus[0].xstatus()
    assert set(status) == {"txid", "type", "status", "level"}
