"""Ablation (paper §2.2/§6.1): conflict-detection and versioning policies.

The paper's design space: lazy detection with a write-buffer (the
evaluated TCC-style machine) vs eager detection (UTM/LogTM-style) with
either a write-buffer or an undo-log.  This ablation runs shared-counter
and B-tree pressure workloads under all three legal combinations and
reports cycles, violations, and stalls.  All must produce the same final
state; their performance signatures differ (eager machines pay stalls,
lazy machines pay doomed execution).
"""

import random

from repro.common.params import functional_config, paper_config
from repro.harness.report import format_table
from repro.mem.btree import BTree
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

from benchmarks.conftest import banner

MODES = [
    ("lazy + write-buffer", dict(detection="lazy",
                                 versioning="write_buffer")),
    ("eager + write-buffer", dict(detection="eager",
                                  versioning="write_buffer")),
    ("eager + undo-log", dict(detection="eager", versioning="undo_log")),
]

COUNTER = 0xE_0000


def counter_pressure(config):
    machine = Machine(config)
    runtime = Runtime(machine)

    def program(t):
        def body(t):
            value = yield t.load(COUNTER)
            yield t.alu(30)
            yield t.store(COUNTER, value + 1)

        for _ in range(8):
            yield from runtime.atomic(t, body)
            yield t.alu(40)

    for cpu in range(config.n_cpus):
        runtime.spawn(program, cpu_id=cpu)
    machine.run(max_cycles=100_000_000)
    return machine


def btree_pressure(config):
    machine = Machine(config)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    tree = BTree(arena, capacity_nodes=300)
    keys = list(range(1, 129))
    random.Random(5).shuffle(keys)
    chunks = [keys[i::config.n_cpus] for i in range(config.n_cpus)]

    def program(t, chunk):
        for key in chunk:
            def body(t, key=key):
                yield from tree.insert(t, key, key)
            yield from runtime.atomic(t, body)

    for cpu, chunk in enumerate(chunks):
        runtime.spawn(program, chunk, cpu_id=cpu)
    machine.run(max_cycles=200_000_000)
    assert [k for k, _ in tree.items_host(machine.memory)] == sorted(keys)
    return machine


def run_ablation():
    results = {}
    for label, overrides in MODES:
        config = paper_config(n_cpus=8, **overrides)
        machine = counter_pressure(config)
        assert machine.memory.read(COUNTER) == 8 * 8
        results[("counter", label)] = machine
        results[("btree", label)] = btree_pressure(
            paper_config(n_cpus=4, **overrides))
    return results


def test_detection_versioning_ablation(benchmark, show):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for workload in ("counter", "btree"):
        for label, _ in MODES:
            machine = results[(workload, label)]
            stats = machine.stats
            rows.append((
                workload,
                label,
                stats.get("cycles"),
                stats.total("htm.violations_received"),
                stats.get("htm.conflicts.stalls"),
                stats.total("htm.restarts"),
            ))
    show(banner("Ablation: conflict detection x versioning"),
         format_table(
             ["workload", "machine", "cycles", "violations",
              "stalls", "restarts"], rows))

    # Signature checks: the stall mechanism exists only on eager machines.
    for workload in ("counter", "btree"):
        lazy = results[(workload, "lazy + write-buffer")]
        assert lazy.stats.get("htm.conflicts.stalls") == 0
    # Each machine completed the identical work (verified in run_ablation)
    # within a sane factor of the others.
    for workload in ("counter", "btree"):
        cycles = [results[(workload, label)].stats.get("cycles")
                  for label, _ in MODES]
        assert max(cycles) < 12 * min(cycles)
