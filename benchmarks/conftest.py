"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the experiment on the simulated machine, prints the
same rows/series the paper reports, and asserts the paper's *qualitative
shape* (who wins, roughly by how much, where the crossovers are).
pytest-benchmark records the harness wall time; the interesting output is
the simulated-cycle data, which is also replayed after the run summary
(so ``pytest benchmarks/ --benchmark-only`` shows every regenerated
table without ``-s``).
"""

from __future__ import annotations

import pytest

#: Everything shown by benchmarks this session, replayed at the end.
_collected_reports = []


def banner(text):
    line = "=" * max(64, len(text) + 4)
    return f"\n{line}\n{text}\n{line}"


@pytest.fixture
def show():
    """Print a regenerated table/figure and queue it for the
    end-of-session replay."""
    def _show(*chunks):
        print()
        for chunk in chunks:
            print(chunk)
            _collected_reports.append(str(chunk))
    return _show


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected_reports:
        return
    terminalreporter.section("regenerated tables and figures")
    for chunk in _collected_reports:
        for line in chunk.splitlines():
            terminalreporter.write_line(line)
