"""Ablation: memory-substrate fidelity and §6.3.3 double buffering.

Runs representative workloads under the simple coherence model, the MSI
model (cache-to-cache transfers, upgrades, writebacks), and with
double-buffered commits.  Functional results must be identical; the
timing signatures differ in the expected directions (MSI serves sharing
misses from peer caches; double buffering hides the committer's
broadcast latency).
"""

from repro.common.params import paper_config
from repro.harness.experiment import run_workload
from repro.harness.report import format_table
from repro.workloads import JbbWorkload, Mp3dKernel, SwimKernel

from benchmarks.conftest import banner

VARIANTS = [
    ("simple", dict()),
    ("msi", dict(coherence="msi")),
    ("simple + dblbuf", dict(double_buffering=True)),
    ("msi + dblbuf", dict(coherence="msi", double_buffering=True)),
]

WORKLOADS = [
    ("swim", lambda: SwimKernel(n_threads=8)),
    ("mp3d", lambda: Mp3dKernel(n_threads=8)),
    ("SPECjbb2000-closed", lambda: JbbWorkload(n_threads=8)),
]


def run_ablation():
    results = {}
    for wname, factory in WORKLOADS:
        for vname, overrides in VARIANTS:
            config = paper_config(n_cpus=8, **overrides)
            results[(wname, vname)] = run_workload(
                factory(), config, config_label=vname)
    return results


def test_coherence_and_double_buffering_ablation(benchmark, show):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for wname, _ in WORKLOADS:
        for vname, _ in VARIANTS:
            run = results[(wname, vname)]
            rows.append((
                wname,
                vname,
                run.cycles,
                run.stat_total("msi.cache_to_cache"),
                run.stat_total("htm.hidden_commit_cycles"),
            ))
    show(banner("Ablation: coherence model x double buffering (8 CPUs)"),
         format_table(["workload", "machine", "cycles",
                       "cache-to-cache", "hidden commit cycles"], rows))

    for wname, _ in WORKLOADS:
        baseline = results[(wname, "simple")].cycles
        for vname, _ in VARIANTS[1:]:
            cycles = results[(wname, vname)].cycles
            # Same workload, verified invariants; timing within a sane
            # envelope of the baseline.
            assert 0.5 < cycles / baseline < 1.5, (wname, vname)
        # MSI really exercised its protocol on these sharing-heavy runs.
        assert results[(wname, "msi")].stat_total("msi.cache_to_cache") > 0
        # Double buffering hid commit latency from the committers.
        assert results[(wname, "simple + dblbuf")].stat_total(
            "htm.hidden_commit_cycles") > 0
