"""Transaction character: validating the paper's common-case assumptions.

§6.2 tunes handler management because "transactions with a few hundred
instructions are common"; §6.3.3 supports few hardware nesting levels
because "the common case is 2 to 3 levels".  This benchmark measures the
per-commit profile (read-/write-set sizes in cache lines, durations,
nesting depth) of our workloads and asserts both assumptions hold for
them — i.e. the synthetic evaluation lives in the same regime the
paper's hardware is designed for.
"""

from repro.common.params import paper_config
from repro.harness.txstats import TxStatsCollector, format_tx_character
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.workloads import JbbWorkload, Mp3dKernel, SwimKernel

from benchmarks.conftest import banner

WORKLOADS = [
    ("swim", lambda: SwimKernel(n_threads=8)),
    ("mp3d", lambda: Mp3dKernel(n_threads=8)),
    ("SPECjbb2000-closed", lambda: JbbWorkload(n_threads=8)),
]


def run_collection():
    collected = {}
    for name, factory in WORKLOADS:
        workload = factory()
        machine = Machine(paper_config(n_cpus=8))
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        with TxStatsCollector(machine) as collector:
            workload.setup(machine, runtime, arena)
            machine.run(max_cycles=2_000_000_000)
            workload.verify(machine)
            collected[name] = {
                kind: collector.summary(kind)
                for kind in ("outer", "closed", "open")
            }
    return collected


def test_transaction_character(benchmark, show):
    collected = benchmark.pedantic(run_collection, rounds=1, iterations=1)
    rows = []
    for name, by_kind in collected.items():
        for kind, summary in by_kind.items():
            if summary.count:
                rows.append((f"{name} [{kind}]", summary))
    show(banner("Transaction character (paper §6.2/§6.3.3 assumptions)"),
         format_tx_character(rows))

    for name, by_kind in collected.items():
        outer = by_kind["outer"]
        closed = by_kind["closed"]
        assert outer.count > 0 and closed.count > 0, name
        # §6.3.3: 2-3 nesting levels are the common case; none of the
        # evaluated programs exceeds the paper's NL=2.
        max_level = max(s.max_level for s in by_kind.values() if s.count)
        assert max_level <= 3, (name, max_level)
        # Inner transactions are small relative to their outers — the
        # geometry that makes independent rollback pay.
        assert closed.mean_duration < outer.mean_duration / 2, name
        assert closed.mean_writes <= outer.mean_writes, name
        # Write-sets stay far inside the cache budget (no overflow).
        assert outer.max_writes < 128, name
    # mp3d's inner transactions are the contended fat ones.
    assert collected["mp3d"]["closed"].mean_writes \
        > collected["swim"]["closed"].mean_writes
