"""Section 7 overhead paragraph: the published instruction counts.

"Starting a transaction requires 6 instructions for TCB allocation.  A
commit without any handlers requires 10 instructions, while a rollback
without handlers requires 6 instructions.  Registering a handler without
arguments takes 9 instructions."

This benchmark measures all four from the running machine and asserts
exact equality with the published values.
"""

from repro.harness.inventory import (
    PUBLISHED_OVERHEADS,
    measure_overheads,
)
from repro.harness.report import format_table

from benchmarks.conftest import banner


def test_published_overheads(benchmark, show):
    measured = benchmark.pedantic(measure_overheads, rounds=1, iterations=1)
    rows = [
        (event, PUBLISHED_OVERHEADS[event], measured[event],
         "match" if measured[event] == PUBLISHED_OVERHEADS[event]
         else "DIFFERS")
        for event in PUBLISHED_OVERHEADS
    ]
    show(banner("Section 7 overheads: instructions per event"),
         format_table(["event", "paper", "measured", "verdict"], rows))
    assert measured == PUBLISHED_OVERHEADS
