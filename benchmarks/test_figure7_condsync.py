"""Section 5/7: conditional scheduling — the watch/retry microbenchmark.

Producer/consumer pairs synchronize through the Atomos-style scheduler
(paper Figure 3): open-nested watch registration, scheduler violation
handler, targeted wakeups.  The paper reports scalable performance for
conditional scheduling: throughput grows as pairs are added (one CPU is
dedicated to the scheduler), and no wakeup is ever lost.
"""

from repro.common.params import paper_config
from repro.harness.experiment import scaling_curve
from repro.harness.report import format_scaling
from repro.workloads import CondSyncWorkload

from benchmarks.conftest import banner

PAIR_COUNTS = [1, 2, 4, 7]   # 2 CPUs per pair + 1 scheduler <= 16


def run_scaling():
    return scaling_curve(
        lambda pairs: CondSyncWorkload(n_pairs=pairs),
        counts=PAIR_COUNTS,
        config_factory=lambda pairs: paper_config(n_cpus=2 * pairs + 1),
        items_of=lambda w: w.n_pairs * w._items,
        max_cycles=50_000_000,
    )


def test_figure7_condsync_scales(benchmark, show):
    points = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    show(banner("Conditional scheduling microbenchmark (watch/retry)"),
         format_scaling(points, "items transferred vs pairs",
                        item_label="items"))
    by_n = {p.n: p for p in points}
    for small, large in zip(PAIR_COUNTS, PAIR_COUNTS[1:]):
        assert by_n[large].throughput > by_n[small].throughput, (
            f"throughput fell from {small} to {large} pairs")
    assert by_n[7].throughput >= 2.5 * by_n[1].throughput


def test_figure7_waits_actually_happen(benchmark, show):
    """The scaling must not come from never blocking: each run exercises
    the park/wake machinery and delivers items in order, exactly once."""
    def run():
        workload = CondSyncWorkload(n_pairs=4)
        machine = workload.run(paper_config(n_cpus=9),
                               max_cycles=50_000_000)
        return workload, machine

    workload, machine = benchmark.pedantic(run, rounds=1, iterations=1)
    parks = machine.stats.total("rt.parks")
    wakeups = machine.stats.total("condsync.wakeups")
    show(banner("conditional scheduling: wait-path check"),
         f"parks: {parks}, wakeups: {wakeups}, "
         f"watches: {machine.stats.total('condsync.watches')}")
    assert parks >= 1
    assert wakeups >= 1
    # verify() already checked per-pair in-order exactly-once delivery.
