"""Table 2: the instructions needed for rich HTM semantics.

Regenerates the instruction inventory from the implemented op vocabulary
and demonstrates each instruction executing on the machine.
"""

from repro.harness.inventory import TABLE2, exercise_every_instruction
from repro.harness.report import format_table

from benchmarks.conftest import banner

A = 0xC_0000


def test_table2_instruction_inventory(benchmark, show):
    machine, executed = benchmark.pedantic(
        exercise_every_instruction, rounds=1, iterations=1)
    rows = [
        (name, cls.__name__, "yes" if name in executed else "MISSING",
         description)
        for name, cls, description in TABLE2
    ]
    show(banner("Table 2: instructions needed for rich HTM semantics"),
         format_table(["instruction", "op class", "exercised",
                       "description"], rows))
    assert executed == {name for name, _, _ in TABLE2}
    # the open-nested commit published its write
    assert machine.memory.read(A + 12) == 3
    # imstid survived the abort; imst was rolled back
    assert machine.memory.read(A + 4) == 2
    assert machine.memory.read(A) == 0
