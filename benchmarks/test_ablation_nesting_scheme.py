"""Ablation (paper §6.3.3): multi-tracking vs associativity nesting.

The paper argues the two cache schemes trade cache occupancy (the
associativity scheme replicates a line per nesting level; multi-tracking
pins one slot per line) but implement the same semantics.  This ablation
runs the same nested workloads under both schemes and reports cycles and
occupancy statistics; results must be functionally identical.
"""

from repro.common.params import paper_config
from repro.harness.experiment import run_workload
from repro.harness.report import format_table
from repro.workloads import JbbWorkload, Mp3dKernel, SwimKernel

from benchmarks.conftest import banner

WORKLOADS = [
    ("swim", lambda: SwimKernel(n_threads=8)),
    ("mp3d", lambda: Mp3dKernel(n_threads=8)),
    ("SPECjbb2000-closed", lambda: JbbWorkload(n_threads=8)),
]


def run_ablation():
    results = {}
    for name, factory in WORKLOADS:
        for scheme in ("multi_tracking", "associativity"):
            config = paper_config(n_cpus=8, nesting_scheme=scheme)
            results[(name, scheme)] = run_workload(
                factory(), config, config_label=scheme)
    return results


def test_nesting_scheme_ablation(benchmark, show):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for name, _ in WORKLOADS:
        multi = results[(name, "multi_tracking")]
        assoc = results[(name, "associativity")]
        rows.append((
            name,
            multi.cycles,
            assoc.cycles,
            f"{multi.cycles / assoc.cycles:.3f}",
            assoc.stat_total("nesting.replications"),
        ))
    show(banner("Ablation: multi-tracking vs associativity nesting "
                "(paper Fig. 4)"),
         format_table(
             ["workload", "multi-track cycles", "assoc cycles",
              "ratio", "assoc line replications"], rows))

    for name, _ in WORKLOADS:
        multi = results[(name, "multi_tracking")]
        assoc = results[(name, "associativity")]
        # Semantics identical: both verified their invariants inside
        # run(); with these footprints neither scheme overflows, so
        # timing matches closely too (merge costs are the same model).
        ratio = multi.cycles / assoc.cycles
        assert 0.9 < ratio < 1.1, (name, ratio)
        assert multi.stat_total("nesting.overflows") == 0
        assert assoc.stat_total("nesting.overflows") == 0
