"""Ablation: software contention management via the handler mechanism
(paper §3: "recent proposals require software control over conflicts to
improve performance and eliminate starvation").

Compares immediate retry (the conventional hardware policy) against
deterministic exponential backoff on a pathologically contended counter
at 8 CPUs, on the lazy machine.  Backoff spreads the retries so fewer
doomed executions reach the commit point; the win grows with contention.
"""

from repro.common.params import paper_config
from repro.harness.report import format_table
from repro.runtime.contention import (
    ExponentialBackoff,
    ImmediateRetry,
    run_with_policy,
)
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

from benchmarks.conftest import banner

COUNTER = 0x15_0000
ROUNDS = 10


def run_with(policy_factory):
    machine = Machine(paper_config(n_cpus=8))
    runtime = Runtime(machine)

    def program(t):
        policy = policy_factory(t.cpu_id)

        def body(t):
            value = yield t.load(COUNTER)
            yield t.alu(40)
            yield t.store(COUNTER, value + 1)

        for _ in range(ROUNDS):
            yield from run_with_policy(runtime, t, body, policy=policy)

    for cpu in range(8):
        runtime.spawn(program, cpu_id=cpu)
    machine.run(max_cycles=100_000_000)
    assert machine.memory.read(COUNTER) == 8 * ROUNDS
    return machine


def run_ablation():
    immediate = run_with(lambda cpu: ImmediateRetry())
    backoff = run_with(
        lambda cpu: ExponentialBackoff(base=30, cap=1500, seed=cpu))
    return immediate, backoff


def test_contention_management_ablation(benchmark, show):
    immediate, backoff = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1)
    rows = []
    for label, machine in (("immediate retry", immediate),
                           ("exponential backoff", backoff)):
        stats = machine.stats
        rows.append((
            label,
            stats.get("cycles"),
            stats.total("rt.retries"),
            stats.total("htm.violations_received"),
            stats.total("rt.backoff_cycles"),
        ))
    show(banner("Ablation: contention management on a hot counter "
                "(8 CPUs)"),
         format_table(["policy", "cycles", "retries", "violations",
                       "backoff cycles"], rows))

    # Backoff wastes far fewer doomed executions...
    assert backoff.stats.total("rt.retries") \
        < immediate.stats.total("rt.retries")
    # ...and both machines finish the identical committed work.
    assert immediate.memory.read(COUNTER) == backoff.memory.read(COUNTER)
