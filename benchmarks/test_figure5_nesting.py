"""Figure 5: performance improvement with full nesting support over
flattening, for 8 processors.

For each benchmark the paper runs the nested program against a
conventional HTM that flattens all nesting, and annotates each bar with
the nested version's speedup over 1-CPU sequential execution.  This
benchmark regenerates all nine bars (7 scientific kernels plus
SPECjbb2000-closed and SPECjbb2000-open) and asserts the published
qualitative shape:

* no benchmark loses from nesting support (every bar >= ~1.0 — the paper:
  "no application is affected negatively");
* mp3d shows the dramatic improvement (the largest bar by a wide margin);
* SPECjbb2000: flat still scales (paper: 1.92x over sequential), closed
  nesting improves on flat, and open nesting improves on closed
  (paper: 2.05x -> 2.22x).
"""

import pytest

from repro.harness.experiment import compare_nesting
from repro.harness.report import format_bar_chart, format_figure5
from repro.workloads import JbbWorkload
from repro.workloads.kernels import SCIENTIFIC_KERNELS

from benchmarks.conftest import banner

N_CPUS = 8


def run_figure5():
    comparisons = []
    for kernel_cls in SCIENTIFIC_KERNELS:
        comparisons.append(compare_nesting(
            lambda n, cls=kernel_cls: cls(n_threads=n), n_cpus=N_CPUS))
    for variant in ("closed", "open"):
        comparisons.append(compare_nesting(
            lambda n, v=variant: JbbWorkload(n_threads=n, variant=v),
            n_cpus=N_CPUS))
    return comparisons


def test_figure5(benchmark, show):
    comparisons = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    by_name = {c.name: c for c in comparisons}

    show(banner("Figure 5: speedup of nesting over flattening (8 CPUs)"),
         format_figure5(comparisons),
         "",
         format_bar_chart(
             [(c.name, c.improvement) for c in comparisons],
             title="bar heights (nesting vs flattening):"))

    # --- published shape ---------------------------------------------------
    # "no application is affected negatively by the overhead of TCB and
    # handler management for nested transactions"
    for c in comparisons:
        assert c.improvement >= 0.95, (c.name, c.improvement)

    # mp3d is the dramatic outlier: the largest improvement, by a margin.
    mp3d = by_name["mp3d"]
    others = [c for c in comparisons if c.name != "mp3d"]
    assert mp3d.improvement == max(c.improvement for c in comparisons)
    assert mp3d.improvement >= 1.5 * sorted(
        (c.improvement for c in others), reverse=True)[1]

    # Scientific kernels benefit from nesting (several "significantly").
    significant = [c for c in comparisons
                   if c.name not in ("SPECjbb2000-closed",
                                     "SPECjbb2000-open")
                   and c.improvement >= 1.2]
    assert len(significant) >= 4

    # SPECjbb2000: flat scales (paper 1.92x), nesting improves on flat,
    # open improves on closed (paper 2.05x -> 2.22x).
    closed = by_name["SPECjbb2000-closed"]
    open_ = by_name["SPECjbb2000-open"]
    assert closed.flat_speedup > 1.5
    assert closed.improvement > 1.1
    assert open_.improvement > closed.improvement
    assert open_.total_speedup > closed.total_speedup

    # Bar annotations: nested versions actually scale over sequential.
    for c in comparisons:
        assert c.total_speedup > 1.5, (c.name, c.total_speedup)
