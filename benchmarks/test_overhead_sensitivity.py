"""Section 7's overhead claim, isolated.

"Overall, no application is affected negatively by the overhead of TCB
and handler management for nested transactions.  Most outer transactions
are long and can amortize the short overheads of the new functionality."

This benchmark isolates that claim from conflict effects: a *zero
conflict* workload (each thread updates only its own data) runs with
nesting support and under flattening.  The cycle difference is then pure
TCB/handler management; it must be small and it must shrink as the outer
transaction grows.
"""

from repro.common.params import paper_config
from repro.harness.report import format_table
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

from benchmarks.conftest import banner

BASE = 0x18_0000
STRIDE = 0x10_000


def run_conflict_free(outer_work, mode, inner_txs=2):
    """``mode``: "nested" (real closed nesting), or "inlined" (the
    conventional baseline: the same work with no nested atomic blocks at
    all — no TCB frames, no handler-stack management for the inners)."""
    machine = Machine(paper_config(n_cpus=8))
    runtime = Runtime(machine)

    def program(t):
        base = BASE + t.cpu_id * STRIDE

        def inner(t, index):
            value = yield t.load(base + 0x8000 + index * 32)
            yield t.store(base + 0x8000 + index * 32, value + 1)

        def outer(t):
            for i in range(outer_work):
                value = yield t.load(base + i * 4)
                yield t.alu(4)
                yield t.store(base + i * 4, value + 1)
            for index in range(inner_txs):
                if mode == "nested":
                    yield from runtime.atomic(t, inner, index)
                else:
                    yield from inner(t, index)

        for _ in range(6):
            yield from runtime.atomic(t, outer)

    for cpu in range(8):
        runtime.spawn(program, cpu_id=cpu)
    machine.run()
    assert machine.stats.total("htm.violations_received") == 0
    return machine.stats.get("cycles")


def run_sensitivity():
    rows = []
    for outer_work in (8, 32, 128):
        inlined = run_conflict_free(outer_work, mode="inlined")
        nested = run_conflict_free(outer_work, mode="nested")
        rows.append((outer_work, inlined, nested,
                     (nested - inlined) / inlined * 100.0))
    return rows


def test_nesting_overhead_amortizes(benchmark, show):
    rows = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    show(banner("Nesting-support overhead on a conflict-free workload"),
         format_table(
             ["outer size (ops)", "inlined cycles", "nested cycles",
              "overhead %"],
             [(w, f, n, f"{pct:+.1f}%") for w, f, n, pct in rows]))
    overheads = [pct for _, _, _, pct in rows]
    # TCB/handler management is real work on toy-sized transactions (the
    # paper tuned it to ~16 instructions per nested commit pair, which is
    # a large fraction of an 8-op transaction)...
    assert all(pct < 40.0 for pct in overheads), overheads
    # ...but amortizes as the outer grows ("most outer transactions are
    # long and can amortize the short overheads"): monotonically
    # shrinking, and small at realistic sizes.
    assert overheads[0] > overheads[1] > overheads[2]
    assert overheads[-1] < 6.0, overheads
