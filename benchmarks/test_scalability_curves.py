"""Scalability curves: the full CPU sweep behind Figure 5's annotations.

The paper annotates each Figure 5 bar with the nested version's speedup
over 1-CPU sequential execution at 8 CPUs.  This benchmark produces the
whole strong-scaling curve (1-16 CPUs) for a low-conflict kernel (swim),
the dramatic kernel (mp3d), and the warehouse, on both the nested and
flattened machines — making the claim behind the figure visible: nesting
extends the scaling of conflict-heavy workloads, and costs nothing on
conflict-light ones.
"""

from repro.harness.sweep import format_speedup_curve, speedup_curve
from repro.workloads import JbbWorkload, Mp3dKernel, SwimKernel

from benchmarks.conftest import banner

CPU_COUNTS = (1, 2, 4, 8, 16)

CASES = [
    ("swim", lambda n: SwimKernel(n_threads=n)),
    ("mp3d", lambda n: Mp3dKernel(n_threads=n)),
    ("SPECjbb2000-closed", lambda n: JbbWorkload(n_threads=n)),
]


def run_curves():
    curves = {}
    for name, factory in CASES:
        curves[(name, "nested")] = speedup_curve(
            factory, cpu_counts=CPU_COUNTS)
        curves[(name, "flat")] = speedup_curve(
            factory, cpu_counts=CPU_COUNTS,
            config_overrides=dict(flatten=True))
    return curves


def test_scalability_curves(benchmark, show):
    curves = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    blocks = []
    for (name, mode), points in sorted(curves.items()):
        blocks.append(format_speedup_curve(
            points, f"{name} [{mode}]"))
        blocks.append("")
    show(banner("Strong scaling, 1-16 CPUs, nested vs flattened"),
         "\n".join(blocks))

    def at(name, mode, n):
        return next(p for p in curves[(name, mode)] if p.n_cpus == n)

    # Low-conflict kernels scale either way; nesting costs nothing.
    assert at("swim", "nested", 8).speedup > 3.5
    assert at("swim", "nested", 8).speedup \
        >= 0.95 * at("swim", "flat", 8).speedup
    # The dramatic case: flattening caps mp3d's scaling well below the
    # nested machine at every width >= 4.
    for n in (4, 8, 16):
        assert at("mp3d", "nested", n).speedup \
            > 1.3 * at("mp3d", "flat", n).speedup, n
    # The warehouse keeps gaining CPUs under nesting.
    assert at("SPECjbb2000-closed", "nested", 8).speedup \
        > at("SPECjbb2000-closed", "nested", 2).speedup
