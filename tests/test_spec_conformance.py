"""The differential conformance suite: simulator vs. reference semantics.

The abstract executor (:mod:`repro.spec`) runs the same check programs
under atomic, instantaneous transactions over flat sequential memory.
This file pins the three contracts the spec adds to the oracle battery:

* **Replay conformance** — every fault-free and recoverable-fault run
  of a spec-supported program replays cleanly against the reference
  (:func:`repro.spec.replay.check_conformance` reports nothing).
* **Broken-fault detection** — every seeded ``+broken`` variant that
  corrupts committed state is flagged as a spec disagreement (the one
  exception, ``handler-reentry+broken``, only manifests on the
  spec-unsupported ``requeue`` program and is covered by the
  lost-wakeup oracle; docs/conformance.md documents the boundary).
* **Drain equality** — an exhaustive explorer drain of a litmus program
  observes *exactly* the spec-enumerated admissible outcome set.
"""

import pytest

from repro.check.fuzz import FAST_CONFIGS, run_case
from repro.check.programs import LITMUS_PROGRAMS, PROGRAMS
from repro.spec.conform import LITMUS_DEPTHS, run_drain_cell
from repro.spec.outcomes import spec_outcomes
from repro.spec.replay import freeze

SUPPORTED = sorted(
    name for name, cls in PROGRAMS.items()
    if getattr(cls, "spec_supported", False))


# ----------------------------------------------------------------------
# Replay conformance, fault-free
# ----------------------------------------------------------------------


@pytest.mark.parametrize("config", FAST_CONFIGS)
@pytest.mark.parametrize("program", SUPPORTED)
def test_fault_free_runs_conform(program, config):
    result = run_case(program, config, "random", 1)
    if result.skipped:
        pytest.skip(f"{program} unsupported on {config}")
    assert not result.violations, str(result)


def test_every_litmus_program_is_registered():
    assert set(LITMUS_PROGRAMS) == set(LITMUS_DEPTHS)
    for name in LITMUS_PROGRAMS:
        assert name in PROGRAMS


# ----------------------------------------------------------------------
# Replay conformance under recoverable faults
# ----------------------------------------------------------------------

RECOVERABLE_CELLS = [
    ("spurious-violation", "counter"),
    ("delayed-violation", "counter"),
    ("delayed-violation", "atomicity"),
    ("token-loss", "bank"),
    ("validated-abort", "nestedopen"),
    ("watch-drop", "compensation"),
    ("io-fault", "iochaos"),
    ("alloc-pressure", "iochaos"),
]


@pytest.mark.parametrize("fault,program", RECOVERABLE_CELLS,
                         ids=[f"{f}-{p}" for f, p in RECOVERABLE_CELLS])
def test_recoverable_fault_runs_conform(fault, program):
    result = run_case(program, "lazy-wb-assoc", "det", 1, fault=fault)
    assert not result.skipped
    conformance = [v for v in result.violations
                   if v.oracle == "conformance"]
    assert not conformance, str(result)


def test_delayed_violation_never_straddles_a_commit():
    """Regression: the recoverable delayed-violation hold-back used to
    apply to victims that had already validated, landing the delivery
    past the commit — a stale transaction committed, which only the
    ``+broken`` variant is allowed to do.  atomicity/lazy-wb-assoc/det/1
    is the schedule that exposed it (a reader validated at the cycle a
    conflicting nontx writer committed)."""
    result = run_case("atomicity", "lazy-wb-assoc", "det", 1,
                      fault="delayed-violation")
    assert not result.skipped
    # The fixed sink delivers immediately at that point (no hold-back
    # is recorded), so the pin is the clean verdict itself.
    assert not result.violations, str(result)


# ----------------------------------------------------------------------
# Broken-fault detection
# ----------------------------------------------------------------------

BROKEN_CELLS = [
    ("spurious-violation+broken", "counter", None),
    ("delayed-violation+broken", "counter", None),
    ("token-loss+broken", "counter", 60_000),
    ("validated-abort+broken", "counter", None),
    ("watch-drop+broken", "counter", None),
    ("io-fault+broken", "iochaos", None),
    ("alloc-pressure+broken", "iochaos", None),
]


@pytest.mark.parametrize("fault,program,max_cycles", BROKEN_CELLS,
                         ids=[c[0] for c in BROKEN_CELLS])
def test_broken_variant_is_a_spec_disagreement(fault, program,
                                               max_cycles):
    result = run_case(program, "lazy-wb-assoc", "det", 1, fault=fault,
                      max_cycles=max_cycles)
    assert not result.skipped
    assert result.n_injections > 0
    oracles = {v.oracle for v in result.violations}
    assert "conformance" in oracles, (
        f"expected a spec disagreement for {fault}, got "
        f"{sorted(oracles)}: {result}")


# ----------------------------------------------------------------------
# Spec-enumerated admissible sets (pure spec, no simulator)
# ----------------------------------------------------------------------


def _reads(outcome_set):
    return {dict(o)["reads"] for o in outcome_set}


def test_litmus_sb_admissible_set():
    # One transaction per thread {store mine; load other}: some thread
    # serializes first and reads 0, the other reads 1.  (0,0) — the
    # relaxed-memory store-buffering anomaly — is inadmissible.
    assert _reads(spec_outcomes("litmus-sb")) == {(0, 1), (1, 0)}


def test_litmus_lb_admissible_set():
    # {load other; store mine}: the first transaction reads 0, the
    # second reads 1.  Both (0,0) and the causality-violating (1,1)
    # are inadmissible.
    assert _reads(spec_outcomes("litmus-lb")) == {(0, 1), (1, 0)}


def test_litmus_corr_admissible_set():
    # Two successive reads of x against one writer of x=1: reads may
    # straddle the write, but never run backwards (1 then 0).
    assert _reads(spec_outcomes("litmus-corr")) == {
        (0, 0), (0, 1), (1, 1)}


def test_litmus_mp_admissible_set():
    # Message passing: flag observed set implies the payload is visible.
    assert _reads(spec_outcomes("litmus-mp")) == {(0, 0), (1, 42)}


def test_litmus_inc_admissible_set():
    outcomes = spec_outcomes("litmus-inc")
    assert outcomes == {freeze({"counter": 2})}


def test_litmus_token_handoff_admissible_set():
    # The consumer blocks until woken after the publish: one outcome.
    outcomes = spec_outcomes("litmus-token-handoff")
    assert outcomes == {freeze({"mem": [1], "reads": [1]})}


# ----------------------------------------------------------------------
# Drain equality: exhaustive explore == spec enumeration
# ----------------------------------------------------------------------

# The full six-program drain runs in the conform CLI and CI; here two
# representatives keep the tier-1 wall clock small: the cheapest drain
# (token-handoff, 3 schedules) and a contended one (mp, ~500).
DRAIN_SAMPLE = ("litmus-token-handoff", "litmus-mp")


@pytest.mark.parametrize("program", DRAIN_SAMPLE)
def test_exhaustive_drain_equals_admissible_set(program):
    cell = run_drain_cell(program)
    assert cell["ok"], cell["violations"]
    assert cell["n_outcomes"] == len(spec_outcomes(program))
