"""Unit tests: parameters, errors, addressing, statistics."""

import pytest

from repro.common import addr
from repro.common.errors import (
    CapacityAbort,
    ConfigError,
    MemoryError_,
    TxRollback,
    TxSignal,
)
from repro.common.params import (
    EAGER,
    LAZY,
    UNDO_LOG,
    WORD_SIZE,
    SystemConfig,
    functional_config,
    paper_config,
)
from repro.common.stats import Stats


class TestSystemConfig:
    def test_paper_defaults(self):
        config = paper_config()
        assert config.n_cpus == 8
        assert config.l1_size == 32 * 1024
        assert config.l1_latency == 1
        assert config.l2_size == 512 * 1024
        assert config.l2_latency == 12
        assert config.bus_width == 16
        assert config.timing is True

    def test_functional_config_disables_timing(self):
        assert functional_config().timing is False

    def test_derived_geometry(self):
        config = paper_config()
        assert config.words_per_line == config.line_size // WORD_SIZE
        assert config.l1_sets * config.l1_assoc * config.line_size \
            == config.l1_size
        assert config.line_transfer_cycles == config.line_size \
            // config.bus_width

    def test_undo_log_requires_eager(self):
        with pytest.raises(ConfigError):
            SystemConfig(versioning=UNDO_LOG, detection=LAZY)
        SystemConfig(versioning=UNDO_LOG, detection=EAGER)  # ok

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_cpus=0)
        with pytest.raises(ConfigError):
            SystemConfig(detection="psychic")
        with pytest.raises(ConfigError):
            SystemConfig(nesting_scheme="stack-of-pancakes")
        with pytest.raises(ConfigError):
            SystemConfig(line_size=30)
        with pytest.raises(ConfigError):
            SystemConfig(max_nesting=0)

    def test_replace_builds_variant(self):
        config = paper_config()
        flat = config.replace(flatten=True)
        assert flat.flatten and not config.flatten
        assert flat.n_cpus == config.n_cpus


class TestAddr:
    def test_line_of(self):
        assert addr.line_of(0x1234, 32) == 0x1220
        assert addr.line_of(0x1220, 32) == 0x1220

    def test_word_index_in_line(self):
        assert addr.word_index_in_line(0x1220, 32) == 0
        assert addr.word_index_in_line(0x1224, 32) == 1
        assert addr.word_index_in_line(0x123C, 32) == 7

    def test_words_of_line(self):
        words = list(addr.words_of_line(0x100, 32))
        assert len(words) == 8
        assert words[0] == 0x100 and words[-1] == 0x11C

    def test_alignment_check(self):
        assert addr.check_word_aligned(0x100) == 0x100
        with pytest.raises(MemoryError_):
            addr.check_word_aligned(0x101)

    def test_private_segments_disjoint(self):
        base0 = addr.private_base(0)
        base1 = addr.private_base(1)
        assert base1 - base0 == addr.PRIVATE_SPAN
        assert addr.is_private(base0)
        assert not addr.is_private(addr.SHARED_BASE)
        assert addr.owner_of_private(base1 + 100) == 1

    def test_owner_of_shared_raises(self):
        with pytest.raises(MemoryError_):
            addr.owner_of_private(addr.SHARED_BASE)


class TestStats:
    def test_add_and_get(self):
        stats = Stats()
        stats.add("x")
        stats.add("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing") == 0

    def test_scopes_prefix(self):
        stats = Stats()
        cpu = stats.scope("cpu0")
        cpu.add("l1.hits", 3)
        assert stats.get("cpu0.l1.hits") == 3
        deeper = cpu.scope("htm")
        deeper.add("commits")
        assert stats.get("cpu0.htm.commits") == 1

    def test_total_sums_suffix(self):
        stats = Stats()
        stats.add("cpu0.htm.violations", 2)
        stats.add("cpu1.htm.violations", 3)
        stats.add("unrelated", 100)
        assert stats.total("htm.violations") == 5

    def test_matching(self):
        stats = Stats()
        stats.add("bus.wait", 7)
        stats.add("bus.busy", 9)
        assert stats.matching("bus") == {"bus.wait": 7, "bus.busy": 9}


class TestSignals:
    def test_rollback_is_base_exception(self):
        # `except Exception` in workload code must not swallow rollbacks.
        assert not issubclass(TxSignal, Exception)
        with pytest.raises(TxRollback):
            try:
                raise TxRollback(1, "violation")
            except Exception:  # noqa: BLE001
                pytest.fail("TxRollback must escape 'except Exception'")

    def test_capacity_abort_is_rollback(self):
        overflow = CapacityAbort(2, "set full")
        assert isinstance(overflow, TxRollback)
        assert overflow.reason == "capacity"
        assert overflow.level == 2
