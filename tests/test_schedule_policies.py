"""Schedule policies: determinism, reproducibility, exploration.

The contract of :mod:`repro.sim.schedule`:

* The default (:class:`DeterministicPolicy`) is bit-for-bit the engine's
  historical tie-break, so every golden number is unchanged.
* Randomized policies are pure functions of their seed: same seed, same
  schedule, same transactional history.
* Different seeds genuinely explore: distinct commit orders appear.
* The bounded window keeps every CPU schedulable (no starvation).
"""

import pytest

from repro.check.history import HistoryRecorder
from repro.check.programs import CounterProgram
from repro.common.params import functional_config, paper_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import (
    DeterministicPolicy,
    PriorityPolicy,
    RandomPolicy,
    make_policy,
    window_candidates,
)
from repro.workloads import Mp3dKernel


class FakeCpu:
    def __init__(self, cpu_id, resume_at):
        self.cpu_id = cpu_id
        self.resume_at = resume_at


def _counter_history(policy, seed=3):
    """Run a 2-CPU counter program under ``policy``; return its history."""
    program = CounterProgram(n_threads=2, seed=seed, increments=4)
    machine = Machine(functional_config(n_cpus=2), policy=policy)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    with HistoryRecorder(machine) as recorder:
        program.setup(machine, runtime, arena)
        machine.run(max_cycles=2_000_000)
    program.verify(machine)
    return recorder.history


# ---------------------------------------------------------------------------
# Deterministic default
# ---------------------------------------------------------------------------

def test_default_policy_is_deterministic():
    machine = Machine(functional_config())
    assert isinstance(machine.policy, DeterministicPolicy)


def test_explicit_deterministic_matches_default_bit_for_bit():
    """Passing DeterministicPolicy() must not perturb a single cycle of
    the golden-number runs (the refactor is pure factoring)."""
    base = Mp3dKernel(n_threads=4).run(paper_config(n_cpus=4))
    explicit = Mp3dKernel(n_threads=4).run(
        paper_config(n_cpus=4), policy=DeterministicPolicy())
    assert base.stats.get("cycles") == explicit.stats.get("cycles")
    assert base.results() == explicit.results()


def test_deterministic_choice_is_earliest_then_lowest_id():
    policy = DeterministicPolicy()
    cpus = [FakeCpu(2, 10), FakeCpu(0, 20), FakeCpu(1, 10)]
    assert policy.choose(cpus).cpu_id == 1


def test_heap_and_scan_schedules_are_bit_for_bit_identical():
    """The engine serves DeterministicPolicy from its (resume_at, cpu_id)
    ready heap; ``choose`` remains the executable specification.  Forcing
    the scan path (``uses_ready_heap = False``) must reproduce the exact
    same run — cycles and results both."""

    class ScanningDeterministicPolicy(DeterministicPolicy):
        uses_ready_heap = False

    heap = Mp3dKernel(n_threads=4).run(paper_config(n_cpus=4))
    scan = Mp3dKernel(n_threads=4).run(
        paper_config(n_cpus=4), policy=ScanningDeterministicPolicy())
    assert heap.stats.get("cycles") == scan.stats.get("cycles")
    assert heap.stats.get("engine.steps") == scan.stats.get("engine.steps")
    assert heap.results() == scan.results()


# ---------------------------------------------------------------------------
# The bounded window
# ---------------------------------------------------------------------------

def test_window_candidates_exclude_far_future_cpus():
    cpus = [FakeCpu(0, 0), FakeCpu(1, 100), FakeCpu(2, 400)]
    assert [c.cpu_id for c in window_candidates(cpus, 250)] == [0, 1]


def test_window_candidates_always_nonempty():
    cpus = [FakeCpu(0, 5_000)]
    assert [c.cpu_id for c in window_candidates(cpus, 250)] == [0]


def test_random_policy_only_picks_within_window():
    policy = RandomPolicy(seed=0, window=250)
    cpus = [FakeCpu(0, 0), FakeCpu(1, 1_000)]
    for _ in range(50):
        assert policy.choose(cpus).cpu_id == 0


# ---------------------------------------------------------------------------
# Reproducibility and exploration
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", [
    lambda seed: RandomPolicy(seed=seed),
    lambda seed: PriorityPolicy(seed=seed),
], ids=["random", "pct"])
def test_same_seed_reproduces_the_history(factory):
    first = _counter_history(factory(7)).signature()
    second = _counter_history(factory(7)).signature()
    assert first == second


def test_different_seeds_explore_distinct_commit_orders():
    orders = set()
    for seed in range(10):
        history = _counter_history(RandomPolicy(seed=seed))
        orders.add(tuple(record.cpu for record in history.committed))
    assert len(orders) >= 2, (
        "ten random seeds produced a single commit order; the policy is "
        "not exploring")


def test_every_policy_preserves_the_counter_invariant():
    for policy in (DeterministicPolicy(), RandomPolicy(seed=5),
                   PriorityPolicy(seed=5)):
        history = _counter_history(policy)   # verify() runs inside
        assert len(history) == 2 * 4


def test_pct_replays_with_explicit_change_points():
    original = PriorityPolicy(seed=11, depth=3)
    first = _counter_history(original).signature()
    points = sorted({step for step, _cpu in original.fired})
    replay = PriorityPolicy(seed=11, change_points=points)
    assert _counter_history(replay).signature() == first


def test_pct_change_points_demote_the_running_cpu():
    policy = PriorityPolicy(seed=2, change_points=[1])
    cpus = [FakeCpu(0, 0), FakeCpu(1, 0)]
    victim = policy.choose(cpus)
    assert policy.fired == [(1, victim.cpu_id)]
    # The demoted CPU now ranks below the other while both are in-window.
    assert policy.choose(cpus).cpu_id != victim.cpu_id


def test_make_policy_names():
    assert isinstance(make_policy("det"), DeterministicPolicy)
    assert isinstance(make_policy("random", seed=4), RandomPolicy)
    assert isinstance(make_policy("pct", seed=4), PriorityPolicy)
    with pytest.raises(ValueError):
        make_policy("fifo")
