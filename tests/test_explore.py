"""The exhaustive schedule-space explorer (repro.check.explore).

Covers the tentpole acceptance criteria:

* bounded-exhaustive enumeration of a 2-CPU litmus program drains its
  frontier and reports explored-vs-pruned counts;
* sleep-set pruning agrees with plain enumeration where the latter is
  tractable;
* a known DESIGN.md §6b schedule-dependent bug is rediscovered without
  randomness (no seeds, bound 0);
* parallel exploration is bit-for-bit identical to serial;
* counterexamples replay from their deviation encoding alone and
  shrink through the fuzzer's shared greedy loop.
"""

import pytest

from repro.check.explore import (
    ScheduleVerdict,
    deviations_to_str,
    explore,
    parse_deviations,
    replay,
)
from repro.check.fuzz import run_case, shrink_change_points
from repro.check.programs import LITMUS_PROGRAMS, PROGRAMS
from repro.sim.schedule import ControlledPolicy, SchedulePruned

CONFIG = "lazy-wb-assoc"


class FakeCpu:
    def __init__(self, cpu_id, resume_at=0):
        self.cpu_id = cpu_id
        self.resume_at = resume_at


# ----------------------------------------------------------------------
# ControlledPolicy
# ----------------------------------------------------------------------


def test_controlled_policy_default_is_first_candidate():
    policy = ControlledPolicy()
    cpus = [FakeCpu(0, 5), FakeCpu(1, 3), FakeCpu(2, 9)]
    chosen = policy.choose(cpus)
    # Deterministic pick: smallest (resume_at, cpu_id).
    assert chosen.cpu_id == 1
    assert policy.choices == [1]
    assert policy.candidates == [(1, 0, 2)]


def test_controlled_policy_forced_choice_wins():
    policy = ControlledPolicy(forced={0: 2, 1: 0})
    cpus = [FakeCpu(0), FakeCpu(1), FakeCpu(2)]
    assert policy.choose(cpus).cpu_id == 2
    assert policy.choose(cpus).cpu_id == 0
    # Unforced step falls back to the default pick.
    assert policy.choose(cpus).cpu_id == 0
    assert policy.choices == [2, 0, 0]
    assert policy.divergences == []


def test_controlled_policy_records_divergence():
    policy = ControlledPolicy(forced={0: 7})
    cpus = [FakeCpu(0), FakeCpu(1)]
    assert policy.choose(cpus).cpu_id == 0
    assert policy.divergences == [(0, 7)]


def test_controlled_policy_sleep_skips_and_prunes():
    policy = ControlledPolicy(sleep={0}, sleep_from=0)
    cpus = [FakeCpu(0), FakeCpu(1)]
    assert policy.choose(cpus).cpu_id == 1
    policy.sleep.add(1)
    with pytest.raises(SchedulePruned) as exc:
        policy.choose(cpus)
    # The pruned step was observed but never executed.
    assert exc.value.step == 1
    assert exc.value.candidates == (0, 1)
    assert len(policy.choices) == 1
    assert len(policy.candidates) == 2


def test_controlled_policy_forced_overrides_sleep():
    policy = ControlledPolicy(forced={0: 0}, sleep={0}, sleep_from=0)
    cpus = [FakeCpu(0), FakeCpu(1)]
    assert policy.choose(cpus).cpu_id == 0


# ----------------------------------------------------------------------
# Deviation encoding
# ----------------------------------------------------------------------


def test_deviation_string_round_trip():
    assert deviations_to_str(()) == "det"
    assert parse_deviations("det") == ()
    assert parse_deviations("") == ()
    devs = ((3, 1), (7, 0))
    assert parse_deviations(deviations_to_str(devs)) == devs
    with pytest.raises(ValueError):
        parse_deviations("3-1")


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------


def test_litmus_programs_registered():
    for name in LITMUS_PROGRAMS:
        assert name in PROGRAMS


def test_bound_zero_is_exactly_the_det_schedule():
    report = explore("litmus-sb", CONFIG, preemption_bound=0)
    assert report.explored == 1
    assert report.pruned == 0
    assert not report.failures
    verdict = report.verdicts[0]
    assert verdict.deviations == ()
    assert verdict.name == f"litmus-sb:{CONFIG}:det"
    # The same schedule the fuzzer's det policy runs.
    fuzz = run_case("litmus-sb", CONFIG, "det", 1)
    assert not fuzz.failed


def test_exhaustive_litmus_enumeration_drains():
    """The headline acceptance test: bounded-exhaustive exploration of a
    2-CPU litmus program visits every schedule class reachable within
    the depth bound, reporting explored vs. pruned counts."""
    report = explore("litmus-sb", CONFIG, preemption_bound=None,
                     max_depth=24, max_schedules=5000)
    assert not report.truncated
    assert report.exhaustive
    assert report.explored > 10
    assert report.pruned > report.explored  # pruning carries its weight
    assert not report.failures
    # Deterministic: a second run enumerates the identical sequence.
    again = explore("litmus-sb", CONFIG, preemption_bound=None,
                    max_depth=24, max_schedules=5000)
    assert [v.name for v in again.verdicts] == [
        v.name for v in report.verdicts]


def test_pruned_and_unpruned_agree_where_tractable():
    """At a small depth the full enumeration is tractable: pruning must
    not change the set of verdict outcomes, only skip equivalent
    interleavings (2^depth schedules collapse to a handful)."""
    depth = 10
    full = explore("litmus-sb", CONFIG, preemption_bound=None,
                   max_depth=depth, prune=False, max_schedules=2000)
    slim = explore("litmus-sb", CONFIG, preemption_bound=None,
                   max_depth=depth, prune=True, max_schedules=2000)
    assert not full.truncated and not slim.truncated
    assert full.explored == 2 ** depth  # two candidates at every step
    assert slim.explored + slim.pruned < full.explored
    assert not full.failures and not slim.failures


def test_every_litmus_program_explores_clean():
    for name in LITMUS_PROGRAMS:
        report = explore(name, CONFIG, preemption_bound=1)
        assert not report.truncated
        assert report.explored > 0
        assert not report.failures, report.summary()


def test_eager_config_explores_unpruned():
    report = explore("litmus-inc", "eager-undo", preemption_bound=1,
                     max_schedules=500)
    assert report.prune is False  # pruning unsound under eager: gated off
    assert report.pruned == 0
    assert not report.failures


# ----------------------------------------------------------------------
# Bug rediscovery and replay
# ----------------------------------------------------------------------


def test_rediscovers_lost_wakeup_without_randomness():
    """DESIGN.md §6b lost-wakeup: the fuzzer needs the right seed; the
    explorer finds it at bound 0 with no randomness anywhere."""
    report = explore("requeue", CONFIG, fault="drop-requeue",
                     preemption_bound=0)
    assert len(report.failures) == 1
    verdict = report.failures[0]
    assert [v.oracle for v in verdict.violations] == ["lost-wakeup"]
    assert verdict.name == f"drop-requeue:requeue:{CONFIG}:det"


def test_replay_round_trip():
    report = explore("litmus-mp", CONFIG, preemption_bound=1)
    deviating = [v for v in report.verdicts if v.deviations]
    assert deviating
    for verdict in deviating[:3]:
        again = replay("litmus-mp", CONFIG, verdict.deviations)
        assert again.signature == verdict.signature
        assert again.n_steps == verdict.n_steps
        assert again.failed == verdict.failed
        assert again.divergences == ()


def test_explorer_counterexample_shrinks_through_shared_loop():
    """Satellite: explorer counterexamples route through the same
    shrink_change_points greedy loop as the fuzzer's change-points."""
    report = explore("requeue", CONFIG, fault="drop-requeue",
                     preemption_bound=1, max_schedules=30)
    deviating = [v for v in report.failures if v.deviations]
    assert deviating, "bound-1 exploration found no deviating failure"
    failure = deviating[0]
    shrunk, result = shrink_change_points(failure)
    # The det schedule already fails under this fault, so the greedy
    # loop must drop every deviation — pinning the fully-shrunk trace.
    assert shrunk == []
    assert result.failed
    assert replay("requeue", CONFIG, shrunk, fault="drop-requeue").failed


def test_node_failure_has_no_children():
    from repro.check.explore import node_failure, node_spec
    spec = node_spec("litmus-sb", CONFIG, (0, 1), (), None, 1, None, True)
    outcome = node_failure(spec, "worker died")
    assert outcome.children == ()
    assert outcome.verdict.failed
    assert outcome.verdict.violations[0].oracle == "run-failure"


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------


def test_parallel_exploration_matches_serial():
    kwargs = dict(preemption_bound=None, max_depth=20,
                  max_schedules=2000)
    serial = explore("litmus-inc", CONFIG, jobs=1, **kwargs)
    parallel = explore("litmus-inc", CONFIG, jobs=3, **kwargs)
    assert not serial.truncated
    assert (serial.explored, serial.pruned) == (
        parallel.explored, parallel.pruned)
    assert [(v.name, v.failed, v.signature) for v in serial.verdicts] \
        == [(v.name, v.failed, v.signature) for v in parallel.verdicts]


# ----------------------------------------------------------------------
# Differential: exploration finds what the det fuzz matrix finds
# ----------------------------------------------------------------------

#: The fast coordinates of the oracle self-test table
#: (tests/test_fault_oracle_selftests.py): broken fault variants whose
#: det-schedule failure the explorer must reproduce at bound 0 —
#: deterministically, without any schedule randomness.
DIFFERENTIAL = [
    ("spurious-violation+broken", "counter", 0, None),
    ("delayed-violation+broken", "counter", 0, None),
    ("token-loss+broken", "counter", 0, 60_000),
    ("handler-reentry+broken", "requeue", 0, None),
    ("watch-drop+broken", "counter", 0, None),
]


@pytest.mark.parametrize("fault,program,seed,max_cycles", DIFFERENTIAL,
                         ids=[c[0] for c in DIFFERENTIAL])
def test_explore_finds_every_det_fuzz_violation(fault, program, seed,
                                                max_cycles):
    fuzz = run_case(program, CONFIG, "det", seed, fault=fault,
                    max_cycles=max_cycles)
    fuzz_kinds = {v.oracle for v in fuzz.violations}
    assert fuzz_kinds, "self-test coordinate no longer fails under fuzz"
    report = explore(program, CONFIG, fault=fault, seed=seed,
                     preemption_bound=0, max_cycles=max_cycles)
    explore_kinds = {v.oracle
                     for verdict in report.failures
                     for v in verdict.violations}
    assert fuzz_kinds <= explore_kinds, (
        f"explorer missed {fuzz_kinds - explore_kinds}")


def test_verdict_str_formats():
    verdict = ScheduleVerdict(program="litmus-sb", config=CONFIG,
                              fault=None, seed=1, deviations=((3, 1),))
    assert "3@1" in verdict.name
    assert "ok" in str(verdict)
