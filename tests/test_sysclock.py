"""The time-syscall demonstration of open nesting (paper §4.5)."""


from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.runtime.sysclock import SimClock
from repro.sim.engine import Machine

WORK = 0x19_0000


def build(tick_interval=150):
    machine = Machine(functional_config(n_cpus=3))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    clock = SimClock(runtime, arena, tick_interval=tick_interval)
    clock.spawn_ticker(cpu_id=0)
    return machine, runtime, clock


class TestSimClock:
    def test_clock_advances(self):
        machine, runtime, clock = build()

        def program(t):
            first = yield from clock.gettime(t)
            yield t.alu(1000)
            later = yield from clock.gettime(t)
            return first, later

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=1_000_000)
        first, later = machine.results()[1]
        assert later > first

    def test_open_nested_gettime_does_not_attract_ticks(self):
        """A long transaction calling gettime (open-nested) commits on
        its first attempt even though the clock ticks many times."""
        machine, runtime, clock = build()

        def body(t):
            stamp = yield from clock.gettime(t)
            for i in range(8):
                value = yield t.load(WORK + i * 32)
                yield t.alu(150)                 # several ticks elapse
                yield t.store(WORK + i * 32, value + 1)
            return stamp

        def program(t):
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=2_000_000)
        assert machine.stats.get("cpu1.htm.rollbacks_to_level1", 0) == 0
        assert machine.results()[1] >= 0

    def test_naive_gettime_livelocks_against_ticker(self):
        """The anti-pattern: the same transaction with a *tracked* clock
        read is violated by every tick and keeps restarting."""
        machine, runtime, clock = build()
        attempts = []

        def body(t):
            attempts.append(1)
            if len(attempts) <= 5:
                # The anti-pattern: tracked clock read.  A transaction
                # longer than the tick interval is violated on *every*
                # attempt — genuine livelock; after five demonstrations
                # we stop reading the clock so the test terminates.
                yield from clock.gettime_naive(t)
            for i in range(8):
                value = yield t.load(WORK + i * 32)
                yield t.alu(150)
                yield t.store(WORK + i * 32, value + 1)
            return "done"

        def program(t):
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=4_000_000)
        # every clock-reading attempt was killed by a tick
        assert len(attempts) == 6
        assert machine.results()[1] == "done"

    def test_gettime_outside_transaction(self):
        machine, runtime, clock = build()

        def program(t):
            yield t.alu(400)
            value = yield from clock.gettime(t)
            return value

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=1_000_000)
        assert machine.results()[1] >= 1
