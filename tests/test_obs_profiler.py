"""Cycle-accounting profiler: conservation, classification, exactness.

The profiler's one hard invariant — every simulated cycle lands in
exactly one of committed / wasted / handler / overhead / idle, and the
buckets sum to ``cycles × n_cpus`` — is checked here on clean runs,
contended runs, and the flagship bench cell.  The flagship also pins the
zero-perturbation guarantee (a profiled run produces the *golden* cycle
count bit-for-bit) and a golden trace digest pins the tracer+profiler
stack's determinism end to end.
"""

import hashlib

import pytest

from repro.check.fuzz import build_config
from repro.check.programs import make_program
from repro.common.params import functional_config, paper_config
from repro.harness.txstats import TxStatsCollector
from repro.mem.layout import SharedArena
from repro.obs.profiler import BUCKETS, CycleProfiler
from repro.obs.sinks import RingSink
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import make_policy
from repro.sim.trace import Tracer
from repro.workloads import DetectionStressKernel, SwimKernel

#: sha256 over ``str(event)`` lines of the full detstress-x4 trace under
#: the deterministic policy — pins the whole tracer+engine event stream.
GOLDEN_TRACE_SHA256 = (
    "a3fea70598b57a75a47e793c09972c97ae1ca9835694127adce4769a3c2f5579")
GOLDEN_TRACE_EVENTS = 276
GOLDEN_TRACE_CYCLES = 1701


def _profiled_program(program_name, config_name, seed=1):
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    machine = Machine(config, policy=make_policy("det", seed=seed))
    profiler = CycleProfiler(machine)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    program.setup(machine, runtime, arena)
    machine.run(max_cycles=program.max_cycles)
    program.verify(machine)
    profiler.detach()
    return machine, profiler.account()


class TestConservation:
    def test_uncontended_workload_balances_via_instruments_hook(self):
        profilers = []

        def attach(machine):
            profiler = CycleProfiler(machine)
            profilers.append(profiler)
            return profiler

        workload = SwimKernel(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(n_cpus=2),
                               instruments=[attach])
        # Workload.run detached the instrument before returning.
        assert all(cpu.execute == cpu._execute_step for cpu in machine.cpus)
        account = profilers[0].account()
        assert account.balanced, account.problems()
        assert account.totals["wasted"] == 0
        assert account.totals["committed"] > 0

    @pytest.mark.parametrize("config", ["lazy-wb-assoc", "eager-wb",
                                        "eager-undo", "lazy-timing-msi"])
    def test_contended_program_balances(self, config):
        machine, account = _profiled_program("counter", config)
        assert account.balanced, account.problems()
        assert account.budget == machine.stats.get("cycles") * len(
            machine.cpus)

    def test_contention_shows_up_as_wasted_work(self):
        _, account = _profiled_program("counter", "eager-wb")
        assert account.totals["wasted"] > 0
        assert account.totals["handler"] > 0
        assert account.totals["overhead"] > 0

    def test_per_cpu_books_sum_to_machine_cycles(self):
        machine, account = _profiled_program("counter", "lazy-wb-assoc")
        for books in account.per_cpu:
            assert sum(books.values()) == account.cycles
            assert all(books[bucket] >= 0 for bucket in BUCKETS)

    def test_deadlocked_run_still_balances(self):
        # token-loss+broken livelocks past its cycle budget; the
        # overshoot clamp and the end-of-run speculative fold must
        # still balance the books.
        from repro.check.fuzz import run_case

        result = run_case("counter", "lazy-wb-assoc", "det", 0,
                          fault="token-loss+broken", max_cycles=60_000)
        assert result.failed  # the broken fault is caught...
        assert not any(v.oracle == "cycle-conservation"
                       for v in result.violations), str(result)


class TestAccountShape:
    def test_as_dict_round_trips_totals(self):
        _, account = _profiled_program("counter", "lazy-wb-assoc")
        data = account.as_dict()
        assert data["balanced"] is True
        assert data["totals"] == account.totals
        assert sum(data["totals"].values()) == data["cycles"] * data["n_cpus"]

    def test_share_sums_to_one(self):
        _, account = _profiled_program("counter", "lazy-wb-assoc")
        assert sum(account.share(bucket) for bucket in BUCKETS) == (
            pytest.approx(1.0))

    def test_format_cycle_accounting_renders(self):
        from repro.harness.report import format_cycle_accounting

        _, account = _profiled_program("counter", "lazy-wb-assoc")
        text = format_cycle_accounting(account, title="test accounting")
        assert "test accounting" in text
        for bucket in BUCKETS:
            assert bucket in text
        assert "balanced" in text


class TestExactDetach:
    def test_detach_restores_class_execute_path(self):
        machine = Machine(functional_config(n_cpus=2))
        before = [cpu.execute for cpu in machine.cpus]
        profiler = CycleProfiler(machine)
        assert all(cpu.execute is not orig
                   for cpu, orig in zip(machine.cpus, before))
        profiler.detach()
        # Zero-overhead contract: no wrapper shadow left behind — the
        # slot holds the original dispatch-table executor again.
        assert all(cpu.execute is orig
                   for cpu, orig in zip(machine.cpus, before))

    def test_detach_restores_htm_seams(self):
        machine = Machine(functional_config(n_cpus=2))
        before = (machine.htm.begin, machine.htm.commit,
                  machine.htm.rollback_to, machine.htm.abandon_all)
        profiler = CycleProfiler(machine)
        profiler.detach()
        after = (machine.htm.begin, machine.htm.commit,
                 machine.htm.rollback_to, machine.htm.abandon_all)
        assert after == before

    @pytest.mark.parametrize("first_out", ["profiler", "tracer",
                                           "collector"])
    def test_stacked_instruments_detach_in_any_order(self, first_out):
        """Tracer, TxStatsCollector and CycleProfiler all wrap
        ``htm.commit``; whichever detaches first must splice out exactly,
        leaving the others live and the seam clean at the end."""
        program = make_program("counter", seed=1)
        config = build_config("lazy-wb-assoc", program)
        machine = Machine(config, policy=make_policy("det", seed=1))
        original_commit = machine.htm.commit
        profiler = CycleProfiler(machine)
        collector = TxStatsCollector(machine)
        tracer = Tracer(machine, sink=RingSink(100_000))
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        program.setup(machine, runtime, arena)
        machine.run(max_cycles=program.max_cycles)
        program.verify(machine)

        order = {"profiler": profiler, "tracer": tracer,
                 "collector": collector}
        order[first_out].detach()
        for name, instrument in order.items():
            if name != first_out:
                instrument.detach()

        assert machine.htm.commit == original_commit
        # Every instrument saw the full run regardless of detach order.
        assert tracer.of_kind("commit")
        assert collector.records
        assert profiler.account().balanced, profiler.account().problems()

    def test_detach_is_idempotent(self):
        machine = Machine(functional_config(n_cpus=2))
        profiler = CycleProfiler(machine)
        profiler.detach()
        profiler.detach()
        assert all(cpu.execute == cpu._execute_step for cpu in machine.cpus)


class TestFlagship:
    def test_profiled_flagship_matches_golden_cycles(self):
        """The bench guard: profiling must not perturb the machine.  The
        profiled flagship produces the golden cycle count bit-for-bit,
        and its books balance."""
        from repro.harness.bench import (
            FLAGSHIP_ID,
            load_golden,
            run_flagship_accounting,
        )

        golden = load_golden()[FLAGSHIP_ID]
        account, errors = run_flagship_accounting(expected_cycles=golden)
        assert errors == []
        assert account.cycles == golden
        assert account.balanced, account.problems()
        # detstress is contention heavy: wasted work must be visible.
        assert account.totals["wasted"] > 0

    def test_golden_trace_digest(self):
        """End-to-end determinism pin: the full event stream of the
        4-CPU detstress cell under the deterministic policy hashes to a
        known digest, with the profiler attached alongside."""
        workload = DetectionStressKernel(n_threads=4)
        config = functional_config(n_cpus=4, detection="eager",
                                   max_nesting=8)
        machine = Machine(config, policy=make_policy("det", seed=1))
        profiler = CycleProfiler(machine)
        tracer = Tracer(machine, sink=RingSink(1_000_000))
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        workload.setup(machine, runtime, arena)
        machine.run(max_cycles=2_000_000_000)
        workload.verify(machine)
        tracer.detach()
        profiler.detach()

        assert machine.stats.get("cycles") == GOLDEN_TRACE_CYCLES
        events = tracer.events
        assert len(events) == GOLDEN_TRACE_EVENTS
        text = "\n".join(str(e) for e in events)
        assert hashlib.sha256(text.encode()).hexdigest() == (
            GOLDEN_TRACE_SHA256)
        assert profiler.account().balanced
