"""Contention-policy convergence: the storm always ends.

The fault matrix leans on three termination guarantees that this file
pins directly:

* a symmetric conflict storm converges under :class:`ExponentialBackoff`
  (every thread commits, and measurably cheaper than blind
  :class:`ImmediateRetry`);
* :class:`RetryCap` bounds the storm — capped threads surface
  ``TxAborted("retry-cap")`` instead of spinning, and the run still
  terminates with a consistent counter;
* a run that *cannot* converge inside its budget is detected — the
  cycle-budget :class:`SimulationError` is exactly how the chaos matrix
  flags a livelocking broken fault — and :meth:`ContentionPolicy.reset`
  is honoured once per ``run_with_policy`` call on both the commit and
  the give-up path, so no per-transaction state leaks into the next
  attempt.
"""

import pytest

from repro.common.errors import SimulationError, TxAborted
from repro.common.params import functional_config
from repro.runtime.contention import (
    ContentionPolicy,
    ExponentialBackoff,
    ImmediateRetry,
    RetryCap,
    run_with_policy,
)
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

SHARED = 0xF_0000
N_CPUS = 4
ROUNDS = 4


def build(**over):
    machine = Machine(functional_config(n_cpus=N_CPUS, **over))
    runtime = Runtime(machine)
    return machine, runtime


def storm(runtime, policies, think=60):
    """Every CPU increments one shared word ROUNDS times — a symmetric
    all-against-all conflict storm."""

    def body(t):
        value = yield t.load(SHARED)
        yield t.alu(think)
        yield t.store(SHARED, value + 1)

    def program(t):
        for _ in range(ROUNDS):
            yield from run_with_policy(
                runtime, t, body, policy=policies[t.cpu_id])
        return "done"

    return program


def total_retries(machine):
    stats = machine.stats.as_dict()
    return sum(v for k, v in stats.items() if k.endswith("rt.retries"))


def _run_storm(make_policy_for_cpu):
    machine, runtime = build()
    policies = {cpu: make_policy_for_cpu(cpu) for cpu in range(N_CPUS)}
    program = storm(runtime, policies)
    for cpu in range(N_CPUS):
        runtime.spawn(program, cpu_id=cpu)
    machine.run()
    return machine


def test_exponential_backoff_converges():
    machine = _run_storm(lambda cpu: ExponentialBackoff(seed=cpu))
    assert machine.memory.read(SHARED) == N_CPUS * ROUNDS
    assert total_retries(machine) > 0, "storm produced no conflicts"


def test_backoff_beats_immediate_retry_on_wasted_work():
    immediate = _run_storm(lambda cpu: ImmediateRetry())
    backoff = _run_storm(lambda cpu: ExponentialBackoff(seed=cpu))
    assert immediate.memory.read(SHARED) == N_CPUS * ROUNDS
    assert backoff.memory.read(SHARED) == N_CPUS * ROUNDS
    # Both converge (the eager/lazy arbitration guarantees a winner),
    # but blind retry burns strictly more attempts on the same storm.
    assert total_retries(immediate) > total_retries(backoff)


def test_retry_cap_bounds_the_storm():
    machine, runtime = build()
    outcomes = []

    def body(t):
        value = yield t.load(SHARED)
        yield t.alu(60)
        yield t.store(SHARED, value + 1)

    def program(t):
        committed = 0
        for _ in range(ROUNDS):
            try:
                yield from run_with_policy(
                    runtime, t, body,
                    policy=RetryCap(max_attempts=2))
                committed += 1
            except TxAborted as aborted:
                outcomes.append(aborted.code)
        return committed

    for cpu in range(N_CPUS):
        runtime.spawn(program, cpu_id=cpu)
    machine.run()
    committed = sum(machine.results().values())
    # Terminated, stayed consistent, and the cap actually bit.
    assert machine.memory.read(SHARED) == committed
    assert outcomes and set(outcomes) == {"retry-cap"}
    stats = machine.stats.as_dict()
    giveups = sum(v for k, v in stats.items()
                  if k.endswith("rt.policy_giveups"))
    assert giveups == len(outcomes)


def test_insufficient_budget_is_detected_not_hung():
    machine, runtime = build()
    policies = {cpu: ImmediateRetry() for cpu in range(N_CPUS)}
    program = storm(runtime, policies, think=200)
    for cpu in range(N_CPUS):
        runtime.spawn(program, cpu_id=cpu)
    with pytest.raises(SimulationError, match="exceeded"):
        machine.run(max_cycles=300)


class RecordingPolicy(ContentionPolicy):
    def __init__(self):
        self.resets = 0

    def reset(self):
        self.resets += 1

    def backoff_cycles(self, attempt):
        return None if attempt > 1 else 0


def test_reset_runs_once_per_transaction_on_both_paths():
    machine, runtime = build()
    commit_policy = RecordingPolicy()
    giveup_policy = RecordingPolicy()

    def quiet(t):
        yield t.store(SHARED, 1)

    def contender(t):
        value = yield t.load(SHARED + 8)
        yield t.alu(120)
        yield t.store(SHARED + 8, value + 1)

    def committer(t):
        yield from run_with_policy(runtime, t, quiet,
                                   policy=commit_policy)

    def giver_up(t):
        for _ in range(6):
            try:
                yield from run_with_policy(runtime, t, contender,
                                           policy=giveup_policy)
            except TxAborted:
                pass

    def hog(t):
        for _ in range(40):
            yield from runtime.atomic(t, contender)

    runtime.spawn(committer, cpu_id=0)
    runtime.spawn(giver_up, cpu_id=1)
    runtime.spawn(hog, cpu_id=2)
    machine.run()
    assert commit_policy.resets == 1
    assert giveup_policy.resets == 6
