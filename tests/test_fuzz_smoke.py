"""Fuzz-smoke regression: a small slice of the schedule-exploration
fuzzer runs on every test invocation.

Two guarantees, per the checking design (docs/checking.md):

* the shipped runtime passes a randomized-schedule sweep of the condsync
  producer/consumer workload (3 seeds x 2 policies, default config) well
  inside a minute, with zero oracle violations;
* the oracles have *teeth*: re-introducing the DESIGN.md §6b.2
  violation-record re-queue bug (via the ``requeue_enabled`` test hook)
  is caught by the lost-wakeup oracle, deterministically, with a
  replayable ``(program, config, policy, seed)`` case.
"""

import time

import pytest

from repro.check import PROGRAMS, run_case, summarize, sweep
from repro.check.fuzz import shrink_change_points

SMOKE_BUDGET_SECONDS = 60


def test_condsync_fuzz_smoke_is_clean_and_fast():
    start = time.monotonic()
    for seed in (1, 2, 3):
        for policy in ("random", "pct"):
            result = run_case("condsync", "lazy-wb-assoc", policy, seed)
            assert not result.skipped
            assert not result.failed, str(result)
            assert result.n_committed > 0
    assert time.monotonic() - start < SMOKE_BUDGET_SECONDS


def test_every_program_passes_one_deterministic_case():
    for name in sorted(PROGRAMS):
        for config in ("lazy-wb-assoc", "eager-wb"):
            result = run_case(name, config, "det", 1)
            assert result.skipped or not result.failed, str(result)


def test_sweep_summary_counts():
    results = sweep(programs=["counter"], configs=["lazy-wb-assoc"],
                    policies=("det", "random"), seeds=2)
    n_run, n_skipped, failures = summarize(results)
    assert (n_run, n_skipped, failures) == (4, 0, [])


def test_drop_requeue_fault_is_caught_with_a_replayable_case():
    result = run_case("requeue", "lazy-wb-assoc", "det", 1,
                      fault="drop-requeue")
    assert result.failed
    assert [v.oracle for v in result.violations] == ["lost-wakeup"]
    assert "cpu(s) [0]" in str(result.violations[0])
    assert result.triple == "requeue:lazy-wb-assoc:det:1"
    # Replaying the advertised case reproduces the identical failure.
    replay = run_case("requeue", "lazy-wb-assoc", "det", 1,
                      fault="drop-requeue")
    assert ([str(v) for v in replay.violations]
            == [str(v) for v in result.violations])


def test_requeue_program_passes_without_the_fault():
    result = run_case("requeue", "lazy-wb-assoc", "det", 1)
    assert not result.failed, str(result)
    assert not result.error


def test_pct_failures_shrink_to_replayable_change_points():
    failure = run_case("requeue", "lazy-wb-assoc", "pct", 1,
                       fault="drop-requeue")
    assert failure.failed
    points, minimal = shrink_change_points(failure, fault="drop-requeue")
    assert minimal.failed
    # The shrunk point set replays the failure on its own.
    replay = run_case("requeue", "lazy-wb-assoc", "pct", 1,
                      fault="drop-requeue", change_points=points)
    assert replay.failed


def test_unknown_fault_and_program_are_rejected():
    with pytest.raises(ValueError):
        run_case("counter", "lazy-wb-assoc", "det", 1, fault="no-such")
    with pytest.raises(ValueError):
        run_case("no-such-program", "lazy-wb-assoc", "det", 1)
