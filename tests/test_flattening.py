"""Flattening semantics: the conventional-HTM baseline (paper §3).

With ``config.flatten=True``, every nested ``xbegin`` is subsumed by the
outermost transaction — the behaviour of the systems the paper compares
against.  These tests pin down exactly what that means.
"""


from repro.common.params import functional_config
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

SHARED = 0x13_0000
INNER_CELL = 0x13_1000


def build(n_cpus=2):
    machine = Machine(functional_config(n_cpus=n_cpus, flatten=True))
    runtime = Runtime(machine)
    return machine, runtime


class TestFlattening:
    def test_inner_commit_publishes_nothing(self):
        machine, runtime = build(1)
        probe = []

        def inner(t):
            yield t.store(INNER_CELL, 5)

        def outer(t):
            yield from runtime.atomic(t, inner)   # subsumed
            probe.append(machine.memory.read(INNER_CELL))

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        assert probe == [0]                        # nothing escaped early
        assert machine.memory.read(INNER_CELL) == 5

    def test_depth_stays_at_one(self):
        machine, runtime = build(1)
        depths = []

        def inner(t):
            depths.append((machine.htm.depth(0), t.xstatus()["level"]))
            yield t.alu(1)

        def outer(t):
            yield from runtime.atomic(t, inner)

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        # hardware depth 1, architectural (virtual) level 2
        assert depths == [(1, 2)]

    def test_open_nesting_is_flattened_too(self):
        """Conventional HTMs have no open nesting: an 'open' commit
        publishes nothing until the outer commit."""
        machine, runtime = build(1)
        probe = []

        def open_body(t):
            yield t.store(INNER_CELL, 9)

        def outer(t):
            yield from runtime.atomic_open(t, open_body)
            probe.append(machine.memory.read(INNER_CELL))

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        assert probe == [0]
        assert machine.memory.read(INNER_CELL) == 9

    def test_inner_conflict_restarts_whole_outer(self):
        machine, runtime = build(2)
        outer_runs = []

        def victim(t):
            def inner(t):
                value = yield t.load(SHARED)
                if len(outer_runs) == 1:
                    yield t.alu(300)
                return value

            def outer(t):
                outer_runs.append(1)
                yield t.store(INNER_CELL, len(outer_runs))
                result = yield from runtime.atomic(t, inner)
                return result

            result = yield from runtime.atomic(t, outer)
            return result

        def attacker(t):
            yield t.alu(60)

            def body(t):
                yield t.store(SHARED, 4)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert len(outer_runs) == 2            # the WHOLE outer re-ran
        assert machine.results()[0] == 4
        assert machine.memory.read(INNER_CELL) == 2

    def test_inner_abort_unwinds_to_outer(self):
        """Under flattening an inner abort cannot be contained: the
        rollback hits the one real (outer) transaction, and the abort
        surfaces from the OUTER atomic block."""
        from repro.common.errors import TxAborted

        machine, runtime = build(1)
        reached = []

        def inner(t):
            yield from runtime.abort(t, code="inner-gone")

        def outer(t):
            yield t.store(INNER_CELL, 1)
            try:
                yield from runtime.atomic(t, inner)
            except TxAborted:
                reached.append("caught-inside")   # must NOT happen
            reached.append("after-inner")

        def program(t):
            try:
                yield from runtime.atomic(t, outer)
            except TxAborted as aborted:
                return ("outer-aborted", aborted.code)

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == ("outer-aborted", "inner-gone")
        assert reached == []
        assert machine.memory.read(INNER_CELL) == 0

    def test_handlers_defer_to_real_commit(self):
        machine, runtime = build(1)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def inner(t):
            yield from runtime.register_commit_handler(t, handler, "inner")

        def outer(t):
            yield from runtime.atomic(t, inner)
            log.append("inner-done")

        def program(t):
            yield from runtime.atomic(t, outer)
            log.append("outer-done")

        runtime.spawn(program)
        machine.run()
        # the subsumed inner commit ran no handlers; the real one did
        assert log == ["inner-done", "inner", "outer-done"]

    def test_stats_expose_flattening(self):
        machine, runtime = build(1)

        def inner(t):
            yield t.alu(1)

        def outer(t):
            yield from runtime.atomic(t, inner)

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        assert machine.stats.total("htm.begins_flattened") == 1
        assert machine.stats.total("htm.commits_flattened") == 1
        assert machine.stats.total("htm.commits_closed") == 0
