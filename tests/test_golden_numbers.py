"""Golden-number regression tests.

Every simulation is deterministic, so key experiment quantities can be
pinned within a tolerance band: an accidental change to engine timing,
conflict handling, or the runtime sequences shows up here before it
silently warps the reproduced figures.  The bands are deliberately wide
(±25%) so deliberate re-tuning rarely trips them; the *relationships*
(asserted by the benchmarks) are the real contract.
"""

import pytest

from repro.common.params import paper_config
from repro.workloads import JbbWorkload, Mp3dKernel, SwimKernel

#: (workload factory, config overrides, expected cycles)
GOLDEN = [
    ("swim seq", lambda: SwimKernel(n_threads=1), dict(n_cpus=1), 166_515),
    ("swim nested x8", lambda: SwimKernel(n_threads=8), dict(n_cpus=8),
     29_653),
    ("mp3d nested x8", lambda: Mp3dKernel(n_threads=8), dict(n_cpus=8),
     56_561),
    ("mp3d flat x8", lambda: Mp3dKernel(n_threads=8),
     dict(n_cpus=8, flatten=True), 133_112),
    ("jbb-closed x8", lambda: JbbWorkload(n_threads=8), dict(n_cpus=8),
     78_049),
]

TOLERANCE = 0.25


@pytest.mark.parametrize("name,factory,overrides,expected",
                         GOLDEN, ids=[g[0] for g in GOLDEN])
def test_golden_cycles(name, factory, overrides, expected):
    machine = factory().run(paper_config(**overrides))
    cycles = machine.stats.get("cycles")
    low = expected * (1 - TOLERANCE)
    high = expected * (1 + TOLERANCE)
    assert low <= cycles <= high, (
        f"{name}: {cycles} cycles, golden {expected} (±25%). If this "
        "change is intentional, refresh GOLDEN and EXPERIMENTS.md.")


def test_determinism_of_golden_runs():
    """The golden runs are bit-for-bit reproducible."""
    first = Mp3dKernel(n_threads=4).run(
        paper_config(n_cpus=4)).stats.get("cycles")
    second = Mp3dKernel(n_threads=4).run(
        paper_config(n_cpus=4)).stats.get("cycles")
    assert first == second
