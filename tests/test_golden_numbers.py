"""Golden-number regression tests.

Every simulation is deterministic, so key experiment quantities can be
pinned within a tolerance band: an accidental change to engine timing,
conflict handling, or the runtime sequences shows up here before it
silently warps the reproduced figures.  The bands are deliberately wide
(±25%) so deliberate re-tuning rarely trips them; the *relationships*
(asserted by the benchmarks) are the real contract.
"""

import pytest

from repro.common.params import paper_config
from repro.workloads import JbbWorkload, Mp3dKernel, SwimKernel

#: (workload factory, config overrides, expected cycles)
GOLDEN = [
    ("swim seq", lambda: SwimKernel(n_threads=1), dict(n_cpus=1), 166_515),
    ("swim nested x8", lambda: SwimKernel(n_threads=8), dict(n_cpus=8),
     29_653),
    ("mp3d nested x8", lambda: Mp3dKernel(n_threads=8), dict(n_cpus=8),
     56_561),
    ("mp3d flat x8", lambda: Mp3dKernel(n_threads=8),
     dict(n_cpus=8, flatten=True), 133_112),
    ("jbb-closed x8", lambda: JbbWorkload(n_threads=8), dict(n_cpus=8),
     78_049),
]

TOLERANCE = 0.25


@pytest.mark.parametrize("name,factory,overrides,expected",
                         GOLDEN, ids=[g[0] for g in GOLDEN])
def test_golden_cycles(name, factory, overrides, expected):
    machine = factory().run(paper_config(**overrides))
    cycles = machine.stats.get("cycles")
    low = expected * (1 - TOLERANCE)
    high = expected * (1 + TOLERANCE)
    assert low <= cycles <= high, (
        f"{name}: {cycles} cycles, golden {expected} (±25%). If this "
        "change is intentional, refresh GOLDEN and EXPERIMENTS.md.")


def test_determinism_of_golden_runs():
    """The golden runs are bit-for-bit reproducible."""
    first = Mp3dKernel(n_threads=4).run(
        paper_config(n_cpus=4)).stats.get("cycles")
    second = Mp3dKernel(n_threads=4).run(
        paper_config(n_cpus=4)).stats.get("cycles")
    assert first == second


# ---------------------------------------------------------------------------
# Exact pins (no tolerance band)
# ---------------------------------------------------------------------------
#
# Unlike the ±25% bands above, these cells must match the bench goldens
# *exactly*: the hot-path optimizations (reverse conflict index, scoped
# counters, heap-backed ready queue — see docs/performance.md) promise to
# change no observable cycle, so any scheduler/stats/detector change that
# perturbs a schedule fails loudly here.  Refresh with
# ``python -m repro bench --update-golden`` only for an *intentional*
# behaviour change, and say why in the commit.

EXACT_CELLS = [
    ("swim-lazy-x4",
     lambda: SwimKernel(n_threads=4), dict(n_cpus=4, detection="lazy")),
    ("mp3d-eager-x4",
     lambda: Mp3dKernel(n_threads=4), dict(n_cpus=4, detection="eager")),
]


@pytest.mark.parametrize("cell_id,factory,overrides",
                         EXACT_CELLS, ids=[c[0] for c in EXACT_CELLS])
def test_exact_cycle_pins_match_bench_goldens(cell_id, factory, overrides):
    from repro.harness.bench import load_golden

    golden = load_golden()
    assert cell_id in golden, (
        f"{cell_id} missing from bench_golden.json; run "
        "`python -m repro bench --update-golden`")
    machine = factory().run(paper_config(**overrides))
    assert machine.stats.get("cycles") == golden[cell_id]


def test_exact_cycle_pin_flagship_detstress():
    """The bench flagship (16-CPU eager, deep nesting) pinned exactly,
    on the indexed-detector path the simulator always uses."""
    from repro.harness.bench import (
        FLAGSHIP_CPUS,
        FLAGSHIP_ID,
        _flagship_config,
        load_golden,
        run_cell,
    )
    from repro.workloads import DetectionStressKernel

    golden = load_golden()
    assert FLAGSHIP_ID in golden
    result = run_cell(
        lambda: DetectionStressKernel(n_threads=FLAGSHIP_CPUS),
        _flagship_config(naive=False))
    assert result["cycles"] == golden[FLAGSHIP_ID]
