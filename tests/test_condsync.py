"""Conditional-synchronization runtime tests (paper §5, Figure 3)."""


from repro.common.params import functional_config, paper_config
from repro.mem.layout import SharedArena
from repro.runtime.condsync import CondScheduler
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


def build(n_cpus=4, config=None):
    machine = Machine(config or functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    cond = CondScheduler(runtime, arena)
    return machine, runtime, arena, cond


def producer_consumer(machine, runtime, arena, cond, n_items,
                      producer_delay=0, producer_gap=0):
    available = arena.alloc_word(0, isolate=True)
    value_cell = arena.alloc_word(0, isolate=True)

    def producer(t):
        yield t.alu(1 + producer_delay)
        for i in range(1, n_items + 1):
            def body(t, i=i):
                full = yield t.load(available)
                if full:
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, available)
                    yield from cond.retry(t)
                yield t.store(value_cell, i)
                yield t.store(available, 1)
            yield from cond.atomic(t, body)
            if producer_gap:
                yield t.alu(producer_gap)
        yield from cond.cancel_watches(t)
        return "produced"

    def consumer(t):
        got = []
        for _ in range(n_items):
            def body(t):
                full = yield t.load(available)
                if not full:
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, available)
                    yield from cond.retry(t)
                value = yield t.load(value_cell)
                yield t.store(available, 0)
                return value
            got.append((yield from cond.atomic(t, body)))
        yield from cond.cancel_watches(t)
        return got

    cond.spawn_scheduler(cpu_id=0)
    runtime.spawn(producer, cpu_id=1)
    runtime.spawn(consumer, cpu_id=2)


class TestProducerConsumer:
    def test_in_order_exactly_once(self):
        machine, runtime, arena, cond = build()
        producer_consumer(machine, runtime, arena, cond, n_items=10)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[2] == list(range(1, 11))

    def test_slow_producer_parks_consumer(self):
        machine, runtime, arena, cond = build()
        producer_consumer(machine, runtime, arena, cond, n_items=8,
                          producer_delay=3000, producer_gap=500)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[2] == list(range(1, 9))
        assert machine.stats.total("rt.parks") >= 1
        assert machine.stats.total("condsync.wakeups") >= 1

    def test_with_full_timing_model(self):
        config = paper_config(n_cpus=4)
        machine, runtime, arena, cond = build(config=config)
        producer_consumer(machine, runtime, arena, cond, n_items=8,
                          producer_delay=4000, producer_gap=400)
        machine.run(max_cycles=30_000_000)
        assert machine.results()[2] == list(range(1, 9))

    def test_deterministic(self):
        def run_once():
            machine, runtime, arena, cond = build()
            producer_consumer(machine, runtime, arena, cond, n_items=6,
                              producer_delay=2000, producer_gap=300)
            machine.run(max_cycles=10_000_000)
            return machine.now, machine.results()[2]

        assert run_once() == run_once()


class TestMultipleWaiters:
    def test_broadcast_wake_on_shared_flag(self):
        """Several threads watching one flag all wake when it changes."""
        machine, runtime, arena, cond = build(n_cpus=5)
        flag = arena.alloc_word(0, isolate=True)

        def waiter(t):
            def body(t):
                go = yield t.load(flag)
                if not go:
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, flag)
                    yield from cond.retry(t)
                return "released"
            result = yield from cond.atomic(t, body)
            yield from cond.cancel_watches(t)
            return result

        def releaser(t):
            yield t.alu(4000)
            def body(t):
                yield t.store(flag, 1)
            yield from runtime.atomic(t, body)
            return "released-them"

        cond.spawn_scheduler(cpu_id=0)
        for cpu in (1, 2, 3):
            runtime.spawn(waiter, cpu_id=cpu)
        runtime.spawn(releaser, cpu_id=4)
        machine.run(max_cycles=10_000_000)
        for cpu in (1, 2, 3):
            assert machine.results()[cpu] == "released"

    def test_two_pairs_independent_wakeups(self):
        """A write to one watched flag must not wake the other pair."""
        machine, runtime, arena, cond = build(n_cpus=5)
        flags = [arena.alloc_word(0, isolate=True) for _ in range(2)]
        cells = [arena.alloc_word(0, isolate=True) for _ in range(2)]

        def consumer(pair):
            def program(t):
                def body(t):
                    full = yield t.load(flags[pair])
                    if not full:
                        yield from cond.register_cancel(t)
                        yield from cond.watch(t, flags[pair])
                        yield from cond.retry(t)
                    value = yield t.load(cells[pair])
                    return value
                value = yield from cond.atomic(t, body)
                yield from cond.cancel_watches(t)
                return value
            return program

        def producer(pair, delay, value):
            def program(t):
                yield t.alu(delay)
                def body(t):
                    yield t.store(cells[pair], value)
                    yield t.store(flags[pair], 1)
                yield from runtime.atomic(t, body)
            return program

        cond.spawn_scheduler(cpu_id=0)
        runtime.spawn(consumer(0), cpu_id=1)
        runtime.spawn(consumer(1), cpu_id=2)
        runtime.spawn(producer(0, 3000, 111), cpu_id=3)
        runtime.spawn(producer(1, 6000, 222), cpu_id=4)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == 111
        assert machine.results()[2] == 222


class TestCancellation:
    def test_direct_violation_cancels_watch(self):
        """A waiter violated before parking restarts and re-evaluates
        the condition instead of sleeping through it (Figure 3's cancel
        handler)."""
        machine, runtime, arena, cond = build()
        flag = arena.alloc_word(0, isolate=True)

        def waiter(t):
            rounds = []

            def body(t):
                rounds.append(1)
                go = yield t.load(flag)
                if not go:
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, flag)
                    yield from cond.retry(t)
                return len(rounds)

            result = yield from cond.atomic(t, body)
            yield from cond.cancel_watches(t)
            return result

        def writer(t):
            yield t.alu(300)
            def body(t):
                yield t.store(flag, 1)
            yield from runtime.atomic(t, body)

        cond.spawn_scheduler(cpu_id=0)
        runtime.spawn(waiter, cpu_id=1)
        runtime.spawn(writer, cpu_id=2)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] >= 2
        # the scheduler holds no leftover watches for the waiter
        assert not cond._watches_of.get(1)

    def test_cancel_watches_cleans_scheduler_state(self):
        machine, runtime, arena, cond = build()
        flag = arena.alloc_word(0, isolate=True)

        def program(t):
            def body(t):
                yield from cond.register_cancel(t)
                yield from cond.watch(t, flag)
                # do not retry: just leave the watch behind
                yield t.alu(1)
            yield from cond.atomic(t, body)
            yield from cond.cancel_watches(t)
            yield t.alu(200)   # let the scheduler drain
            return "ok"

        cond.spawn_scheduler(cpu_id=0)
        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == "ok"
        assert not cond._watches_of.get(1)
        assert all(1 not in waiters for waiters in cond._waiting.values())
