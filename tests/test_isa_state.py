"""Unit tests: IsaState violation machinery, code registry, TCB layout,
dispatch defaults."""

import pytest

from repro.common.errors import SimulationError
from repro.isa import tcb
from repro.isa.codereg import CodeRegistry
from repro.isa.state import IsaState, lowest_level_in_mask


class TestViolationMachinery:
    def test_post_and_pop(self):
        isa = IsaState(0)
        isa.post(0b01, 0x100)
        isa.post(0b10, 0x200)
        assert isa.has_deliverable()
        assert isa.xvpending == 0b11
        isa.pop_next()
        assert isa.xvcurrent == 0b01
        assert isa.xvaddr == 0x100
        assert isa.xvpending == 0b10   # one still queued

    def test_fifo_order(self):
        isa = IsaState(0)
        for i in range(3):
            isa.post(1 << i, 0x100 * (i + 1))
        seen = []
        for _ in range(3):
            isa.pop_next()
            seen.append((isa.xvcurrent, isa.xvaddr))
            isa.clear_current()
        assert seen == [(1, 0x100), (2, 0x200), (4, 0x300)]

    def test_clear_current_with_mask(self):
        isa = IsaState(0)
        isa.xvcurrent = 0b111
        isa.clear_current(0b010)
        assert isa.xvcurrent == 0b101
        isa.clear_current()
        assert isa.xvcurrent == 0

    def test_clear_masks_at_and_above(self):
        isa = IsaState(0)
        isa.xvcurrent = 0b111      # levels 1-3
        isa.post(0b110, 0x100)     # levels 2-3
        isa.post(0b001, 0x200)     # level 1
        isa.clear_masks_at_and_above(2)
        assert isa.xvcurrent == 0b001
        # queued record for levels >= 2 dropped; level-1 record kept
        assert isa.xvpending == 0b001
        isa.pop_next()
        assert isa.xvaddr == 0x200

    def test_requeue_current_masks_surviving_levels(self):
        isa = IsaState(0)
        isa.xvcurrent = 0b011      # levels 1 and 2 violated
        isa.xvaddr = 0x300
        isa.requeue_current(rollback_level=2)
        # level 2 dies with the rollback; level 1 must be re-delivered
        assert isa.xvcurrent == 0
        assert isa.xvpending == 0b001
        isa.pop_next()
        assert (isa.xvcurrent, isa.xvaddr) == (0b001, 0x300)

    def test_requeue_current_drops_fully_covered_record(self):
        isa = IsaState(0)
        isa.xvcurrent = 0b010
        isa.requeue_current(rollback_level=1)
        assert not isa.has_deliverable()

    def test_lowest_level_in_mask(self):
        assert lowest_level_in_mask(0b001) == 1
        assert lowest_level_in_mask(0b110) == 2
        assert lowest_level_in_mask(0b100) == 3
        assert lowest_level_in_mask(0) == 0


class TestCodeRegistry:
    def test_register_and_resolve(self):
        registry = CodeRegistry()

        def fn(t):
            yield t.alu()

        code_id = registry.register(fn)
        assert code_id >= 1
        assert registry.get(code_id) is fn
        assert code_id in registry

    def test_idempotent_registration(self):
        registry = CodeRegistry()

        def fn(t):
            yield t.alu()

        assert registry.register(fn) == registry.register(fn)
        assert len(registry) == 1

    def test_wild_jump_rejected(self):
        registry = CodeRegistry()
        with pytest.raises(SimulationError):
            registry.get(99)

    def test_zero_never_assigned(self):
        """Id 0 means 'no handler installed' and must stay unused."""
        registry = CodeRegistry()

        def fn(t):
            yield t.alu()

        assert registry.register(fn) != 0
        assert 0 not in registry


class TestTcbLayout:
    def test_frames_are_fixed_length_and_disjoint(self):
        a = tcb.frame_addr(0, 1)
        b = tcb.frame_addr(0, 2)
        assert b - a == tcb.FRAME_BYTES

    def test_per_cpu_segments_disjoint(self):
        assert tcb.tcb_stack_base(0) != tcb.tcb_stack_base(1)
        assert tcb.handler_stack_base(0, "commit") \
            != tcb.handler_stack_base(1, "commit")

    def test_handler_stacks_disjoint_per_kind(self):
        kinds = ["commit", "violation", "abort"]
        bases = [tcb.handler_stack_base(0, kind) for kind in kinds]
        assert len(set(bases)) == 3
        for base in bases:
            assert base >= tcb.tcb_stack_base(0) + tcb.TCB_STACK_BYTES

    def test_field_addresses(self):
        frame = tcb.frame_addr(2, 3)
        assert tcb.field_addr(2, 3, tcb.CH_TOP) == frame
        assert tcb.field_addr(2, 3, tcb.VH_TOP) == frame + 4
        assert tcb.field_addr(2, 3, tcb.AH_TOP) == frame + 8

    def test_scratch_beyond_handler_stacks(self):
        assert tcb.scratch_base(0) >= tcb.handler_stack_base(0, "abort") \
            + tcb.HANDLER_STACK_BYTES
