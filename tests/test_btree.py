"""B-tree tests: host-level structure checks plus concurrent operation."""

import random

import pytest

from repro.common.errors import MemoryError_
from repro.common.params import functional_config
from repro.mem.btree import MAX_KEYS, BTree
from repro.mem.hostexec import host
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


def build(n_cpus=1, nodes=256):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    tree = BTree(arena, capacity_nodes=nodes)
    return machine, runtime, arena, tree


class TestHostLevel:
    def test_insert_lookup_roundtrip(self):
        machine, _, _, tree = build()
        for key in [5, 1, 9, 3, 7]:
            host(tree.insert, machine.memory, key, key * 2)
        for key in [5, 1, 9, 3, 7]:
            assert host(tree.lookup, machine.memory, key) == key * 2
        assert host(tree.lookup, machine.memory, 100) is None

    def test_sorted_iteration(self):
        machine, _, _, tree = build()
        keys = list(range(1, 200))
        random.Random(3).shuffle(keys)
        for key in keys:
            host(tree.insert, machine.memory, key, key)
        items = tree.items_host(machine.memory)
        assert [k for k, _ in items] == sorted(keys)

    def test_upsert_overwrites(self):
        machine, _, _, tree = build()
        host(tree.insert, machine.memory, 4, 40)
        assert host(tree.insert, machine.memory, 4, 44) is False
        assert host(tree.lookup, machine.memory, 4) == 44
        assert host(tree.count, machine.memory) == 1

    def test_update_adds_delta(self):
        machine, _, _, tree = build()
        host(tree.insert, machine.memory, 8, 100)
        assert host(tree.update, machine.memory, 8, -30) == 70
        assert host(tree.update, machine.memory, 999, 1) is None

    def test_splits_preserve_all_keys(self):
        machine, _, _, tree = build()
        n = MAX_KEYS * 10   # force multiple levels of splits
        for key in range(1, n + 1):
            host(tree.insert, machine.memory, key, key)
        assert host(tree.count, machine.memory) == n
        items = tree.items_host(machine.memory)
        assert [k for k, _ in items] == list(range(1, n + 1))

    def test_descending_and_interleaved_inserts(self):
        machine, _, _, tree = build()
        keys = list(range(100, 0, -1)) + list(range(101, 160))
        for key in keys:
            host(tree.insert, machine.memory, key, key)
        items = tree.items_host(machine.memory)
        assert [k for k, _ in items] == sorted(keys)

    def test_duplicate_median_update_during_descent(self):
        """Upserting a key that becomes a split median must update, not
        duplicate."""
        machine, _, _, tree = build()
        for key in range(1, 50):
            host(tree.insert, machine.memory, key, key)
        items_before = tree.items_host(machine.memory)
        medians = [k for k, _ in items_before]
        for key in medians:
            host(tree.insert, machine.memory, key, key + 1000)
        items = tree.items_host(machine.memory)
        assert len(items) == len(items_before)
        assert all(v == k + 1000 for k, v in items)

    def test_node_pool_exhaustion(self):
        machine, _, _, tree = build(nodes=2)
        with pytest.raises(MemoryError_):
            for key in range(1, 100):
                host(tree.insert, machine.memory, key, key)


class TestConcurrent:
    @pytest.mark.parametrize("detection,versioning", [
        ("lazy", "write_buffer"),
        ("eager", "undo_log"),
    ])
    def test_parallel_inserts_linearize(self, detection, versioning):
        machine = Machine(functional_config(
            n_cpus=4, detection=detection, versioning=versioning))
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        tree = BTree(arena, capacity_nodes=400)
        keys = list(range(1, 241))
        random.Random(11).shuffle(keys)
        chunks = [keys[i::4] for i in range(4)]

        def program(t, chunk):
            for key in chunk:
                def body(t, key=key):
                    yield from tree.insert(t, key, key * 3)
                yield from runtime.atomic(t, body)

        for chunk in chunks:
            runtime.spawn(program, chunk)
        machine.run(max_cycles=500_000_000)
        items = tree.items_host(machine.memory)
        assert [k for k, _ in items] == sorted(keys)
        assert all(v == k * 3 for k, v in items)

    def test_mixed_read_write_workload(self):
        machine = Machine(functional_config(n_cpus=4))
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        tree = BTree(arena, capacity_nodes=200)
        for key in range(1, 65):
            host(tree.insert, machine.memory, key, 100)

        def updater(t):
            rng = random.Random(t.cpu_id)
            plan = [rng.randrange(1, 65) for _ in range(20)]
            for key in plan:
                def body(t, key=key):
                    result = yield from tree.update(t, key, 1)
                    return result
                yield from runtime.atomic(t, body)
            return len(plan)

        for cpu in range(4):
            runtime.spawn(updater, cpu_id=cpu)
        machine.run(max_cycles=500_000_000)
        total = sum(v for _, v in tree.items_host(machine.memory))
        assert total == 64 * 100 + 4 * 20   # every update exactly once

    def test_nested_library_calls(self):
        """B-tree ops as closed-nested library calls inside a bigger
        transaction — the transparent-library scenario of Section 3."""
        machine = Machine(functional_config(n_cpus=2))
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        tree = BTree(arena, capacity_nodes=100)
        counter = arena.alloc_word(0, isolate=True)

        def op(t, key):
            def libcall(t):
                yield from tree.insert(t, key, key)

            def body(t):
                value = yield t.load(counter)
                yield t.alu(40)
                yield from runtime.atomic(t, libcall)   # nested
                yield t.store(counter, value + 1)

            yield from runtime.atomic(t, body)

        def program(t, base):
            for i in range(10):
                yield from op(t, base + i)

        runtime.spawn(program, 100, cpu_id=0)
        runtime.spawn(program, 200, cpu_id=1)
        machine.run(max_cycles=500_000_000)
        assert machine.memory.read(counter) == 20
        assert len(tree.items_host(machine.memory)) == 20
