"""Tests: the per-transaction statistics collector and the sweep harness."""


from repro.common.params import functional_config, paper_config
from repro.harness.sweep import (
    config_sweep,
    format_speedup_curve,
    speedup_curve,
)
from repro.harness.txstats import TxStatsCollector, format_tx_character
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

BASE = 0x17_0000


def build(n_cpus=2):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    return machine, runtime


class TestTxStatsCollector:
    def test_records_commit_kinds_and_sizes(self):
        machine, runtime = build(1)

        def inner(t):
            yield t.store(BASE + 0x100, 1)

        def open_body(t):
            yield t.store(BASE + 0x200, 2)

        def outer(t):
            yield t.load(BASE)
            yield t.store(BASE + 0x300, 3)
            yield from runtime.atomic(t, inner)
            yield from runtime.atomic_open(t, open_body)
            yield t.alu(50)

        def program(t):
            yield from runtime.atomic(t, outer)

        with TxStatsCollector(machine) as collector:
            runtime.spawn(program)
            machine.run()
        kinds = sorted(r.kind for r in collector.records)
        assert kinds == ["closed", "open", "outer"]
        outer_rec = collector.of_kind("outer")[0]
        closed_rec = collector.of_kind("closed")[0]
        assert outer_rec.level == 1 and closed_rec.level == 2
        # the outer accumulated the merged child line plus its own
        assert outer_rec.write_units >= 2
        assert outer_rec.duration > closed_rec.duration
        assert outer_rec.duration >= 50

    def test_restarted_transaction_duration_measured_from_restart(self):
        machine, runtime = build(2)

        def victim(t):
            def body(t):
                value = yield t.load(BASE)
                yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(BASE, 1)

            yield from runtime.atomic(t, body)

        with TxStatsCollector(machine) as collector:
            runtime.spawn(victim, cpu_id=0)
            runtime.spawn(attacker, cpu_id=1)
            machine.run()
        victim_commit = [r for r in collector.of_kind("outer")
                         if r.cpu == 0][0]
        # The committed attempt began at the restart, not at cycle ~0:
        # its duration is one body's worth, not the whole run.
        assert victim_commit.duration < machine.now - 300

    def test_summary_and_formatting(self):
        machine, runtime = build(1)

        def body(t):
            yield t.store(BASE, 1)

        def program(t):
            for _ in range(3):
                yield from runtime.atomic(t, body)

        with TxStatsCollector(machine) as collector:
            runtime.spawn(program)
            machine.run()
        summary = collector.summary("outer")
        assert summary.count == 3
        assert summary.mean_writes == 1.0
        assert summary.max_level == 1
        text = format_tx_character([("demo", summary)])
        assert "demo" in text and "3" in text
        empty = collector.summary("open")
        assert empty.count == 0

    def test_detach_restores(self):
        machine, runtime = build(1)
        collector = TxStatsCollector(machine)
        collector.detach()
        collector.detach()

        def body(t):
            yield t.store(BASE, 1)

        def program(t):
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        assert collector.records == []   # nothing recorded after detach

    def test_flattened_commits_not_recorded_as_nested(self):
        machine = Machine(functional_config(n_cpus=1, flatten=True))
        runtime = Runtime(machine)

        def inner(t):
            yield t.store(BASE, 1)

        def outer(t):
            yield from runtime.atomic(t, inner)

        def program(t):
            yield from runtime.atomic(t, outer)

        with TxStatsCollector(machine) as collector:
            runtime.spawn(program)
            machine.run()
        assert [r.kind for r in collector.records] == ["outer"]


class TestSweep:
    def test_speedup_curve_monotone_for_parallel_work(self):
        from repro.workloads import SwimKernel

        points = speedup_curve(
            lambda n: SwimKernel(n_threads=n, scale=0.5),
            cpu_counts=(1, 2, 4))
        assert points[0].speedup == 1.0
        assert points[1].speedup > 1.3
        assert points[2].speedup > points[1].speedup
        text = format_speedup_curve(points, "swim")
        assert "swim" in text and "1.00x" in text

    def test_config_sweep_runs_each_variant(self):
        from repro.workloads import SwimKernel

        results = config_sweep(
            lambda n: SwimKernel(n_threads=n, scale=0.25),
            axes=[("plain", {}), ("msi", {"coherence": "msi"})],
            n_cpus=2)
        assert set(results) == {"plain", "msi"}
        # digested Profile objects, not live machines
        for profile in results.values():
            assert profile.cycles > 0
            assert profile.total_commits > 0


class TestExport:
    def test_comparison_roundtrip(self, tmp_path):
        import json

        from repro.harness.experiment import NestingComparison
        from repro.harness.export import comparison_to_dict, dump_json

        comparison = NestingComparison("demo", 100, 60, 30)
        payload = comparison_to_dict(comparison)
        assert payload["improvement"] == 2.0
        out = tmp_path / "figure5.json"
        dump_json([payload], str(out))
        loaded = json.loads(out.read_text())
        assert loaded[0]["name"] == "demo"

    def test_scaling_and_profile_export(self):
        from repro.harness.experiment import ScalingPoint
        from repro.harness.export import (
            profile_to_dict,
            rows_to_csv,
            scaling_to_dicts,
        )
        from repro.harness.profile import profile_machine
        from repro.workloads import SwimKernel
        from repro.common.params import paper_config

        dicts = scaling_to_dicts([ScalingPoint(2, 100, 20)])
        assert dicts[0]["throughput"] == 200.0
        machine = SwimKernel(n_threads=2, scale=0.25).run(
            paper_config(n_cpus=2))
        payload = profile_to_dict(profile_machine(machine))
        assert payload["commits_outer"] > 0
        text = rows_to_csv(["a", "b"], [[1, 2]])
        assert "a,b" in text and "1,2" in text

    def test_cli_figure5_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "f5.json"
        code = main(["figure5", "--cpus", "2", "--scale", "0.25",
                     "--json", str(out)])
        assert code == 0
        import json

        data = json.loads(out.read_text())
        assert any(entry["name"] == "mp3d" for entry in data)


class TestApiDocsGenerator:
    def test_generator_produces_markdown(self):
        import sys
        sys.path.insert(0, "tools")
        try:
            import gen_api_docs

            text = gen_api_docs.generate()
        finally:
            sys.path.pop(0)
        assert text.startswith("# API index")
        assert "repro.htm.system" in text
        assert "HtmSystem" in text
