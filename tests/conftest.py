"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import functional_config, paper_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


class Bench:
    """A ready-to-use machine + runtime + arena bundle."""

    def __init__(self, config):
        self.config = config
        self.machine = Machine(config)
        self.runtime = Runtime(self.machine)
        self.arena = SharedArena(self.machine)

    @property
    def memory(self):
        return self.machine.memory

    @property
    def stats(self):
        return self.machine.stats

    def spawn(self, program, *args, **kwargs):
        return self.runtime.spawn(program, *args, **kwargs)

    def run(self, **kwargs):
        return self.machine.run(**kwargs)


@pytest.fixture
def bench():
    """A 4-CPU functional-timing machine (fast, for semantics tests)."""
    return Bench(functional_config(n_cpus=4))


@pytest.fixture
def bench8():
    """An 8-CPU functional-timing machine."""
    return Bench(functional_config(n_cpus=8))


@pytest.fixture
def timed_bench():
    """A 4-CPU machine with the paper's full memory hierarchy."""
    return Bench(paper_config(n_cpus=4))


def make_bench(**overrides):
    """Build a bench with arbitrary config overrides."""
    return Bench(functional_config(**overrides))
