"""Unit tests: memory image, caches, bus, hierarchy timing."""

import pytest

from repro.common.errors import MemoryError_
from repro.common.params import paper_config
from repro.common.stats import Stats
from repro.memsys.bus import Bus
from repro.memsys.cache import Cache
from repro.memsys.hierarchy import (
    FlatMemory,
    HierarchicalMemory,
    make_memory_model,
)
from repro.memsys.memory import MemoryImage


class TestMemoryImage:
    def test_read_default_zero(self):
        assert MemoryImage().read(0x1000) == 0

    def test_write_read(self):
        memory = MemoryImage()
        memory.write(0x1000, 42)
        assert memory.read(0x1000) == 42

    def test_unaligned_rejected(self):
        memory = MemoryImage()
        with pytest.raises(MemoryError_):
            memory.read(0x1001)
        with pytest.raises(MemoryError_):
            memory.write(0x1002, 1)

    def test_block_ops(self):
        memory = MemoryImage()
        memory.write_block(0x100, [1, 2, 3])
        assert memory.read_block(0x100, 3) == [1, 2, 3]
        assert memory.read_block(0x100, 4) == [1, 2, 3, 0]

    def test_snapshot_is_copy(self):
        memory = MemoryImage()
        memory.write(0x100, 5)
        snap = memory.snapshot()
        memory.write(0x100, 6)
        assert snap[0x100] == 5


class TestBus:
    def test_uncontended_acquire(self):
        bus = Bus(paper_config(), Stats())
        done = bus.acquire(now=100, hold_cycles=2)
        # arbitration (3) + transfer (2)
        assert done == 105

    def test_contention_queues(self):
        bus = Bus(paper_config(), Stats())
        first = bus.acquire(0, 10)
        second = bus.acquire(1, 10)
        assert second >= first + 10

    def test_line_transfer_uses_config(self):
        config = paper_config()
        bus = Bus(config, Stats())
        done = bus.line_transfer(0)
        assert done == config.bus_arbitration + config.line_transfer_cycles

    def test_stats_recorded(self):
        stats = Stats()
        bus = Bus(paper_config(), stats)
        bus.acquire(0, 4)
        assert stats.get("bus.transactions") == 1
        assert stats.get("bus.busy_cycles") == 4


class TestCache:
    def make(self, size=1024, assoc=2, line=32):
        return Cache("l1", size, assoc, line, Stats().scope("c"))

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.lookup(0x100)
        cache.insert(0x100)
        assert cache.lookup(0x104)  # same line

    def test_lru_eviction(self):
        cache = self.make(size=64, assoc=2, line=32)  # one set, two ways
        cache.insert(0x000)
        cache.insert(0x020)
        cache.lookup(0x000)            # make 0x20 the LRU victim
        victim = cache.insert(0x040)
        assert victim == 0x020
        assert cache.contains(0x000)
        assert not cache.contains(0x020)

    def test_invalidate(self):
        cache = self.make()
        cache.insert(0x100)
        assert cache.invalidate(0x100)
        assert not cache.invalidate(0x100)
        assert not cache.contains(0x100)

    def test_sets_isolate_addresses(self):
        cache = self.make(size=128, assoc=1, line=32)  # 4 sets
        cache.insert(0x000)
        cache.insert(0x020)  # different set
        assert cache.contains(0x000) and cache.contains(0x020)


class TestHierarchy:
    def test_factory_respects_timing_flag(self):
        stats = Stats()
        assert isinstance(
            make_memory_model(paper_config(), stats), HierarchicalMemory)
        assert isinstance(
            make_memory_model(paper_config(timing=False), stats), FlatMemory)

    def test_l1_hit_costs_one(self):
        config = paper_config(n_cpus=2)
        mem = HierarchicalMemory(config, Stats())
        mem.access(0, 0x1000, False, 0)   # cold miss, fills caches
        assert mem.access(0, 0x1000, False, 50) == config.l1_latency

    def test_miss_costs_memory_latency(self):
        config = paper_config(n_cpus=2)
        mem = HierarchicalMemory(config, Stats())
        latency = mem.access(0, 0x1000, False, 0)
        assert latency >= config.mem_latency

    def test_l2_hit_after_l1_pressure(self):
        config = paper_config(n_cpus=1)
        mem = HierarchicalMemory(config, Stats())
        mem.access(0, 0x1000, False, 0)
        # Evict 0x1000 from L1 by filling its set (same set index).
        set_span = config.l1_sets * config.line_size
        for i in range(1, config.l1_assoc + 1):
            mem.access(0, 0x1000 + i * set_span, False, 0)
        latency = mem.access(0, 0x1000, False, 1000)
        assert latency == config.l2_latency

    def test_commit_broadcast_invalidates_remote(self):
        config = paper_config(n_cpus=2)
        mem = HierarchicalMemory(config, Stats())
        mem.access(1, 0x2000, False, 0)
        assert mem.l1[1].contains(0x2000)
        mem.commit_broadcast(0, {0x2000}, 100)
        assert not mem.l1[1].contains(0x2000)
        assert not mem.l2[1].contains(0x2000)

    def test_commit_broadcast_cost_scales_with_lines(self):
        config = paper_config(n_cpus=2)
        mem = HierarchicalMemory(config, Stats())
        one = mem.commit_broadcast(0, {0x1000}, 0)
        many = mem.commit_broadcast(
            0, {0x1000 + i * config.line_size for i in range(10)}, 10_000)
        assert many > one

    def test_eager_store_invalidates_remote_copy(self):
        config = paper_config(n_cpus=2, detection="eager",
                              versioning="undo_log")
        mem = HierarchicalMemory(config, Stats())
        mem.access(1, 0x3000, False, 0)
        assert mem.l1[1].contains(0x3000)
        mem.access(0, 0x3000, True, 100)
        assert not mem.l1[1].contains(0x3000)

    def test_flat_memory_constant(self):
        flat = FlatMemory()
        assert flat.access(0, 0x100, True, 0) == 1
        assert flat.commit_broadcast(0, {0x100}, 0) == 1
        assert flat.arbitrate_commit(0) == 1
