"""Deep-dive tests on §4.5/§4.6 nesting semantics: multi-level violation
masks, open-within-open, and the paper's deliberate departure from
Moss/Hosking open nesting."""


from repro.common.params import functional_config
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

A = 0x1B_0000
B = 0x1B_0100
C = 0x1B_0200


def build(n_cpus=2):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    return machine, runtime


class TestMultiLevelMasks:
    def test_conflict_hitting_both_levels_sets_both_bits(self):
        """The victim reads one line at level 1 AND level 2; a single
        committed write must set both mask bits, and software rolls back
        to the outermost affected level (§4.6)."""
        machine, runtime = build()
        masks = []

        def capture(t):
            masks.append(t.isa.xvcurrent)
            yield t.alu()

        def victim(t):
            rounds = []

            def inner(t):
                value = yield t.load(A)         # level-2 read of A
                if len(rounds) == 1:
                    yield t.alu(300)
                return value

            def body(t):
                rounds.append(1)
                yield t.load(A)                  # level-1 read of A
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, capture)
                result = yield from runtime.atomic(t, inner)
                return result

            result = yield from runtime.atomic(t, body)
            return (result, len(rounds))

        def attacker(t):
            yield t.alu(60)

            def body(t):
                yield t.store(A, 5)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert masks and masks[0] == 0b11      # both levels named
        result, rounds = machine.results()[0]
        assert rounds == 2                      # outer restarted
        assert result == 5

    def test_innermost_handler_invoked_even_for_outer_conflict(self):
        """§4.6: "We always jump to the violation handler of the
        innermost transaction... even if the conflict involves one of
        its parents."  An inner-registered handler observes a conflict
        that names only level 1."""
        machine, runtime = build()
        seen = []

        def inner_handler(t):
            seen.append(("inner-handler", t.isa.xvcurrent))
            yield t.alu()

        def victim(t):
            rounds = []

            def inner(t):
                yield from runtime.register_violation_handler(
                    t, inner_handler)
                yield t.load(B)                 # unrelated inner read
                if len(rounds) == 1:
                    yield t.alu(300)            # conflict arrives here

            def body(t):
                rounds.append(1)
                yield t.load(A)                 # the conflicting read
                yield from runtime.atomic(t, inner)

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(60)

            def body(t):
                yield t.store(A, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        # The inner handler ran (innermost-first), for a level-1-only mask.
        assert seen and seen[0] == ("inner-handler", 0b01)


class TestOpenNestingDeep:
    def test_open_within_open(self):
        machine, runtime = build(1)

        def innermost(t):
            yield t.store(C, 3)

        def middle(t):
            yield t.store(B, 2)
            yield from runtime.atomic_open(t, innermost)
            # the inner open commit is already visible
            assert machine.memory.read(C) == 3

        def outer(t):
            yield t.store(A, 1)
            yield from runtime.atomic_open(t, middle)
            assert machine.memory.read(B) == 2

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        assert machine.memory.read(A) == 1

    def test_open_commit_leaves_ancestor_sets_intact(self):
        """The paper's anti-Moss/Hosking point (§4.5): after an open
        child commits an overlapping line, the PARENT still holds that
        line in its read-set — a later remote commit must still violate
        the parent.  (Under Moss/Hosking early-release semantics the
        parent's entry would have been removed and the violation lost.)
        """
        machine, runtime = build()
        rounds = []

        def victim(t):
            def open_child(t):
                value = yield t.load(A)          # overlaps parent's read
                yield t.store(A, value)          # and writes it
                return value

            def body(t):
                rounds.append(1)
                yield t.load(A)                  # parent reads A
                yield from runtime.atomic_open(t, open_child)
                if len(rounds) == 1:
                    yield t.alu(400)             # remote commit lands here

            yield from runtime.atomic(t, body)
            return len(rounds)

        def attacker(t):
            yield t.alu(100)

            def body(t):
                yield t.store(A, 9)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == 2        # parent WAS violated

    def test_open_commit_write_does_not_feed_own_parent_mask(self):
        """§4.5: conflicts are not reported to ancestors for the open
        child's own commit, even on overlap."""
        machine, runtime = build(1)

        def open_child(t):
            yield t.store(A, 7)

        def body(t):
            yield t.load(A)
            yield from runtime.atomic_open(t, open_child)
            yield t.alu(20)

        def program(t):
            yield from runtime.atomic(t, body)
            return "clean"

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "clean"
        assert machine.stats.get("cpu0.htm.violations_received") == 0

    def test_closed_inside_open(self):
        """A closed child of an open transaction merges into the open
        one and publishes with it."""
        machine, runtime = build(1)
        probes = []

        def closed_child(t):
            yield t.store(B, 4)

        def open_body(t):
            yield t.store(A, 3)
            yield from runtime.atomic(t, closed_child)
            probes.append(machine.memory.read(B))   # not yet visible

        def outer(t):
            yield from runtime.atomic_open(t, open_body)
            probes.append(machine.memory.read(B))   # open commit published

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        assert probes == [0, 4]

    def test_open_child_rollback_leaves_parent_running(self):
        """An open-nested transaction violated mid-flight retries alone;
        the parent's speculative state survives untouched."""
        machine, runtime = build()
        inner_rounds = []

        def victim(t):
            def open_child(t):
                inner_rounds.append(1)
                value = yield t.load(B)
                if len(inner_rounds) == 1:
                    yield t.alu(300)
                yield t.store(B, value + 1)

            def body(t):
                yield t.store(A, 11)             # parent speculative state
                yield from runtime.atomic_open(t, open_child)
                value = yield t.load(A)
                return value

            result = yield from runtime.atomic(t, body)
            return result

        def attacker(t):
            yield t.alu(60)

            def body(t):
                yield t.store(B, 100)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert len(inner_rounds) == 2            # open child retried alone
        assert machine.results()[0] == 11        # parent state survived
        assert machine.memory.read(B) == 101
