"""Property: compensation bookkeeping is exact under random contention.

Random contended schedules; every transaction registers a violation
handler that increments a compensation counter through an open-nested
transaction.  Invariants:

* the contended data stays serializable (no lost updates);
* per handler run, at most one compensation commits, and every run
  that completes commits exactly one — so the committed count is
  bracketed by completions and runs (a handler can be killed before its
  open commit, or after it but before returning; hypothesis found both
  windows);
* re-entrant compensation (a handler's open transaction violated at the
  outer level re-invokes the level-1 handlers inside the dispatcher) can
  legitimately exceed the hardware nesting depth; the architecture
  surfaces that as a capacity abort to software, which retries — the
  workload must still terminate correctly.

(The last two behaviours were discovered by this property's first,
stricter formulation.)
"""

from hypothesis import given, settings, strategies as st

from repro.common.errors import TxRollback
from repro.common.params import functional_config
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

BASE = 0x1C_0000
COMP = 0x1C_8000


@settings(max_examples=25, deadline=None)
@given(
    n_cpus=st.integers(2, 4),
    rounds=st.integers(1, 4),
    think=st.integers(5, 120),
    stagger=st.integers(0, 60),
)
def test_compensations_match_completed_handler_runs(
        n_cpus, rounds, think, stagger):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    completed = []

    def compensate(t):
        def bump(t):
            value = yield t.load(COMP)
            yield t.store(COMP, value + 1)

        yield from runtime.atomic_open(t, bump)
        completed.append(1)   # only reached if the open commit happened

    def program(t):
        yield t.alu(1 + stagger * t.cpu_id)
        for _ in range(rounds):
            while True:
                try:
                    def body(t):
                        yield from runtime.register_violation_handler(
                            t, compensate)
                        value = yield t.load(BASE)
                        yield t.alu(think)
                        yield t.store(BASE, value + 1)

                    yield from runtime.atomic(t, body)
                    break
                except TxRollback as rollback:
                    # Re-entrant compensation exhausted the hardware
                    # nesting depth; software retries (§6.3.3).
                    assert rollback.reason == "capacity"
                    continue
        return "done"

    for cpu in range(n_cpus):
        runtime.spawn(program, cpu_id=cpu)
    machine.run(max_cycles=50_000_000)

    # Serializability of the contended counter:
    assert machine.memory.read(BASE) == n_cpus * rounds
    # Each handler run commits at most one compensation (its open
    # transaction commits exactly once or rolls back), and a handler
    # that ran to completion certainly committed one.  Both gaps are
    # real: a handler can be killed before its open commit (run without
    # commit) or after it but before returning (commit without
    # completion) — hypothesis exhibited both.
    compensations = machine.memory.read(COMP)
    handler_runs = machine.stats.total("rt.violation_handlers_run")
    assert len(completed) <= compensations <= handler_runs
