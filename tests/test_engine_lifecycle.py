"""Pinned regressions: engine lifecycle state across thread boundaries.

Each test here failed on the pre-fix engine:

* banked wake tokens survived ``_kill``, ``_handle_capacity_abort``, and
  ``add_thread`` rebinding of a DONE CPU, so a *later* program's first
  ``YieldCpu`` would silently not sleep;
* failed runs (deadlocks, workload exceptions) lost their ``cycles`` /
  ``engine.steps`` stats;
* a program exiting normally left its ``parked`` op, ``saved_sends``,
  and ``saved_viol`` entries populated on the CPU;
* a violation delivered on the very next step after ``xbegin`` retired —
  before the runtime's generator resumed to record its handler-stack
  snapshot — crashed the violation dispatcher with a ``KeyError``.
"""

import pytest

from repro.common.errors import CapacityAbort, DeadlockError
from repro.common.params import functional_config
from repro.sim import ops as O
from repro.sim.engine import Machine


class TestWakeTokenLifecycle:
    def test_kill_clears_banked_tokens(self):
        machine = Machine(functional_config(n_cpus=1))

        def crasher(t):
            yield O.Wake(cpu_id=0)   # wake-while-runnable banks a token
            yield O.Alu(1)
            raise ValueError("boom")

        cpu = machine.add_thread(crasher)
        with pytest.raises(ValueError):
            machine.run()
        assert cpu.wake_tokens == 0

    def test_capacity_abort_clears_banked_tokens(self):
        machine = Machine(functional_config(n_cpus=1, max_nesting=1))
        seen = []

        def overflower(t):
            yield O.Wake(cpu_id=0)
            try:
                yield O.XBegin()
                yield O.XBegin()     # exceeds max_nesting=1
            except CapacityAbort:
                seen.append(t.wake_tokens)
            yield O.XValidate()
            yield O.XCommit()
            return "recovered"

        machine.add_thread(overflower)
        machine.run()
        assert machine.results()[0] == "recovered"
        assert seen == [0]

    def test_rebinding_done_cpu_starts_clean(self):
        machine = Machine(functional_config(n_cpus=2))

        def banker(t):
            yield O.Wake(cpu_id=0)
            return "banked"

        cpu = machine.add_thread(banker, cpu_id=0)
        machine.run()
        assert machine.results()[0] == "banked"
        assert cpu.state == "done"

        slept_until = []

        def sleeper(t):
            yield O.YieldCpu()       # must actually sleep: no stale token
            slept_until.append(t.machine.now)
            return "woke"

        def waker(t):
            yield O.Alu(50)
            yield O.Wake(cpu_id=0)
            return "woke-them"

        machine.add_thread(sleeper, cpu_id=0)
        assert cpu.wake_tokens == 0
        machine.add_thread(waker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "woke"
        # Pre-fix, the stale token let the sleeper barrel straight
        # through its YieldCpu and finish long before the waker's IPI.
        assert slept_until[0] > 50


class TestFailedRunStats:
    def test_deadlock_keeps_cycles_and_steps(self):
        machine = Machine(functional_config(n_cpus=1))

        def stuck(t):
            yield O.Alu(7)
            yield O.YieldCpu()       # nobody will ever wake us

        machine.add_thread(stuck)
        with pytest.raises(DeadlockError):
            machine.run()
        assert machine.stats.get("engine.steps") > 0
        assert machine.stats.get("cycles") > 0

    def test_workload_exception_keeps_cycles_and_steps(self):
        machine = Machine(functional_config(n_cpus=1))

        def crasher(t):
            yield O.Alu(3)
            raise RuntimeError("workload bug")

        machine.add_thread(crasher)
        with pytest.raises(RuntimeError):
            machine.run()
        assert machine.stats.get("engine.steps") > 0
        assert machine.stats.get("cycles") > 0


class TestProgramExitCleanup:
    def test_frame_finished_clears_dispatch_state(self):
        machine = Machine(functional_config(n_cpus=1))

        def litterer(t):
            yield O.Alu(1)
            # Simulate residue a dispatcher stack could leave behind.
            t.parked[3] = O.Fence()
            t.saved_sends[3] = "stale"
            t.saved_viol[3] = (1, 0)
            return "done"

        cpu = machine.add_thread(litterer)
        machine.run()
        assert machine.results()[0] == "done"
        assert not cpu.parked
        assert not cpu.saved_sends
        assert not cpu.saved_viol


class TestViolationAfterXBegin:
    def test_spurious_violation_right_after_xbegin(self):
        """A violation delivered before the runtime records its
        handler-stack snapshot must dispatch cleanly (found by the
        trace-on-failure fuzz property; the exact seed is pinned)."""
        from repro.check.fuzz import run_case

        # Pre-fix this raised KeyError out of the violation dispatcher;
        # post-fix the case must complete with zero oracle violations.
        result = run_case("bank", "lazy-timing-simple", "pct", 3,
                          fault="spurious-violation")
        assert not result.violations
