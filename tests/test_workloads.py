"""Workload-level integration tests (small scales for speed)."""

import pytest

from repro.common.params import functional_config, paper_config
from repro.workloads import (
    CondSyncWorkload,
    IoLogWorkload,
    JbbWorkload,
    Mp3dKernel,
    SwimKernel,
)
from repro.workloads.kernels import SCIENTIFIC_KERNELS


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", SCIENTIFIC_KERNELS,
                             ids=[k.name for k in SCIENTIFIC_KERNELS])
    def test_kernel_invariants_nested(self, kernel_cls):
        workload = kernel_cls(n_threads=4, scale=0.5)
        machine = workload.run(paper_config(n_cpus=4))
        assert machine.stats.get("cycles") > 0

    @pytest.mark.parametrize("kernel_cls", [SwimKernel, Mp3dKernel])
    def test_kernel_invariants_flattened(self, kernel_cls):
        workload = kernel_cls(n_threads=4, scale=0.5)
        workload.run(paper_config(n_cpus=4, flatten=True))

    def test_kernel_sequential(self):
        SwimKernel(n_threads=1, scale=0.5).run(paper_config(n_cpus=1))

    def test_kernel_deterministic(self):
        def once():
            workload = Mp3dKernel(n_threads=4, scale=0.5)
            machine = workload.run(paper_config(n_cpus=4))
            return machine.stats.get("cycles")

        assert once() == once()

    def test_flattening_never_nests(self):
        workload = Mp3dKernel(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(n_cpus=2, flatten=True))
        assert machine.stats.total("htm.begins_flattened") > 0
        assert machine.stats.total("htm.commits_closed") == 0

    def test_nested_version_actually_nests(self):
        workload = Mp3dKernel(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(n_cpus=2))
        assert machine.stats.total("htm.commits_closed") > 0

    def test_functional_config_also_works(self):
        SwimKernel(n_threads=2, scale=0.25).run(functional_config(n_cpus=2))


class TestJbb:
    @pytest.mark.parametrize("variant", ["closed", "open"])
    def test_invariants(self, variant):
        workload = JbbWorkload(n_threads=4, scale=0.5, variant=variant)
        workload.run(paper_config(n_cpus=4))

    def test_flattened_baseline(self):
        workload = JbbWorkload(n_threads=4, scale=0.5)
        workload.run(paper_config(n_cpus=4, flatten=True))

    def test_open_variant_uses_open_nesting(self):
        workload = JbbWorkload(n_threads=2, scale=0.5, variant="open")
        machine = workload.run(paper_config(n_cpus=2))
        assert machine.stats.total("htm.begins_open") > 0

    def test_closed_variant_counter_is_exact(self):
        workload = JbbWorkload(n_threads=4, scale=0.5, variant="closed")
        machine = workload.run(paper_config(n_cpus=4))
        counter = machine.memory.read(workload.order_id_addr)
        assert counter == workload._expected_orders + 1

    def test_open_variant_may_burn_ids_but_orders_match(self):
        workload = JbbWorkload(n_threads=4, scale=0.5, variant="open")
        machine = workload.run(paper_config(n_cpus=4))
        counter = machine.memory.read(workload.order_id_addr)
        assert counter >= workload._expected_orders + 1
        orders = workload.orders.items_host(machine.memory)
        assert len(orders) == workload._expected_orders

    def test_bad_variant_rejected(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            JbbWorkload(n_threads=2, variant="psychic")


class TestMicrobenchWorkloads:
    def test_iolog(self):
        workload = IoLogWorkload(n_threads=4, scale=0.5)
        workload.run(paper_config(n_cpus=4))

    def test_condsync(self):
        workload = CondSyncWorkload(n_pairs=2, scale=0.5)
        workload.run(paper_config(n_cpus=5), max_cycles=30_000_000)

    def test_condsync_needs_scheduler_cpu(self):
        from repro.common.errors import ReproError

        workload = CondSyncWorkload(n_pairs=2)
        with pytest.raises(ReproError):
            workload.run(paper_config(n_cpus=4))  # needs 5


class TestHarness:
    def test_compare_nesting_protocol(self):
        from repro.harness import compare_nesting

        comparison = compare_nesting(
            lambda n: SwimKernel(n_threads=n, scale=0.25), n_cpus=4)
        assert comparison.seq_cycles > 0
        assert comparison.flat_cycles > 0
        assert comparison.nested_cycles > 0
        assert comparison.improvement == pytest.approx(
            comparison.flat_cycles / comparison.nested_cycles)

    def test_scaling_curve_protocol(self):
        from repro.harness import scaling_curve

        points = scaling_curve(
            lambda n: IoLogWorkload(n_threads=n, scale=0.5),
            counts=[1, 2],
            config_factory=lambda n: paper_config(n_cpus=n),
            items_of=lambda w: w.n_threads * w._records,
        )
        assert [p.n for p in points] == [1, 2]
        assert all(p.throughput > 0 for p in points)

    def test_report_formatting(self):
        from repro.harness import (
            format_bar_chart,
            format_figure5,
            format_scaling,
            format_table,
        )
        from repro.harness.experiment import NestingComparison, ScalingPoint

        table = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in table and "3" in table
        figure = format_figure5([
            NestingComparison("x", 100, 50, 25),
        ])
        assert "2.00x" in figure and "4.00" in figure
        scaling = format_scaling(
            [ScalingPoint(1, 100, 10), ScalingPoint(2, 100, 20)],
            title="S")
        assert "2.00x" in scaling
        chart = format_bar_chart([("a", 1.0), ("b", 2.0)], title="C")
        assert chart.count("#") > 0
