"""Stress tests for the conditional-synchronization runtime: many seeds,
timing model on, asymmetric rates — no interleaving may lose a wakeup."""

import pytest

from repro.common.params import paper_config
from repro.workloads import CondSyncWorkload


class TestCondsyncStress:
    @pytest.mark.parametrize("seed", range(1, 9))
    def test_no_lost_wakeups_across_seeds(self, seed):
        workload = CondSyncWorkload(n_pairs=2, seed=seed)
        machine = workload.run(paper_config(n_cpus=5),
                               max_cycles=50_000_000)
        # verify() checked in-order exactly-once delivery per pair.
        assert machine.stats.get("cycles") > 0

    @pytest.mark.parametrize("pairs", [1, 3])
    def test_various_widths(self, pairs):
        workload = CondSyncWorkload(n_pairs=pairs, seed=3)
        workload.run(paper_config(n_cpus=2 * pairs + 1),
                     max_cycles=50_000_000)

    def test_msi_substrate(self):
        workload = CondSyncWorkload(n_pairs=2, seed=5)
        workload.run(paper_config(n_cpus=5, coherence="msi"),
                     max_cycles=50_000_000)

    def test_double_buffering_substrate(self):
        workload = CondSyncWorkload(n_pairs=2, seed=5)
        workload.run(paper_config(n_cpus=5, double_buffering=True),
                     max_cycles=50_000_000)

    def test_word_granularity(self):
        workload = CondSyncWorkload(n_pairs=2, seed=5)
        workload.run(paper_config(n_cpus=5, granularity="word"),
                     max_cycles=50_000_000)

    def test_multi_tracking_scheme(self):
        workload = CondSyncWorkload(n_pairs=2, seed=5)
        workload.run(paper_config(n_cpus=5,
                                  nesting_scheme="multi_tracking"),
                     max_cycles=50_000_000)
