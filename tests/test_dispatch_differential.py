"""Differential suite: the table-dispatched interpreter vs the chain.

The tentpole interpreter overhaul replaced the per-op ``isinstance``
chain with a ``type(op) -> bound handler`` dispatch table, interned the
hot :class:`ExecOutcome` shapes, and interned single-field program ops.
The original chain is retained verbatim (``Cpu._execute_chain``, also
the ``naive_interp`` bench baseline), which makes the equivalence
directly testable: for every op kind — core vocabulary, registered
extension ops, subclasses, stall and self-abort paths — both executors
must produce identical outcome fields and identical side effects, or
raise the identical error.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import IsaError
from repro.common.params import functional_config, paper_config
from repro.htm.conflict import SELF_ABORT, STALL
from repro.isa import context as ctx
from repro.isa.context import (
    ExecOutcome,
    latency_outcome,
    register_op_handler,
    unregister_op_handler,
)
from repro.runtime.core import Runtime
from repro.sim import ops as O
from repro.sim.engine import Machine

WORD = 0x1000
OTHER = 0x2000
SHARED = 0xF_0000


def outcome_fields(outcome):
    """Compare by field, not ``==``: interned outcomes are a subclass."""
    return (outcome.latency, outcome.value, outcome.stall,
            outcome.deschedule)


def fresh_cpu(**over):
    machine = Machine(functional_config(n_cpus=2, **over))
    return machine.cpus[0]


def observable_state(cpu):
    """The per-CPU state an executed op can legally change."""
    return (
        cpu.machine.htm.depth(cpu.cpu_id),
        cpu.isa.viol_reporting,
        cpu.isa.xabort_code,
        cpu.pending_abort,
        cpu.wake_tokens,
        cpu.machine.cpus[1].wake_tokens,
        cpu.machine.memory.read(WORD),
        cpu.machine.memory.read(OTHER),
    )


def run_both(setup_ops, op, **config_over):
    """Execute ``op`` after ``setup_ops`` under each interpreter on its
    own identically-prepared machine; return both observations."""
    observations = []
    for path in ("table", "chain"):
        cpu = fresh_cpu(**config_over)
        execute = cpu._execute if path == "table" else cpu._execute_chain
        for setup_op in setup_ops:
            execute(setup_op, 0)
        try:
            outcome = execute(op, 1)
        except Exception as error:  # noqa: BLE001 - equal-raise comparison
            observations.append(
                ("raise", type(error), str(error), observable_state(cpu)))
        else:
            observations.append(
                ("ok", outcome_fields(outcome), observable_state(cpu)))
    return observations


#: One scenario per core op kind: (setup ops, the op under test).
#: ``test_scenarios_cover_the_vocabulary`` pins this to ALL_OPS, so a
#: newly added op breaks the suite until a scenario exists for it.
SCENARIOS = {
    O.Load: ([O.ImStore(WORD, 41)], O.Load(WORD)),
    O.Store: ([], O.Store(WORD, 7)),
    O.ImLoad: ([O.ImStore(WORD, 43)], O.ImLoad(WORD)),
    O.ImStore: ([], O.ImStore(WORD, 9)),
    O.ImStoreId: ([], O.ImStoreId(WORD, 11)),
    O.Release: ([O.XBegin(), O.Load(WORD)], O.Release(WORD)),
    O.XBegin: ([], O.XBegin()),
    O.XValidate: ([O.XBegin()], O.XValidate()),
    O.XCommit: ([O.XBegin(), O.Store(WORD, 5)], O.XCommit()),
    O.XAbort: ([O.XBegin()], O.XAbort(code=3)),
    O.XRwSetClear: ([O.XBegin(), O.Store(WORD, 5)],
                    O.XRwSetClear(level=1)),
    O.XRegRestore: ([], O.XRegRestore()),
    O.XVRet: ([], O.XVRet()),
    O.XEnViolRep: ([], O.XEnViolRep()),
    O.XVClear: ([], O.XVClear()),
    O.Alu: ([], O.Alu(4)),
    O.YieldCpu: ([], O.YieldCpu()),
    O.Wake: ([], O.Wake(cpu_id=1)),
    O.Fence: ([], O.Fence()),
    O.SerialAcquire: ([], O.SerialAcquire()),
    O.SerialRelease: ([O.SerialAcquire()], O.SerialRelease()),
}


def test_scenarios_cover_the_vocabulary():
    assert set(SCENARIOS) == set(O.ALL_OPS)


@pytest.mark.parametrize(
    "op_cls", O.ALL_OPS, ids=lambda cls: cls.__name__)
@pytest.mark.parametrize("detection", ["lazy", "eager"])
def test_table_matches_chain(op_cls, detection):
    setup_ops, op = SCENARIOS[op_cls]
    table, chain = run_both(setup_ops, op, detection=detection)
    assert table == chain


def test_error_paths_match():
    """Invalid ops raise identically through both executors."""
    for setup_ops, op in [
        ([], O.XAbort(code=1)),          # xabort outside a transaction
        ([], O.Load(WORD + 1)),          # unaligned address
        ([], O.ImStore(WORD + 2, 1)),    # unaligned immediate store
    ]:
        table, chain = run_both(setup_ops, op)
        assert table == chain
        assert table[0] == "raise"


def test_stall_path_matches():
    """A detector STALL surfaces as the same stalled outcome."""
    for kind in ("load", "store"):
        observations = []
        for path in ("table", "chain"):
            cpu = fresh_cpu()
            if kind == "load":
                cpu.machine.htm.load = lambda cpu_id, addr: (STALL, None)
                op = O.Load(WORD)
            else:
                cpu.machine.htm.store = \
                    lambda cpu_id, addr, value: STALL
                op = O.Store(WORD, 1)
            execute = cpu._execute if path == "table" else cpu._execute_chain
            outcome = execute(op, 0)
            observations.append(outcome_fields(outcome))
            assert outcome.stall
        assert observations[0] == observations[1]


def test_self_abort_path_matches():
    """A detector SELF_ABORT posts the same self-violation both ways."""
    observations = []
    for path in ("table", "chain"):
        cpu = fresh_cpu(detection="eager")
        execute = cpu._execute if path == "table" else cpu._execute_chain
        execute(O.XBegin(), 0)
        cpu.machine.htm.load = lambda cpu_id, addr: (SELF_ABORT, None)
        outcome = execute(O.Load(WORD), 1)
        observations.append(
            (outcome_fields(outcome), cpu.isa.has_deliverable(),
             cpu.isa.xvcurrent))
        assert outcome.stall
    assert observations[0] == observations[1]


# ---------------------------------------------------------------------------
# Extension-op registration seam
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class ProbeOp(O.Op):
    """An extension op used only by this suite."""

    ticks: int = 2


def _probe_handler(cpu, op, now):
    return ExecOutcome(latency=op.ticks, value=("probe", cpu.cpu_id, now))


@pytest.fixture
def probe_registered():
    register_op_handler(ProbeOp, _probe_handler)
    try:
        yield
    finally:
        unregister_op_handler(ProbeOp)


def test_extension_op_matches_chain(probe_registered):
    table, chain = run_both([], ProbeOp(ticks=5))
    assert table == chain
    assert table[0] == "ok"
    assert table[1] == (5, ("probe", 0, 1), False, False)


def test_extension_op_binds_lazily_on_existing_cpus():
    cpu = fresh_cpu()  # built before registration
    register_op_handler(ProbeOp, _probe_handler)
    try:
        outcome = cpu._execute(ProbeOp(ticks=3), 0)
        assert outcome_fields(outcome) == (3, ("probe", 0, 0), False, False)
    finally:
        unregister_op_handler(ProbeOp)
    # Existing CPUs keep the memoized binding; new CPUs reject the op
    # again, exactly like the chain.
    table, chain = run_both([], ProbeOp())
    assert table == chain
    assert table[0] == "raise"


def test_core_op_subclass_keeps_isinstance_semantics():
    """An unregistered subclass of a core op falls back to the chain's
    isinstance dispatch (and its Alu cycles count as instructions)."""

    @dataclasses.dataclass(frozen=True, slots=True)
    class WideAlu(O.Alu):
        pass

    table, chain = run_both([], WideAlu(7))
    assert table == chain
    assert table[1] == (7, None, False, False)
    cpu = fresh_cpu()
    before = cpu.icount
    cpu._execute_step(WideAlu(7), 0)
    assert cpu.icount - before == 7


def test_register_rejects_garbage():
    with pytest.raises(IsaError):
        register_op_handler(int, _probe_handler)
    with pytest.raises(IsaError):
        register_op_handler(ProbeOp, "not callable")


# ---------------------------------------------------------------------------
# Interned outcomes and ops
# ---------------------------------------------------------------------------

def test_interned_outcomes_are_shared_and_frozen():
    assert latency_outcome(1) is ctx._UNIT
    assert latency_outcome(17) is latency_outcome(17)
    cpu = fresh_cpu()
    stall_a = cpu._execute(O.Alu(1), 0)
    stall_b = cpu._execute(O.Fence(), 0)
    assert stall_a is stall_b is ctx._UNIT
    with pytest.raises(AttributeError):
        ctx._UNIT.value = "corrupt"
    with pytest.raises(AttributeError):
        del ctx._STALL.stall


def test_op_constructors_intern_single_field_ops():
    cpu = fresh_cpu()
    assert cpu.load(WORD) is cpu.load(WORD)
    assert cpu.imld(WORD) is cpu.imld(WORD)
    assert cpu.alu(3) is cpu.alu(3)
    # Interned instances stay value-equal to fresh dataclass instances.
    assert cpu.load(WORD) == O.Load(WORD)
    assert cpu.alu(3) == O.Alu(3)
    # Value-carrying stores are never interned.
    assert cpu.store(WORD, 1) is not cpu.store(WORD, 1)


# ---------------------------------------------------------------------------
# Whole-program equivalence (the naive_interp seam end to end)
# ---------------------------------------------------------------------------

def _contended_machine(config):
    machine = Machine(config)
    runtime = Runtime(machine)

    def body(t):
        value = yield t.load(SHARED)
        yield t.alu(5)
        yield t.store(SHARED, value + 1)

    def program(t):
        for _ in range(4):
            yield from runtime.atomic(t, body)
        return "ok"

    runtime.spawn(program, cpu_id=0)
    runtime.spawn(program, cpu_id=1)
    machine.run()
    return machine


@pytest.mark.parametrize("detection", ["lazy", "eager"])
def test_full_runs_are_bit_for_bit_identical(detection):
    config = paper_config(n_cpus=2, detection=detection)
    table = _contended_machine(config)
    chain = _contended_machine(
        dataclasses.replace(config, naive_interp=True))
    assert table.results() == chain.results()
    assert table.stats.as_dict() == chain.stats.as_dict()


# ---------------------------------------------------------------------------
# Property: random op streams execute identically
# ---------------------------------------------------------------------------

_KINDS = ("load", "store", "imload", "imstore", "alu", "fence",
          "begin", "commit")


def _stream_program(tokens):
    def program(t):
        depth = 0
        for kind, slot, value in tokens:
            addr = WORD + slot * 8
            if kind == "load":
                yield O.Load(addr)
            elif kind == "store":
                yield O.Store(addr, value)
            elif kind == "imload":
                yield O.ImLoad(addr)
            elif kind == "imstore":
                yield O.ImStore(addr, value)
            elif kind == "alu":
                yield O.Alu(1 + value % 5)
            elif kind == "fence":
                yield O.Fence()
            elif kind == "begin":
                if depth < 3:
                    yield O.XBegin()
                    depth += 1
            elif kind == "commit":
                if depth:
                    yield O.XValidate()
                    yield O.XCommit()
                    depth -= 1
        while depth:
            yield O.XValidate()
            yield O.XCommit()
            depth -= 1
        return "done"
    return program


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    tokens=st.lists(
        st.tuples(st.sampled_from(_KINDS), st.integers(0, 7),
                  st.integers(0, 99)),
        max_size=40),
    detection=st.sampled_from(["lazy", "eager"]),
)
def test_random_streams_match(tokens, detection):
    outcomes = []
    for naive in (False, True):
        machine = Machine(paper_config(
            n_cpus=1, detection=detection, naive_interp=naive))
        machine.add_thread(_stream_program(tokens))
        machine.run()
        outcomes.append(
            (machine.results(), machine.stats.as_dict()))
    assert outcomes[0] == outcomes[1]
