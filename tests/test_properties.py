"""Property-based tests (hypothesis).

The central property is *serializability*: for random concurrent
transactional programs, the committed execution must be equivalent to
executing the committed transactions serially in their commit order.
We record each transaction's final (committed) read/write log and replay
it against a model memory: every recorded read must reproduce, and the
final states must match.

Further properties: write-buffer/undo-log equivalence under random
transaction scripts, B-tree vs dict, bounded queue vs deque.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.common.params import functional_config
from repro.common.stats import Stats
from repro.htm.versioning import UndoLogVersioning, WriteBufferVersioning
from repro.mem.btree import BTree
from repro.mem.hostexec import host
from repro.mem.layout import SharedArena
from repro.memsys.memory import MemoryImage
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

BASE = 0xB_0000
N_CELLS = 6


def cell_addr(machine, index):
    # One cell per line: disjoint cells must not conflict through lines.
    return BASE + index * machine.config.line_size


# ---------------------------------------------------------------------------
# Serializability of random concurrent transactions
# ---------------------------------------------------------------------------

op_strategy = st.one_of(
    st.tuples(st.just("load"), st.integers(0, N_CELLS - 1)),
    st.tuples(st.just("store"), st.integers(0, N_CELLS - 1),
              st.integers(1, 99)),
    st.tuples(st.just("add"), st.integers(0, N_CELLS - 1),
              st.integers(1, 9)),
    st.tuples(st.just("alu"), st.integers(1, 40)),
)

#: A transaction may contain closed-nested sub-transactions whose ops
#: merge into it — nesting must not weaken serializability.
nested_strategy = st.tuples(
    st.just("nested"), st.lists(op_strategy, min_size=1, max_size=4))

tx_strategy = st.lists(st.one_of(op_strategy, nested_strategy),
                       min_size=1, max_size=6)
thread_strategy = st.lists(tx_strategy, min_size=1, max_size=4)
program_strategy = st.lists(thread_strategy, min_size=2, max_size=4)


def run_concurrent(plans, detection, versioning, granularity="line"):
    machine = Machine(functional_config(
        n_cpus=len(plans), detection=detection, versioning=versioning,
        granularity=granularity))
    runtime = Runtime(machine)
    commit_order = []
    final_logs = {}

    def make_program(cpu_index, txs):
        def program(t):
            for tx_index, plan in enumerate(txs):
                log = []

                def run_ops(t, ops, log):
                    for op in ops:
                        if op[0] == "load":
                            value = yield t.load(cell_addr(machine, op[1]))
                            log.append(("load", op[1], value))
                        elif op[0] == "store":
                            yield t.store(cell_addr(machine, op[1]), op[2])
                            log.append(("store", op[1], op[2]))
                        elif op[0] == "add":
                            value = yield t.load(cell_addr(machine, op[1]))
                            yield t.store(
                                cell_addr(machine, op[1]), value + op[2])
                            log.append(("load", op[1], value))
                            log.append(("store", op[1], value + op[2]))
                        elif op[0] == "nested":
                            sub_log = []

                            def sub(t, ops=op[1], sub_log=sub_log):
                                del sub_log[:]
                                yield from run_ops(t, ops, sub_log)

                            yield from runtime.atomic(t, sub)
                            # The committed inner execution's effects are
                            # part of the outer transaction's history.
                            log.extend(sub_log)
                        else:
                            yield t.alu(op[1])

                def body(t, plan=plan, log=log):
                    del log[:]
                    yield from run_ops(t, plan, log)

                yield from runtime.atomic(t, body)
                commit_order.append((cpu_index, tx_index))
                final_logs[(cpu_index, tx_index)] = list(log)
            return "done"
        return program

    for cpu_index, txs in enumerate(plans):
        runtime.spawn(make_program(cpu_index, txs), cpu_id=cpu_index)
    machine.run(max_cycles=50_000_000)
    return machine, commit_order, final_logs


def check_serializable(machine, commit_order, final_logs):
    """Replay the committed transactions serially in commit order."""
    model = {}
    for key in commit_order:
        for entry in final_logs[key]:
            kind, cell, value = entry
            if kind == "load":
                assert model.get(cell, 0) == value, (
                    f"tx {key} read cell {cell} = {value}, serial replay "
                    f"has {model.get(cell, 0)}")
            else:
                model[cell] = value
    for cell in range(N_CELLS):
        got = machine.memory.read(cell_addr(machine, cell))
        assert got == model.get(cell, 0), (
            f"final cell {cell}: machine {got} != serial {model.get(cell, 0)}")


@settings(max_examples=40, deadline=None)
@given(plans=program_strategy)
def test_serializability_lazy_write_buffer(plans):
    machine, order, logs = run_concurrent(plans, "lazy", "write_buffer")
    check_serializable(machine, order, logs)


@settings(max_examples=30, deadline=None)
@given(plans=program_strategy)
def test_serializability_eager_undo_log(plans):
    machine, order, logs = run_concurrent(plans, "eager", "undo_log")
    check_serializable(machine, order, logs)


@settings(max_examples=20, deadline=None)
@given(plans=program_strategy)
def test_serializability_eager_write_buffer(plans):
    machine, order, logs = run_concurrent(plans, "eager", "write_buffer")
    check_serializable(machine, order, logs)


@settings(max_examples=20, deadline=None)
@given(plans=program_strategy)
def test_serializability_word_granularity(plans):
    machine, order, logs = run_concurrent(
        plans, "lazy", "write_buffer", granularity="word")
    check_serializable(machine, order, logs)


# ---------------------------------------------------------------------------
# Versioning-scheme equivalence under random single-thread scripts
# ---------------------------------------------------------------------------

# ``imst`` targets its own address range (5-9): the paper restricts
# immediate stores to data provably not accessed transactionally (§4.7),
# and on *ill-formed* programs that mix tracked and immediate stores to
# one word, real write-buffer and undo-log hardware genuinely diverge
# (the buffer shadows the immediate store; the log does not) — hypothesis
# found exactly that counterexample.  Loads may touch either range.
script_action = st.one_of(
    st.tuples(st.just("store"), st.integers(0, 4), st.integers(1, 50)),
    st.tuples(st.just("load"), st.integers(0, 9)),
    st.tuples(st.just("imst"), st.integers(5, 9), st.integers(1, 50)),
    st.tuples(st.just("begin"), st.booleans()),   # closed / open
    st.just(("commit",)),
    st.just(("rollback",)),
)


@settings(max_examples=80, deadline=None)
@given(script=st.lists(script_action, min_size=1, max_size=25))
def test_versioning_schemes_equivalent(script):
    """Both version managers, driven by the same nesting script, must
    produce identical load results and identical final memory."""
    config_wb = functional_config()
    config_ul = functional_config(versioning="undo_log", detection="eager")

    def drive(manager):
        observations = []
        levels = []   # stack of open-flags

        def addr(index):
            return 0x100 + index * 4

        for action in script:
            if action[0] == "begin":
                if len(levels) >= 4:
                    continue
                levels.append(action[1])
                manager.begin_level(len(levels))
            elif action[0] == "commit":
                if not levels:
                    continue
                level = len(levels)
                open_ = levels.pop()
                if open_ or level == 1:
                    manager.commit_to_memory(level)
                else:
                    manager.commit_closed(level)
            elif action[0] == "rollback":
                if not levels:
                    continue
                manager.rollback(len(levels))
                levels.pop()
            elif action[0] == "store":
                if levels:
                    manager.tx_store(len(levels), addr(action[1]), action[2])
            elif action[0] == "imst":
                manager.im_store(len(levels), addr(action[1]), action[2])
            else:
                observations.append(
                    manager.tx_load(len(levels), addr(action[1])))
        # unwind anything left open
        while levels:
            manager.rollback(len(levels))
            levels.pop()
        return observations

    memory_wb = MemoryImage()
    memory_ul = MemoryImage()
    wb = WriteBufferVersioning(config_wb, memory_wb, Stats().scope("v"))
    ul = UndoLogVersioning(config_ul, memory_ul, Stats().scope("v"))
    assert drive(wb) == drive(ul)

    def canonical(memory):
        # An undo-log may restore an explicit 0 where a write-buffer never
        # touched memory; both read back as 0.
        return {a: v for a, v in memory.snapshot().items() if v != 0}

    assert canonical(memory_wb) == canonical(memory_ul)


# ---------------------------------------------------------------------------
# Data structures against reference models
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(1, 60),
                      st.integers(0, 500)),
            st.tuples(st.just("lookup"), st.integers(1, 60)),
            st.tuples(st.just("update"), st.integers(1, 60),
                      st.integers(-5, 5)),
        ),
        min_size=1, max_size=60,
    )
)
def test_btree_matches_dict(ops):
    machine = Machine(functional_config(n_cpus=1))
    arena = SharedArena(machine)
    tree = BTree(arena, capacity_nodes=128)
    model = {}
    for op in ops:
        if op[0] == "insert":
            host(tree.insert, machine.memory, op[1], op[2])
            model[op[1]] = op[2]
        elif op[0] == "lookup":
            assert host(tree.lookup, machine.memory, op[1]) \
                == model.get(op[1])
        else:
            expected = (model[op[1]] + op[2]) if op[1] in model else None
            got = host(tree.update, machine.memory, op[1], op[2])
            assert got == expected
            if op[1] in model:
                model[op[1]] += op[2]
    assert tree.items_host(machine.memory) == sorted(model.items())


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("enq"), st.integers(0, 999)),
            st.just(("deq",)),
        ),
        min_size=1, max_size=40,
    ),
    capacity=st.integers(1, 6),
)
def test_queue_matches_deque(ops, capacity):
    from collections import deque

    machine = Machine(functional_config(n_cpus=1))
    arena = SharedArena(machine)
    queue = BoundedQueueHost(arena, capacity, machine.memory)
    model = deque()
    for op in ops:
        if op[0] == "enq":
            ok = queue.enqueue(op[1])
            if len(model) < capacity:
                assert ok
                model.append(op[1])
            else:
                assert not ok
        else:
            item = queue.dequeue()
            if model:
                assert item == model.popleft()
            else:
                assert item is None


class BoundedQueueHost:
    """Host-side driver for the simulated queue (test helper)."""

    def __init__(self, arena, capacity, memory):
        from repro.mem.queue import BoundedQueue

        self.queue = BoundedQueue(arena, capacity, item_words=1)
        self.memory = memory

    def enqueue(self, value):
        return host(self.queue.try_enqueue, self.memory, [value])

    def dequeue(self):
        item = host(self.queue.try_dequeue, self.memory)
        return item[0] if item is not None else None


# ---------------------------------------------------------------------------
# Random nesting depth with aborts: no state leaks across transactions
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    depth=st.integers(1, 3),
)
def test_random_nesting_with_aborts_is_clean(seed, depth):
    """After arbitrary nesting with random aborts, committed state must
    reflect exactly the transactions that completed."""
    from repro.common.errors import TxAborted

    machine = Machine(functional_config(n_cpus=1))
    runtime = Runtime(machine)
    rng = random.Random(seed)
    committed = []

    def make_body(level, tag):
        def body(t):
            yield t.store(BASE + 0x1000 + tag * 32, tag)
            if level < depth and rng.random() < 0.7:
                inner_tag = tag * 10 + level
                try:
                    yield from runtime.atomic(
                        t, make_body(level + 1, inner_tag))
                    committed.append(inner_tag)
                except TxAborted:
                    pass
            if rng.random() < 0.3:
                yield from runtime.abort(t, code=tag)
        return body

    def program(t):
        for tag in range(1, 5):
            try:
                yield from runtime.atomic(t, make_body(1, tag))
                committed.append(tag)
            except TxAborted:
                pass

    runtime.spawn(program)
    machine.run(max_cycles=10_000_000)
    # every top-level tag that committed is visible; an aborted outer
    # leaves nothing even when inners "committed" into it
    for tag in range(1, 5):
        value = machine.memory.read(BASE + 0x1000 + tag * 32)
        if tag in committed:
            assert value == tag
        else:
            assert value == 0
