"""Unit tests: read-/write-set tracking and HtmSystem state machine."""

import pytest

from repro.common.errors import IsaError
from repro.common.params import functional_config
from repro.common.stats import Stats
from repro.htm.rwset import RwSets
from repro.htm.system import ACTIVE, VALIDATED, HtmSystem
from repro.memsys.memory import MemoryImage

A = 0x100
SAME_LINE = 0x104      # same 32-byte line as A
OTHER_LINE = 0x200


class TestRwSets:
    def make(self, granularity="line"):
        return RwSets(functional_config(granularity=granularity))

    def test_line_units_coalesce(self):
        sets = self.make()
        sets.open_level(1)
        sets.add_read(1, A)
        sets.add_read(1, SAME_LINE)
        assert len(sets.reads_at(1)) == 1

    def test_word_units_distinct(self):
        sets = self.make("word")
        sets.open_level(1)
        sets.add_read(1, A)
        sets.add_read(1, SAME_LINE)
        assert len(sets.reads_at(1)) == 2

    def test_level_masks(self):
        sets = self.make()
        sets.open_level(1)
        sets.open_level(2)
        sets.add_read(1, A)
        sets.add_read(2, A)
        sets.add_write(2, OTHER_LINE)
        unit_a = sets.unit_of(A)
        unit_b = sets.unit_of(OTHER_LINE)
        assert sets.levels_reading(unit_a) == 0b11
        assert sets.levels_writing(unit_b) == 0b10
        assert sets.levels_touching(unit_b) == 0b10

    def test_merge_into_parent(self):
        sets = self.make()
        sets.open_level(1)
        sets.open_level(2)
        sets.add_read(2, A)
        sets.add_write(2, OTHER_LINE)
        merged = sets.merge_into_parent(2)
        assert merged == 2
        assert sets.unit_of(A) in sets.reads_at(1)
        assert sets.unit_of(OTHER_LINE) in sets.writes_at(1)
        assert sets.active_levels() == [1]

    def test_discard_level(self):
        sets = self.make()
        sets.open_level(1)
        sets.open_level(2)
        sets.add_read(2, A)
        sets.discard(2)
        assert sets.levels_reading(sets.unit_of(A)) == 0

    def test_release_only_current_level(self):
        sets = self.make()
        sets.open_level(1)
        sets.open_level(2)
        sets.add_read(1, A)
        assert not sets.release(2, A)   # not in level 2's set
        assert sets.release(1, A)
        assert sets.all_reads() == set()

    def test_unions(self):
        sets = self.make()
        sets.open_level(1)
        sets.open_level(2)
        sets.add_read(1, A)
        sets.add_write(2, OTHER_LINE)
        assert sets.all_reads() == {sets.unit_of(A)}
        assert sets.all_writes() == {sets.unit_of(OTHER_LINE)}

    def test_views_are_frozen_and_stable(self):
        """reads_at/writes_at hand out frozen *copies*: callers can
        neither mutate the tracking state through the view, nor see it
        change under them after a later merge/discard (regression for
        the internal-set leak)."""
        sets = self.make()
        sets.open_level(1)
        sets.open_level(2)
        sets.add_read(2, A)
        sets.add_write(2, OTHER_LINE)
        reads_view = sets.reads_at(2)
        writes_view = sets.writes_at(2)
        assert isinstance(reads_view, frozenset)
        assert isinstance(writes_view, frozenset)
        with pytest.raises(AttributeError):
            reads_view.add(sets.unit_of(OTHER_LINE))
        sets.merge_into_parent(2)
        # The views captured at level 2 are unchanged by the merge...
        assert reads_view == {sets.unit_of(A)}
        assert writes_view == {sets.unit_of(OTHER_LINE)}
        # ...and the tracking state they were taken from is intact.
        assert sets.reads_at(1) == {sets.unit_of(A)}
        assert sets.writes_at(1) == {sets.unit_of(OTHER_LINE)}


class TestHtmSystemStateMachine:
    def make(self, **over):
        config = functional_config(n_cpus=2, **over)
        memory = MemoryImage()
        htm = HtmSystem(config, memory, Stats())
        htm.attach_violation_sink(lambda violation: None)
        return htm, memory

    def test_status_transitions(self):
        htm, _ = self.make()
        htm.begin(0, open_=False, now=0)
        assert htm.xstatus(0)["status"] == ACTIVE
        assert htm.validate(0)
        assert htm.xstatus(0)["status"] == VALIDATED
        result = htm.commit(0)
        assert result.kind == "outer"
        assert htm.xstatus(0)["level"] == 0

    def test_txids_monotonic(self):
        htm, _ = self.make()
        first = htm.begin(0, False, 0)
        id1 = htm.xstatus(0)["txid"]
        htm.begin(0, False, 0)
        id2 = htm.xstatus(0)["txid"]
        assert id2 > id1
        assert first == 1

    def test_commit_without_begin_rejected(self):
        htm, _ = self.make()
        with pytest.raises(IsaError):
            htm.commit(0)

    def test_rollback_to_invalid_level_rejected(self):
        htm, _ = self.make()
        htm.begin(0, False, 0)
        with pytest.raises(IsaError):
            htm.rollback_to(0, 2)
        with pytest.raises(IsaError):
            htm.rollback_to(0, 0)

    def test_rollback_restarts_open_as_open(self):
        htm, _ = self.make()
        htm.begin(0, False, 0)
        htm.begin(0, True, 0)
        assert htm.xstatus(0)["type"] == "open"
        htm.rollback_to(0, 2)
        assert htm.xstatus(0)["type"] == "open"   # restart keeps openness
        assert htm.depth(0) == 2

    def test_validation_admission_blocks_conflicting(self):
        htm, _ = self.make()
        htm.begin(0, False, 0)
        htm.store(0, A, 1)
        assert htm.validate(0)
        htm.begin(1, False, 5)
        htm.load(1, A)                 # reads what cpu0 will publish
        assert not htm.validate(1)     # admission denied
        htm.commit(0)
        assert htm.validate(1)         # free after the publisher left

    def test_validation_admission_allows_disjoint(self):
        htm, _ = self.make()
        htm.begin(0, False, 0)
        htm.store(0, A, 1)
        assert htm.validate(0)
        htm.begin(1, False, 5)
        htm.store(1, OTHER_LINE, 2)
        assert htm.validate(1)         # disjoint sets overlap freely
        htm.commit(1)
        htm.commit(0)

    def test_abandon_all_clears_everything(self):
        htm, _ = self.make()
        htm.begin(0, False, 0)
        htm.begin(0, True, 0)
        htm.store(0, A, 3)
        work = htm.abandon_all(0)
        assert htm.depth(0) == 0
        assert work >= 1
        assert htm.xstatus(0)["level"] == 0

    def test_serial_mode_gates_validation(self):
        htm, _ = self.make()
        assert htm.try_acquire_serial(0)
        htm.begin(1, False, 0)
        htm.store(1, A, 1)
        assert not htm.validate(1)     # held off by serial owner
        htm.release_serial(0)
        assert htm.validate(1)
        htm.commit(1)

    def test_serial_mode_waits_for_validated(self):
        htm, _ = self.make()
        htm.begin(1, False, 0)
        htm.store(1, A, 1)
        assert htm.validate(1)
        assert not htm.try_acquire_serial(0)   # drain first
        htm.commit(1)
        assert htm.try_acquire_serial(0)
        with pytest.raises(IsaError):
            htm.release_serial(1)
        htm.release_serial(0)

    def test_non_tx_store_hits_memory_directly(self):
        htm, memory = self.make()
        htm.store(0, A, 9)
        assert memory.read(A) == 9
