"""Language constructs over the ISA: when, orElse, barriers (paper §5)."""

import pytest

from repro.common.errors import ReproError
from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.mem.queue import BoundedQueue
from repro.runtime.condsync import CondScheduler
from repro.runtime.constructs import RETRY, TxBarrier, or_else, when
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


def build(n_cpus=4):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    cond = CondScheduler(runtime, arena)
    cond.spawn_scheduler(cpu_id=0)
    return machine, runtime, arena, cond


class TestWhen:
    def test_runs_when_guard_already_true(self):
        machine, runtime, arena, cond = build()
        flag = arena.alloc_word(1, isolate=True)

        def guard(t):
            value = yield t.load(flag)
            return value

        def body(t):
            yield t.alu(1)
            return "ran"

        def program(t):
            result = yield from when(cond, t, guard, body, [flag])
            yield from cond.cancel_watches(t)
            return result

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == "ran"

    def test_waits_for_guard(self):
        machine, runtime, arena, cond = build()
        flag = arena.alloc_word(0, isolate=True)
        cell = arena.alloc_word(0, isolate=True)

        def guard(t):
            value = yield t.load(flag)
            return value

        def body(t):
            value = yield t.load(cell)
            return value

        def waiter(t):
            result = yield from when(cond, t, guard, body, [flag])
            yield from cond.cancel_watches(t)
            return result

        def setter(t):
            yield t.alu(3000)

            def enable(t):
                yield t.store(cell, 77)
                yield t.store(flag, 1)

            yield from runtime.atomic(t, enable)

        runtime.spawn(waiter, cpu_id=1)
        runtime.spawn(setter, cpu_id=2)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == 77
        assert machine.stats.total("rt.parks") >= 1


class TestOrElse:
    def test_first_alternative_taken(self):
        machine, runtime, arena, cond = build()
        cell = arena.alloc_word(5, isolate=True)

        def first(t):
            value = yield t.load(cell)
            return value if value else RETRY

        def second(t):
            yield t.alu(1)
            return "second"

        def program(t):
            result = yield from or_else(
                cond, t, [(first, [cell]), (second, [])])
            yield from cond.cancel_watches(t)
            return result

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == 5

    def test_falls_through_to_second(self):
        machine, runtime, arena, cond = build()
        empty = arena.alloc_word(0, isolate=True)
        backup = arena.alloc_word(9, isolate=True)
        side = arena.alloc_word(0, isolate=True)

        def first(t):
            # Partial effects must vanish when this alternative retries.
            yield t.store(side, 123)
            value = yield t.load(empty)
            return value if value else RETRY

        def second(t):
            value = yield t.load(backup)
            return ("backup", value)

        def program(t):
            result = yield from or_else(
                cond, t, [(first, [empty]), (second, [backup])])
            yield from cond.cancel_watches(t)
            return result

        runtime.spawn(program, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == ("backup", 9)
        assert machine.memory.read(side) == 0   # first's store vanished

    def test_blocks_until_any_source_ready(self):
        """The canonical orElse use: take from whichever queue fills."""
        machine, runtime, arena, cond = build()
        queues = [BoundedQueue(arena, 4) for _ in range(2)]

        def taker(index):
            def body(t):
                item = yield from queues[index].try_dequeue(t)
                return item[0] if item is not None else RETRY
            return body

        def consumer(t):
            result = yield from or_else(cond, t, [
                (taker(0), [queues[0].tail_addr]),
                (taker(1), [queues[1].tail_addr]),
            ])
            yield from cond.cancel_watches(t)
            return result

        def producer(t):
            yield t.alu(4000)

            def fill(t):
                yield from queues[1].enqueue(t, [42])   # the second queue

            yield from runtime.atomic(t, fill)

        runtime.spawn(consumer, cpu_id=1)
        runtime.spawn(producer, cpu_id=2)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == 42
        assert machine.stats.total("rt.parks") >= 1

    def test_empty_alternatives_rejected(self):
        machine, runtime, arena, cond = build()

        def program(t):
            yield from or_else(cond, t, [])

        runtime.spawn(program, cpu_id=1)
        with pytest.raises(ReproError):
            machine.run(max_cycles=10_000_000)


class TestBarrier:
    def test_all_parties_pass_together(self):
        machine, runtime, arena, cond = build(n_cpus=4)
        barrier = TxBarrier(cond, arena, parties=3)
        order = []

        def worker(t, tag, delay):
            yield t.alu(delay)
            order.append(("arrive", tag, machine.now))
            yield from barrier.wait(t)
            order.append(("pass", tag, machine.now))
            yield from cond.cancel_watches(t)
            return "done"

        runtime.spawn(worker, "a", 100, cpu_id=1)
        runtime.spawn(worker, "b", 2000, cpu_id=2)
        runtime.spawn(worker, "c", 5000, cpu_id=3)
        machine.run(max_cycles=20_000_000)
        passes = [entry for entry in order if entry[0] == "pass"]
        arrivals = [entry for entry in order if entry[0] == "arrive"]
        assert len(passes) == 3
        # nobody passed before the last arrival
        last_arrival = max(entry[2] for entry in arrivals)
        assert all(entry[2] >= last_arrival for entry in passes)

    def test_reusable_across_generations(self):
        machine, runtime, arena, cond = build(n_cpus=3)
        barrier = TxBarrier(cond, arena, parties=2)

        def worker(t, delays):
            generations = []
            for delay in delays:
                yield t.alu(delay)
                generations.append((yield from barrier.wait(t)))
            yield from cond.cancel_watches(t)
            return generations

        runtime.spawn(worker, [100, 200, 300], cpu_id=1)
        runtime.spawn(worker, [900, 100, 800], cpu_id=2)
        machine.run(max_cycles=20_000_000)
        assert machine.results()[1] == [0, 1, 2]
        assert machine.results()[2] == [0, 1, 2]

    def test_single_party_never_waits(self):
        machine, runtime, arena, cond = build(n_cpus=2)
        barrier = TxBarrier(cond, arena, parties=1)

        def worker(t):
            first = yield from barrier.wait(t)
            second = yield from barrier.wait(t)
            return (first, second)

        runtime.spawn(worker, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[1] == (0, 1)

    def test_bad_parties_rejected(self):
        machine, runtime, arena, cond = build(n_cpus=2)
        with pytest.raises(ReproError):
            TxBarrier(cond, arena, parties=0)
