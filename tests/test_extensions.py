"""Tests for the extension layers: tracing, contention policies,
try_atomic, the serial (virtualization) fallback, and profiles."""

import pytest

from repro.common.errors import ConfigError, TxAborted
from repro.common.params import functional_config
from repro.runtime.contention import (
    ExponentialBackoff,
    RetryCap,
    run_with_policy,
)
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.trace import Tracer

SHARED = 0xF_0000


def build(n_cpus=2, **over):
    machine = Machine(functional_config(n_cpus=n_cpus, **over))
    runtime = Runtime(machine)
    return machine, runtime


def contended_pair(runtime, rounds=4, think=40):
    def body(t):
        value = yield t.load(SHARED)
        yield t.alu(think)
        yield t.store(SHARED, value + 1)

    def program(t):
        for _ in range(rounds):
            yield from runtime.atomic(t, body)
        return "ok"

    return program


class TestTracer:
    def test_records_commits_and_violations(self):
        machine, runtime = build()
        with Tracer(machine) as tracer:
            runtime.spawn(contended_pair(runtime), cpu_id=0)
            runtime.spawn(contended_pair(runtime), cpu_id=1)
            machine.run()
        commits = tracer.of_kind("commit")
        assert len(commits) == 8
        assert tracer.of_kind("violation")
        assert tracer.of_kind("dispatch")
        assert tracer.of_kind("rollback")
        assert machine.memory.read(SHARED) == 8

    def test_kind_filter(self):
        machine, runtime = build()
        with Tracer(machine, kinds={"commit"}) as tracer:
            runtime.spawn(contended_pair(runtime), cpu_id=0)
            runtime.spawn(contended_pair(runtime), cpu_id=1)
            machine.run()
        assert {e.kind for e in tracer.events} == {"commit"}

    def test_unknown_kind_rejected(self):
        machine, _ = build()
        with pytest.raises(ValueError):
            Tracer(machine, kinds={"explosions"})

    def test_detach_restores_seams(self):
        machine, runtime = build()
        original_commit = machine.htm.commit   # bound method
        tracer = Tracer(machine)
        assert machine.htm.commit != original_commit
        tracer.detach()
        assert machine.htm.commit == original_commit
        tracer.detach()   # idempotent
        # and the machine still works untraced
        runtime.spawn(contended_pair(runtime, rounds=1), cpu_id=0)
        machine.run()
        assert machine.memory.read(SHARED) == 1

    def test_queries_and_format(self):
        machine, runtime = build()
        with Tracer(machine) as tracer:
            runtime.spawn(contended_pair(runtime, rounds=2), cpu_id=0)
            runtime.spawn(contended_pair(runtime, rounds=2), cpu_id=1)
            machine.run()
        assert all(e.cpu == 0 for e in tracer.for_cpu(0))
        text = tracer.format(kinds={"commit"})
        assert "commit" in text
        window = tracer.between(0, machine.now)
        assert len(window) == len(tracer.events)

    def test_event_limit(self):
        machine, runtime = build()
        with Tracer(machine, limit=3) as tracer:
            runtime.spawn(contended_pair(runtime), cpu_id=0)
            runtime.spawn(contended_pair(runtime), cpu_id=1)
            machine.run()
        assert len(tracer.events) == 3


class TestContentionPolicies:
    def test_exponential_backoff_grows_to_cap(self):
        policy = ExponentialBackoff(base=10, factor=2.0, cap=100,
                                    jitter=0.0)
        waits = [policy.backoff_cycles(k) for k in range(1, 8)]
        assert waits == [10, 20, 40, 80, 100, 100, 100]

    def test_jitter_is_deterministic_per_seed(self):
        first = ExponentialBackoff(seed=7)
        second = ExponentialBackoff(seed=7)
        assert [first.backoff_cycles(k) for k in range(1, 5)] == \
            [second.backoff_cycles(k) for k in range(1, 5)]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=0)
        with pytest.raises(ValueError):
            RetryCap(max_attempts=0)

    def test_retry_cap_gives_up(self):
        policy = RetryCap(max_attempts=2)
        assert policy.backoff_cycles(1) == 0
        assert policy.backoff_cycles(2) == 0
        assert policy.backoff_cycles(3) is None

    def test_backoff_under_real_contention(self):
        machine, runtime = build(n_cpus=4)
        policy = {cpu: ExponentialBackoff(seed=cpu) for cpu in range(4)}

        def program(t):
            def body(t):
                value = yield t.load(SHARED)
                yield t.alu(40)
                yield t.store(SHARED, value + 1)

            for _ in range(4):
                yield from run_with_policy(
                    runtime, t, body, policy=policy[t.cpu_id])
            return "done"

        for cpu in range(4):
            runtime.spawn(program, cpu_id=cpu)
        machine.run()
        assert machine.memory.read(SHARED) == 16

    def test_retry_cap_surfaces_txaborted(self):
        machine, runtime = build(n_cpus=2)
        outcomes = []

        def hog(t):
            def body(t):
                value = yield t.load(SHARED)
                yield t.alu(10)
                yield t.store(SHARED, value + 1)

            for _ in range(120):
                yield from runtime.atomic(t, body)

        def capped(t):
            def body(t):
                value = yield t.load(SHARED)
                yield t.alu(500)           # always loses
                yield t.store(SHARED, value + 100)

            try:
                yield from run_with_policy(
                    runtime, t, body,
                    policy=RetryCap(max_attempts=2))
                outcomes.append("committed")
            except TxAborted as aborted:
                outcomes.append(aborted.code)

        runtime.spawn(hog, cpu_id=0)
        runtime.spawn(capped, cpu_id=1)
        machine.run()
        # the hog outlives both permitted attempts
        assert outcomes == ["retry-cap"]


class TestTryAtomic:
    def test_success_path(self):
        machine, runtime = build(1)

        def body(t):
            yield t.store(SHARED, 5)
            return "did-it"

        def program(t):
            result = yield from runtime.try_atomic(t, body)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == (True, "did-it")
        assert machine.memory.read(SHARED) == 5

    def test_alternative_path(self):
        machine, runtime = build(1)

        def body(t):
            yield t.store(SHARED, 5)
            yield from runtime.abort(t, code="try-failed")

        def alternative(t):
            yield t.store(SHARED + 64, 7)
            return "plan-b"

        def program(t):
            result = yield from runtime.try_atomic(
                t, body, alternative=alternative)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == (False, "plan-b")
        assert machine.memory.read(SHARED) == 0       # body undone
        assert machine.memory.read(SHARED + 64) == 7  # alternative ran

    def test_no_alternative_returns_code(self):
        machine, runtime = build(1)

        def body(t):
            yield from runtime.abort(t, code=42)

        def program(t):
            result = yield from runtime.try_atomic(t, body)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == (False, 42)


class TestSerialFallback:
    def tiny_capacity_config(self, **over):
        return functional_config(
            n_cpus=2, l2_size=4 * 32, l2_assoc=2, l1_size=4 * 32,
            l1_assoc=2, **over)

    def test_overflowing_transaction_completes_serially(self):
        machine = Machine(self.tiny_capacity_config())
        runtime = Runtime(machine)
        big_base = 0x10_0000

        def big(t):
            for i in range(32):
                yield t.store(big_base + i * 32, i + 1)
            return "big-done"

        def program(t):
            result = yield from runtime.atomic_with_fallback(t, big)
            return result

        runtime.spawn(program, cpu_id=0)
        machine.run()
        assert machine.results()[0] == "big-done"
        assert machine.memory.read(big_base) == 1
        assert machine.memory.read(big_base + 31 * 32) == 32
        assert machine.stats.total("rt.serial_fallbacks") == 1

    def test_small_transactions_unaffected(self):
        machine = Machine(self.tiny_capacity_config())
        runtime = Runtime(machine)

        def small(t):
            value = yield t.load(SHARED)
            yield t.store(SHARED, value + 1)

        def program(t):
            yield from runtime.atomic_with_fallback(t, small)

        runtime.spawn(program, cpu_id=0)
        machine.run()
        assert machine.memory.read(SHARED) == 1
        assert machine.stats.total("rt.serial_fallbacks") == 0

    def test_serial_writer_violates_speculative_readers(self):
        """Strong atomicity during the fallback: a transaction that read
        the serial writer's data restarts and sees a consistent state."""
        machine = Machine(self.tiny_capacity_config())
        runtime = Runtime(machine)
        big_base = 0x10_0000

        def big(t):
            for i in range(32):
                yield t.store(big_base + i * 32, 7)
            return "big-done"

        def big_program(t):
            result = yield from runtime.atomic_with_fallback(t, big)
            return result

        def reader(t):
            def body(t):
                first = yield t.load(big_base)
                yield t.alu(2000)
                last = yield t.load(big_base + 31 * 32)
                return first, last

            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(big_program, cpu_id=0)
        runtime.spawn(reader, cpu_id=1)
        machine.run()
        first, last = machine.results()[1]
        assert (first, last) in ((0, 0), (7, 7))   # never torn

    def test_fallback_rejected_on_undo_log(self):
        machine = Machine(functional_config(
            n_cpus=1, versioning="undo_log", detection="eager"))
        runtime = Runtime(machine)

        def body(t):
            yield t.alu(1)

        def program(t):
            yield from runtime.atomic_with_fallback(t, body)

        runtime.spawn(program)
        with pytest.raises(ConfigError):
            machine.run()


class TestProfile:
    def test_profile_fields(self):
        from repro.harness.profile import format_profiles, profile_machine

        machine, runtime = build()
        runtime.spawn(contended_pair(runtime), cpu_id=0)
        runtime.spawn(contended_pair(runtime), cpu_id=1)
        machine.run()
        profile = profile_machine(machine)
        assert profile.cycles == machine.now
        assert profile.commits_outer == 8
        assert profile.violations >= 1
        assert profile.retries >= 1
        assert 1 in profile.rollbacks_by_level
        assert profile.total_commits == 8
        assert profile.violations_per_commit > 0
        text = format_profiles([("pair", profile)])
        assert "pair" in text and "violations" in text

    def test_timing_profile_has_cache_rates(self):
        from repro.common.params import paper_config
        from repro.harness.profile import profile_machine
        from repro.workloads import SwimKernel

        machine = SwimKernel(n_threads=2, scale=0.25).run(
            paper_config(n_cpus=2))
        profile = profile_machine(machine)
        assert 0.0 < profile.l1_hit_rate <= 1.0
        assert 0.0 <= profile.bus_utilization < 1.0
