"""Tests: the process-pool campaign executor and its campaign wirings.

The executor's contract (docs/checking.md, "Running campaigns in
parallel"):

* determinism — a parallel campaign's merged result list is identical
  to the serial one, because every case is a pure function of its
  replayable name and results merge in enumeration order;
* isolation — a case that raises, crashes its worker outright, or hangs
  past the per-case timeout becomes one classified failure result, and
  the rest of the campaign completes;
* ordered progress — the ``report`` callback sees results in
  enumeration order regardless of worker completion order.
"""

import os
import signal
import time

import pytest

from repro.check.fuzz import CaseResult, chaos_sweep, sweep
from repro.harness.parallel import (
    CampaignFailure,
    CaseSpec,
    run_campaign,
    run_spec,
)
from repro.harness.sweep import SweepCaseError, config_sweep, speedup_curve
from repro.workloads import SwimKernel

JOBS = 3


def payload_spec(key, *args):
    """A spec whose runner is a fork-inherited payload callable."""
    return CaseSpec(runner="repro.harness.parallel:call_payload",
                    name=f"{key}{args}", args=(key,) + args)


def plus_one(n):
    return n + 1


def crash_hard():
    os._exit(23)          # bypasses every except clause: a real crash


def livelock():
    while True:           # pure-Python hang; the worker's alarm fires
        pass


def wedge():
    # Signal-immune hang: only the parent's kill-after-grace gets it.
    signal.pthread_sigmask(signal.SIG_BLOCK, [signal.SIGALRM])
    while True:
        pass


PAYLOAD = {"ok": plus_one, "crash": crash_hard, "hang": livelock,
           "wedge": wedge}


class TestExecutor:
    def test_serial_and_parallel_merge_identically(self):
        specs = [payload_spec("ok", n) for n in range(8)]
        serial = run_campaign(specs, jobs=1, payload=PAYLOAD)
        parallel = run_campaign(specs, jobs=JOBS, payload=PAYLOAD)
        assert serial == parallel == [n + 1 for n in range(8)]

    def test_worker_crash_is_isolated(self):
        specs = [payload_spec("ok", 1), payload_spec("crash"),
                 payload_spec("ok", 2)]
        results = run_campaign(specs, jobs=2, payload=PAYLOAD)
        assert results[0] == 2 and results[2] == 3
        assert isinstance(results[1], CampaignFailure)
        assert "worker crashed (exit code 23)" in results[1].message

    def test_case_timeout_is_isolated(self):
        specs = [payload_spec("ok", 1), payload_spec("hang"),
                 payload_spec("ok", 2)]
        results = run_campaign(specs, jobs=2, timeout=0.5, grace=0.5,
                               payload=PAYLOAD)
        assert results[0] == 2 and results[2] == 3
        assert "timeout after 0.5s" in results[1].message

    def test_signal_immune_hang_is_killed_after_grace(self):
        specs = [payload_spec("wedge"), payload_spec("ok", 4)]
        results = run_campaign(specs, jobs=2, timeout=0.3, grace=0.3,
                               payload=PAYLOAD)
        assert "worker killed" in results[0].message
        assert results[1] == 5

    def test_report_streams_in_enumeration_order(self):
        def staggered(n):
            time.sleep(0.3 if n == 0 else 0.0)  # first case finishes last
            return n

        seen = []
        results = run_campaign(
            [payload_spec("slow", n) for n in range(4)], jobs=4,
            payload={"slow": staggered}, report=seen.append)
        assert seen == results == [0, 1, 2, 3]

    def test_serial_exception_is_classified_not_raised(self):
        def boom():
            raise KeyError("lost")

        results = run_campaign([payload_spec("boom")], jobs=1,
                               payload={"boom": boom})
        assert isinstance(results[0], CampaignFailure)
        assert "KeyError" in results[0].message

    def test_run_spec_resolves_runner_by_name(self):
        spec = CaseSpec(runner="repro.check.fuzz:run_case",
                        name="counter:lazy-wb-assoc:det:1",
                        args=("counter", "lazy-wb-assoc", "det", 1))
        result = run_spec(spec)
        assert isinstance(result, CaseResult) and not result.failed

    def test_bad_runner_name_rejected(self):
        with pytest.raises(ValueError):
            run_spec(CaseSpec(runner="no-colon", name="x"))


class TestCampaignEquivalence:
    def test_check_parallel_equals_serial(self):
        kwargs = dict(programs=["counter", "requeue"],
                      configs=["lazy-wb-assoc", "eager-wb"],
                      policies=("det", "random"), seeds=2)
        serial = sweep(**kwargs)
        parallel = sweep(jobs=JOBS, **kwargs)
        assert len(serial) == 16
        assert parallel == serial          # dataclass equality, per field
        assert [str(r) for r in parallel] == [str(r) for r in serial]

    def test_chaos_parallel_equals_serial(self):
        kwargs = dict(faults=["spurious-violation", "token-loss"],
                      programs=["counter"],
                      configs=["lazy-wb-assoc", "eager-wb"], seeds=2)
        serial = chaos_sweep(**kwargs)
        parallel = chaos_sweep(jobs=JOBS, **kwargs)
        assert len(serial) == 8
        assert parallel == serial
        assert any(r.n_injections for r in parallel)

    def test_unexpected_exception_becomes_run_failure(self, monkeypatch):
        # run_case only handles ReproError; a buggy program's KeyError
        # must be classified at the campaign boundary, serial or not,
        # without losing the other cases' results.
        import repro.check.programs as programs

        class Buggy:
            def __init__(self, seed=1):
                raise KeyError("buggy program")

        monkeypatch.setitem(programs.PROGRAMS, "counter", Buggy)
        results = sweep(programs=["counter", "requeue"],
                        configs=["lazy-wb-assoc"], policies=("det",),
                        seeds=1)
        assert len(results) == 2
        assert results[0].failed
        assert results[0].violations[0].oracle == "run-failure"
        assert "KeyError" in results[0].error
        assert not results[1].failed       # the campaign kept going

    def test_crashing_case_yields_run_failure_in_parallel(self, monkeypatch):
        import repro.check.fuzz as fuzz

        real_run_case = fuzz.run_case

        def sabotaged(program, config, policy, seed, **kwargs):
            if seed == 1:
                os._exit(40)
            return real_run_case(program, config, policy, seed, **kwargs)

        # fork inherits the monkeypatched module, so workers crash too
        monkeypatch.setattr(fuzz, "run_case", sabotaged)
        results = sweep(programs=["counter"], configs=["lazy-wb-assoc"],
                        policies=("det",), seeds=2, jobs=2)
        assert results[0].failed
        assert results[0].violations[0].oracle == "run-failure"
        assert "worker crashed" in results[0].error
        assert results[0].triple == "counter:lazy-wb-assoc:det:1"
        assert not results[1].failed

    def test_cli_check_jobs_flag(self, capsys):
        from repro.cli import main

        code = main(["check", "--programs", "counter",
                     "--configs", "lazy-wb-assoc", "--policies", "det",
                     "--seeds", "2", "--jobs", "2"])
        assert code == 0
        assert "2 cases run, 0 skipped, 0 failed" in capsys.readouterr().out


class TestBenchParallel:
    def test_matrix_cells_match_serial_and_golden(self):
        from repro.harness.bench import run_bench

        serial, serial_errors = run_bench(
            smoke=True, repeat=1, report=lambda line: None)
        parallel, parallel_errors = run_bench(
            smoke=True, repeat=1, report=lambda line: None, jobs=2)
        assert serial_errors == parallel_errors == []
        assert ([c["id"] for c in parallel["cells"]]
                == [c["id"] for c in serial["cells"]])
        # simulated cycles are wall-clock-independent: exact equality
        assert ([c["cycles"] for c in parallel["cells"]]
                == [c["cycles"] for c in serial["cells"]])
        assert all(c["ok"] for c in parallel["cells"])

    def test_cell_runner_rejects_unknown_id(self):
        from repro.harness.bench import run_cell_by_id

        with pytest.raises(ValueError):
            run_cell_by_id("no-such-cell")


class TestSpeedupCurveBaseline:
    def test_baseline_is_one_cpu_even_when_not_swept(self):
        # Regression: base_cycles used to come from cpu_counts[0], so a
        # (2, 4) sweep reported the 2-CPU run as "1.00x vs 1 CPU".
        points = speedup_curve(
            lambda n: SwimKernel(n_threads=n, scale=0.25),
            cpu_counts=(2, 4))
        assert points[0].n_cpus == 2
        assert points[0].speedup > 1.2
        assert points[1].speedup > points[0].speedup

        with_one = speedup_curve(
            lambda n: SwimKernel(n_threads=n, scale=0.25),
            cpu_counts=(1, 2, 4))
        assert with_one[0].speedup == 1.0
        assert with_one[1:] == points      # same baseline either way

    def test_actual_cpu_count_is_recorded(self):
        # Regression: a min_cpus() floor used to run at more CPUs than
        # the point's label admitted.
        class Floored(SwimKernel):
            def min_cpus(self):
                return 2

        points = speedup_curve(
            lambda n: Floored(n_threads=n, scale=0.25),
            cpu_counts=(1, 2))
        assert [(p.n_cpus, p.actual_cpus) for p in points] == [(1, 2),
                                                               (2, 2)]

    def test_parallel_curve_matches_serial(self):
        kwargs = dict(cpu_counts=(2, 4))
        factory = lambda n: SwimKernel(n_threads=n, scale=0.25)  # noqa
        assert (speedup_curve(factory, jobs=JOBS, **kwargs)
                == speedup_curve(factory, **kwargs))

    def test_sweep_point_failure_raises(self):
        def bad_factory(n):
            raise RuntimeError("no workload for you")

        with pytest.raises(SweepCaseError):
            speedup_curve(bad_factory, cpu_counts=(2,))


class TestConfigSweepDigest:
    def test_returns_profiles_not_machines(self):
        results = config_sweep(
            lambda n: SwimKernel(n_threads=n, scale=0.25),
            axes=[("plain", {}), ("msi", {"coherence": "msi"})],
            n_cpus=2)
        assert set(results) == {"plain", "msi"}
        for profile in results.values():
            assert profile.cycles > 0
            assert profile.commits_outer > 0
            assert not hasattr(profile, "stats")   # digested, no Machine

    def test_parallel_matches_serial_and_pickles(self):
        import pickle

        factory = lambda n: SwimKernel(n_threads=n, scale=0.25)  # noqa
        axes = [("plain", {}), ("eager", {"detection": "eager"})]
        serial = config_sweep(factory, axes=axes, n_cpus=2)
        parallel = config_sweep(factory, axes=axes, n_cpus=2, jobs=2)
        assert serial == parallel
        assert pickle.loads(pickle.dumps(serial)) == serial
