"""Tests: transactional allocator, shared heap, arena, arrays, queue,
hash map, and host execution."""

import pytest

from repro.common.errors import HeapError, MemoryError_, TxAborted
from repro.common.params import functional_config
from repro.mem.array import LineArray, WordArray
from repro.mem.hashmap import HashMap
from repro.mem.heap import SharedHeap
from repro.mem.hostexec import HostContext, host, run_host
from repro.mem.layout import SharedArena
from repro.mem.queue import BoundedQueue
from repro.runtime.alloc import TxAlloc
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

SHARED = 0xA_0000


def build(n_cpus=2):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    return machine, runtime, arena


class TestArena:
    def test_sequential_allocation(self):
        machine, _, arena = build(1)
        a = arena.alloc(4)
        b = arena.alloc(4)
        assert b >= a + 16

    def test_isolation_pads_to_lines(self):
        machine, _, arena = build(1)
        line = machine.config.line_size
        a = arena.alloc_word(1, isolate=True)
        b = arena.alloc_word(2, isolate=True)
        assert a % line == 0 and b % line == 0
        assert b - a >= line

    def test_block_initialization(self):
        machine, _, arena = build(1)
        addr = arena.alloc_block([5, 6, 7])
        assert machine.memory.read_block(addr, 3) == [5, 6, 7]


class TestArrays:
    def test_word_array_bounds(self):
        machine, _, arena = build(1)
        array = WordArray(arena, 4)
        with pytest.raises(MemoryError_):
            array.addr(4)
        with pytest.raises(MemoryError_):
            array.addr(-1)

    def test_line_array_strides_by_line(self):
        machine, _, arena = build(1)
        array = LineArray(arena, 3, initial=[1, 2, 3])
        line = machine.config.line_size
        assert array.addr(1) - array.addr(0) == line
        assert machine.memory.read(array.addr(2)) == 3

    def test_transactional_accessors(self):
        machine, runtime, arena = build(1)
        array = WordArray(arena, 4, initial=[10, 20, 30, 40])

        def body(t):
            value = yield from array.get(t, 1)
            yield from array.set(t, 2, value + 1)
            total = yield from array.add(t, 3, 5)
            return total

        def program(t):
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == 45
        assert machine.memory.read(array.addr(2)) == 21


class TestQueue:
    def test_fifo_order(self):
        machine, runtime, arena = build(1)
        queue = BoundedQueue(arena, 4, item_words=2)

        def program(t):
            def body(t):
                yield from queue.enqueue(t, [1, 2])
                yield from queue.enqueue(t, [3, 4])
                first = yield from queue.try_dequeue(t)
                second = yield from queue.try_dequeue(t)
                third = yield from queue.try_dequeue(t)
                return first, second, third
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == ([1, 2], [3, 4], None)

    def test_capacity_and_wraparound(self):
        machine, runtime, arena = build(1)
        queue = BoundedQueue(arena, 2, item_words=1)

        def program(t):
            def body(t):
                assert (yield from queue.try_enqueue(t, [1]))
                assert (yield from queue.try_enqueue(t, [2]))
                full = yield from queue.try_enqueue(t, [3])
                yield from queue.try_dequeue(t)
                assert (yield from queue.try_enqueue(t, [3]))
                a = yield from queue.try_dequeue(t)
                b = yield from queue.try_dequeue(t)
                return full, a, b
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == (False, [2], [3])

    def test_item_width_enforced(self):
        machine, runtime, arena = build(1)
        queue = BoundedQueue(arena, 2, item_words=2)

        def program(t):
            def body(t):
                yield from queue.enqueue(t, [1])
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        with pytest.raises(MemoryError_):
            machine.run()

    def test_concurrent_producers_consumer(self):
        machine, runtime, arena = build(3)
        queue = BoundedQueue(arena, 8, item_words=1)

        def producer(t, base):
            for i in range(4):
                def body(t, i=i):
                    yield from queue.enqueue(t, [base + i])
                yield from runtime.atomic(t, body)

        def consumer(t):
            got = []
            while len(got) < 8:
                def body(t):
                    item = yield from queue.try_dequeue(t)
                    return item
                item = yield from runtime.atomic(t, body)
                if item is not None:
                    got.append(item[0])
                else:
                    yield t.alu(20)
            return sorted(got)

        runtime.spawn(producer, 10, cpu_id=0)
        runtime.spawn(producer, 20, cpu_id=1)
        runtime.spawn(consumer, cpu_id=2)
        machine.run(max_cycles=10_000_000)
        assert machine.results()[2] == [10, 11, 12, 13, 20, 21, 22, 23]


class TestHashMap:
    def test_put_get_add(self):
        machine, runtime, arena = build(1)
        table = HashMap(arena, 16)

        def program(t):
            def body(t):
                yield from table.put(t, 5, 50)
                yield from table.put(t, 21, 210)   # may probe-collide
                value = yield from table.get(t, 5)
                missing = yield from table.get(t, 99)
                total = yield from table.add(t, 5, 1)
                fresh = yield from table.add(t, 7, 3, default=100)
                return value, missing, total, fresh
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == (50, None, 51, 103)

    def test_zero_key_rejected(self):
        machine, runtime, arena = build(1)
        table = HashMap(arena, 8)

        def program(t):
            def body(t):
                yield from table.put(t, 0, 1)
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        with pytest.raises(MemoryError_):
            machine.run()


class TestSharedHeap:
    def test_malloc_free_reuse(self):
        machine, runtime, arena = build(1)
        heap = SharedHeap(arena, 1024)

        def program(t):
            def get(t):
                addr = yield from heap.malloc(t, 8)
                return addr

            def give(t, addr):
                yield from heap.free(t, addr)

            first = yield from runtime.atomic(t, get)
            yield from runtime.atomic(t, give, first)
            second = yield from runtime.atomic(t, get)
            return first, second

        runtime.spawn(program)
        machine.run()
        first, second = machine.results()[0]
        assert first == second   # first-fit reuses the freed block

    def test_exhaustion_raises(self):
        machine, runtime, arena = build(1)
        heap = SharedHeap(arena, 16)

        def program(t):
            def get(t):
                addr = yield from heap.malloc(t, 64)
                return addr
            yield from runtime.atomic(t, get)

        runtime.spawn(program)
        with pytest.raises(HeapError):
            machine.run()

    def test_free_foreign_pointer_rejected(self):
        machine, runtime, arena = build(1)
        heap = SharedHeap(arena, 64)

        def program(t):
            def give(t):
                yield from heap.free(t, 0x4)
            yield from runtime.atomic(t, give)

        runtime.spawn(program)
        with pytest.raises(HeapError):
            machine.run()


class TestTxAlloc:
    def test_malloc_compensated_on_abort(self):
        """An unmanaged malloc inside an aborting transaction is freed by
        the compensation handler (paper §5)."""
        machine, runtime, arena = build(1)
        heap = SharedHeap(arena, 1024)
        alloc = TxAlloc(runtime, heap)

        def body(t):
            yield from alloc.malloc(t, 8)
            yield from runtime.abort(t, code="nope")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except TxAborted:
                pass
            # after compensation, the block is on the free list again
            def count(t):
                n = yield from heap.free_list_length(t)
                return n
            n = yield from runtime.atomic(t, count)
            return n

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == 1
        assert machine.stats.total("alloc.compensated_frees") == 1

    def test_managed_malloc_not_compensated(self):
        machine, runtime, arena = build(1)
        heap = SharedHeap(arena, 1024)
        alloc = TxAlloc(runtime, heap)

        def body(t):
            yield from alloc.malloc(t, 8, managed=True)
            yield from runtime.abort(t, code="nope")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except TxAborted:
                pass
            def count(t):
                n = yield from heap.free_list_length(t)
                return n
            n = yield from runtime.atomic(t, count)
            return n

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == 0   # leaked to the (absent) GC

    def test_free_deferred_to_commit(self):
        machine, runtime, arena = build(1)
        heap = SharedHeap(arena, 1024)
        alloc = TxAlloc(runtime, heap)
        lengths = []

        def program(t):
            addr = yield from alloc.malloc(t, 8)

            def body(t):
                yield from alloc.free(t, addr)
                n = yield from heap.free_list_length(t)
                lengths.append(n)   # not freed yet inside the tx

            yield from runtime.atomic(t, body)

            def count(t):
                n = yield from heap.free_list_length(t)
                return n
            n = yield from runtime.atomic(t, count)
            return n

        runtime.spawn(program)
        machine.run()
        assert lengths == [0]
        assert machine.results()[0] == 1

    def test_concurrent_allocators_disjoint_blocks(self):
        machine, runtime, arena = build(4)
        heap = SharedHeap(arena, 8192)
        alloc = TxAlloc(runtime, heap)

        def program(t):
            blocks = []
            for _ in range(5):
                addr = yield from alloc.malloc(t, 8)
                blocks.append(addr)
            return blocks

        for cpu in range(4):
            runtime.spawn(program, cpu_id=cpu)
        machine.run(max_cycles=10_000_000)
        every = [a for result in machine.results().values() for a in result]
        assert len(set(every)) == len(every)   # no double allocation


class TestHostExec:
    def test_data_ops(self):
        from repro.memsys.memory import MemoryImage

        memory = MemoryImage()
        ctx = HostContext()

        def code(t):
            yield t.store(0x100, 5)
            value = yield t.load(0x100)
            yield t.imst(0x104, value + 1)
            yield t.alu(3)
            return (yield t.imld(0x104))

        assert run_host(code(ctx), memory) == 6

    def test_transactional_ops_rejected(self):
        from repro.memsys.memory import MemoryImage
        from repro.sim import ops as O
        from repro.common.errors import SimulationError

        def code(t):
            yield O.XBegin()

        with pytest.raises(SimulationError):
            run_host(code(HostContext()), MemoryImage())

    def test_host_helper(self):
        from repro.memsys.memory import MemoryImage

        memory = MemoryImage()

        def write_pair(t, addr, value):
            yield t.store(addr, value)
            yield t.store(addr + 4, value * 2)

        host(write_pair, memory, 0x200, 3)
        assert memory.read(0x200) == 3
        assert memory.read(0x204) == 6
