"""CLI error paths: bad names, bad policies, conflicting flags.

Every checking subcommand validates its comma-separated selectors with
a loud ``SystemExit`` naming the unknown entry and the universe to pick
from — a typo must never silently run an empty (vacuously green)
campaign.  The ``conform`` subcommand additionally rejects flag
combinations that would select nothing.
"""

import pytest

from repro.cli import main


def _exit_message(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    code = excinfo.value.code
    return code if isinstance(code, str) else ""


class TestCheckErrors:
    def test_bad_program_name(self):
        message = _exit_message(["check", "--programs", "no-such-prog"])
        assert "no-such-prog" in message
        assert "counter" in message  # the universe is named

    def test_bad_config_name(self):
        message = _exit_message(["check", "--configs", "sparc-v9"])
        assert "sparc-v9" in message

    def test_bad_policy_name(self):
        message = _exit_message(["check", "--policies", "fifo"])
        assert "fifo" in message
        assert "det" in message

    def test_bad_fault_choice_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--inject-fault", "cosmic-ray"])
        assert "cosmic-ray" in capsys.readouterr().err

    def test_malformed_replay_triple(self, capsys):
        assert main(["check", "--replay", "counter:lazy-wb-assoc"]) == 2
        assert "program:config:policy:seed" in capsys.readouterr().err


class TestChaosErrors:
    def test_bad_fault_name(self):
        message = _exit_message(["chaos", "--faults", "gremlins"])
        assert "gremlins" in message

    def test_bad_program_name(self):
        message = _exit_message(["chaos", "--programs", "no-such-prog"])
        assert "no-such-prog" in message


class TestExploreErrors:
    def test_bad_program_name(self):
        message = _exit_message(["explore", "--programs", "nope"])
        assert "nope" in message

    def test_malformed_replay(self, capsys):
        assert main(["explore", "--replay", "just-one-part"]) == 2
        assert "deviations" in capsys.readouterr().err


class TestConformErrors:
    def test_bad_program_name(self):
        message = _exit_message(["conform", "--programs", "no-such-prog"])
        assert "no-such-prog" in message

    def test_bad_config_name(self):
        message = _exit_message(["conform", "--configs", "z80"])
        assert "z80" in message

    def test_conflicting_litmus_flags(self):
        message = _exit_message(
            ["conform", "--litmus-only", "--skip-litmus"])
        assert "exclude each other" in message


class TestConformSmoke:
    def test_single_cell_runs_clean(self, capsys):
        code = main(["conform", "--programs", "counter",
                     "--configs", "lazy-wb-assoc", "--skip-litmus",
                     "--verbose"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counter:lazy-wb-assoc:1: ok" in out
        assert "0 failed" in out

    def test_litmus_only_drain(self, capsys):
        code = main(["conform", "--programs", "litmus-token-handoff",
                     "--litmus-only"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 litmus drains" in out
        assert "0 failed" in out
