"""The conflict-serializability oracle, on hand-built and recorded
histories.

Hand-built histories pin the graph rules exactly (which interleavings
form edges, which cycles are caught, what the waivers exclude); the
recorded histories check that :class:`~repro.check.history
.HistoryRecorder` applies the paper's nesting semantics — closed-nested
commits merge into the parent, open-nested commits publish their own
record and leave the parent's footprint untouched.
"""

from repro.check.history import History, HistoryRecorder, TxRecord
from repro.check.oracles import (
    check_exact_count,
    check_invariant,
    check_serializability,
    find_cycle,
    precedence_graph,
)
from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


def _tx(txid, cpu=0, reads=(), writes=(), commit_seq=0, **kwargs):
    record = TxRecord(txid=txid, cpu=cpu, level=1, open=False,
                      begin_cycle=0, status="committed", kind="outer",
                      commit_seq=commit_seq, **kwargs)
    for unit, first, last in reads:
        record.reads[unit] = [first, last]
    record.writes.update(writes)
    return record


def _history(*records):
    history = History()
    history.committed.extend(records)
    return history


# ---------------------------------------------------------------------------
# Hand-built histories
# ---------------------------------------------------------------------------

def test_serial_chain_passes():
    history = _history(
        _tx(1, writes={0x100}, commit_seq=1),
        _tx(2, reads=[(0x100, 2, 2)], writes={0x200}, commit_seq=3),
        _tx(3, reads=[(0x200, 4, 4)], commit_seq=5),
    )
    assert check_serializability(history) == []


def test_anti_dependency_alone_is_fine():
    # T1 read the pre-state of a unit T2 later wrote: T1 -> T2 only.
    history = _history(
        _tx(1, reads=[(0x100, 1, 1)], commit_seq=2),
        _tx(2, writes={0x100}, commit_seq=3),
    )
    assert check_serializability(history) == []
    assert precedence_graph(history.committed) == {1: {2}, 2: set()}


def test_lost_update_is_a_cycle():
    # Both increments read the pre-state, then both committed: the
    # classic lost update.
    history = _history(
        _tx(1, reads=[(0x100, 1, 1)], writes={0x100}, commit_seq=3),
        _tx(2, reads=[(0x100, 2, 2)], writes={0x100}, commit_seq=4),
    )
    violations = check_serializability(history)
    assert len(violations) == 1
    assert violations[0].oracle == "serializability"
    assert set(violations[0].cycle) >= {1, 2}


def test_write_skew_is_a_cycle():
    history = _history(
        _tx(1, reads=[(0xA, 1, 1), (0xB, 2, 2)], writes={0xA},
            commit_seq=5),
        _tx(2, reads=[(0xA, 3, 3), (0xB, 4, 4)], writes={0xB},
            commit_seq=6),
    )
    violations = check_serializability(history)
    assert violations and set(violations[0].cycle) >= {1, 2}


def test_inconsistent_read_is_a_two_cycle():
    # The writer committed inside the reader's read window: the reader
    # saw both pre- and post-state.
    history = _history(
        _tx(1, writes={0x100}, commit_seq=3),
        _tx(2, reads=[(0x100, 1, 5)], commit_seq=6),
    )
    violations = check_serializability(history)
    assert violations
    assert sorted(set(violations[0].cycle)) == [1, 2]


def test_reading_own_write_is_not_a_conflict():
    history = _history(
        _tx(1, reads=[(0x100, 1, 4)], writes={0x100}, commit_seq=5),
    )
    assert check_serializability(history) == []


def test_waived_records_are_excluded():
    cyclic = [
        _tx(1, reads=[(0x100, 1, 1)], writes={0x100}, commit_seq=3),
        _tx(2, reads=[(0x100, 2, 2)], writes={0x100}, commit_seq=4,
            resumed=True),
    ]
    assert check_serializability(_history(*cyclic)) == []
    assert check_serializability(_history(*cyclic), waive=False)
    released = _tx(3, reads=[(0x200, 1, 9)], commit_seq=10, released=True)
    assert released.waived


def test_find_cycle_on_plain_graphs():
    assert find_cycle({1: {2}, 2: {3}, 3: set()}) is None
    cycle = find_cycle({1: {2}, 2: {3}, 3: {1}})
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {1, 2, 3}
    # Edges to nodes outside the filtered record set are ignored.
    assert find_cycle({1: {99}}) is None


def test_helper_oracles():
    assert check_exact_count("fx", 3, 3) == []
    assert check_exact_count("fx", 4, 3)[0].oracle == "compensation"
    assert check_exact_count("fx", 2, 3, at_most=True) == []
    assert check_invariant("inv", True) == []
    assert check_invariant("inv", False, "broken")[0].oracle == "invariant"


# ---------------------------------------------------------------------------
# Recorded histories: nesting semantics
# ---------------------------------------------------------------------------

def _record_one_program(program_body):
    """Run ``program_body(t, runtime, log, data)`` on one CPU and return
    (history, log unit, data unit)."""
    machine = Machine(functional_config(n_cpus=1))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    log = arena.alloc_word(0, isolate=True)
    data = arena.alloc_word(0, isolate=True)

    def program(t):
        yield from program_body(t, runtime, log, data)

    with HistoryRecorder(machine) as recorder:
        runtime.spawn(program, cpu_id=0)
        machine.run(max_cycles=1_000_000)
    units = machine.htm.states[0].rwsets
    return recorder.history, units.unit_of(log), units.unit_of(data)


def test_open_commit_excluded_from_parent_footprint():
    def body(t, runtime, log, data):
        def log_op(t):
            count = yield t.load(log)
            yield t.store(log, count + 1)

        def outer(t):
            yield from runtime.atomic_open(t, log_op)
            value = yield t.load(data)
            yield t.store(data, value + 1)

        yield from runtime.atomic(t, outer)

    history, log_unit, data_unit = _record_one_program(body)
    opens = history.of_kind("open")
    outers = history.of_kind("outer")
    assert len(opens) == 1 and len(outers) == 1
    assert log_unit in opens[0].writes
    assert log_unit in opens[0].reads
    # The parent is not charged with the open child's footprint.
    assert log_unit not in outers[0].writes
    assert log_unit not in outers[0].reads
    assert data_unit in outers[0].writes
    # The open child committed first; both pass the oracle.
    assert opens[0].commit_seq < outers[0].commit_seq
    assert check_serializability(history) == []


def test_closed_commit_absorbed_into_parent():
    def body(t, runtime, log, data):
        def inner(t):
            value = yield t.load(log)
            yield t.store(log, value + 1)

        def outer(t):
            yield from runtime.atomic(t, inner)   # closed-nested
            yield t.store(data, 1)

        yield from runtime.atomic(t, outer)

    history, log_unit, data_unit = _record_one_program(body)
    outers = history.of_kind("outer")
    assert len(outers) == 1
    assert history.of_kind("closed") == []   # no separate record
    assert {log_unit, data_unit} <= outers[0].writes
    assert log_unit in outers[0].reads


def test_nontransactional_accesses_are_singleton_records():
    def body(t, runtime, log, data):
        yield t.store(log, 7)     # depth 0: a one-word commit
        yield t.load(log)

    history, log_unit, _ = _record_one_program(body)
    nontx = history.of_kind("nontx")
    assert len(nontx) == 2
    writer, reader = nontx
    assert writer.writes == {log_unit} and not writer.reads
    assert reader.reads and not reader.writes
    assert check_serializability(history) == []
