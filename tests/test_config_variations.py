"""Robustness across machine geometries: the HTM semantics must hold at
any line size, associativity, or core count the config accepts."""

import pytest

from repro.common.params import paper_config
from repro.workloads import Mp3dKernel, SwimKernel


class TestGeometryVariations:
    @pytest.mark.parametrize("line_size", [16, 32, 64])
    def test_line_sizes(self, line_size):
        workload = SwimKernel(n_threads=4, scale=0.5)
        workload.run(paper_config(n_cpus=4, line_size=line_size))

    @pytest.mark.parametrize("l1_assoc,l2_assoc", [(1, 2), (2, 4), (8, 16)])
    def test_associativities(self, l1_assoc, l2_assoc):
        workload = Mp3dKernel(n_threads=4, scale=0.5)
        workload.run(paper_config(
            n_cpus=4, l1_assoc=l1_assoc, l2_assoc=l2_assoc))

    @pytest.mark.parametrize("n", [1, 3, 5, 16])
    def test_core_counts(self, n):
        workload = SwimKernel(n_threads=n, scale=0.5)
        workload.run(paper_config(n_cpus=n))

    def test_small_caches_with_capacity_pressure(self):
        # Small caches shrink the nesting scheme's budget; the workload
        # still fits (its write-sets are tens of lines).
        workload = SwimKernel(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(
            n_cpus=2, l1_size=2048, l2_size=8192))
        assert machine.stats.total("htm.capacity_aborts") == 0

    def test_max_nesting_two_suffices_for_kernels(self):
        # The paper evaluates 3 hardware levels and uses at most 2.
        workload = Mp3dKernel(n_threads=2, scale=0.25)
        workload.run(paper_config(n_cpus=2, max_nesting=2))

    @pytest.mark.parametrize("latency", [20, 300])
    def test_memory_latency_extremes(self, latency):
        workload = SwimKernel(n_threads=2, scale=0.25)
        workload.run(paper_config(n_cpus=2, mem_latency=latency))
