"""Property-based tests for read-/write-set tracking (repro.htm.rwset).

These pin the algebra the conflict detectors and the nesting schemes
lean on: closed-nested merges preserve the CPU's total footprint, the
per-unit level bitmasks agree with the per-level sets, and release/
discard remove exactly what they claim.  Requires ``hypothesis`` (an
optional dev dependency — the module is skipped when it is absent).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.common.params import LINE, WORD, functional_config  # noqa: E402
from repro.htm.rwset import RwSets  # noqa: E402

#: Word-aligned addresses in a small pool, so collisions are common.
ADDRS = st.integers(min_value=0, max_value=31).map(lambda i: i * 8)

#: Per-level (reads, writes) footprints for a nest of 1-4 levels.
LEVEL_SETS = st.lists(
    st.tuples(st.sets(ADDRS, max_size=6), st.sets(ADDRS, max_size=6)),
    min_size=1, max_size=4)


def _build(levels, granularity=WORD):
    rwsets = RwSets(functional_config(granularity=granularity))
    for level, (reads, writes) in enumerate(levels, start=1):
        rwsets.open_level(level)
        for addr in reads:
            rwsets.add_read(level, addr)
        for addr in writes:
            rwsets.add_write(level, addr)
    return rwsets


@settings(deadline=None)
@given(LEVEL_SETS)
def test_merge_preserves_the_total_footprint(levels):
    """Closed-nested commits move tracking between levels but never drop
    or invent a unit (the conflict detector's view must not change)."""
    rwsets = _build(levels)
    all_reads = rwsets.all_reads()
    all_writes = rwsets.all_writes()
    for level in range(len(levels), 1, -1):
        rwsets.merge_into_parent(level)
        assert rwsets.all_reads() == all_reads
        assert rwsets.all_writes() == all_writes
    assert rwsets.reads_at(1) == all_reads
    assert rwsets.writes_at(1) == all_writes


@settings(deadline=None)
@given(LEVEL_SETS)
def test_level_masks_agree_with_level_sets(levels):
    rwsets = _build(levels)
    units = rwsets.all_reads() | rwsets.all_writes()
    for unit in units:
        read_mask = rwsets.levels_reading(unit)
        write_mask = rwsets.levels_writing(unit)
        for level in range(1, len(levels) + 1):
            bit = 1 << (level - 1)
            assert bool(read_mask & bit) == (unit in rwsets.reads_at(level))
            assert bool(write_mask & bit) == (unit in rwsets.writes_at(level))
        assert rwsets.levels_touching(unit) == read_mask | write_mask


@settings(deadline=None)
@given(LEVEL_SETS.filter(lambda levels: len(levels) >= 2))
def test_merge_moves_child_bits_to_the_parent(levels):
    rwsets = _build(levels)
    child = len(levels)
    child_bit = 1 << (child - 1)
    parent_bit = 1 << (child - 2)
    child_units = rwsets.reads_at(child) | rwsets.writes_at(child)
    rwsets.merge_into_parent(child)
    assert child not in rwsets.active_levels()
    for unit in child_units:
        mask = rwsets.levels_touching(unit)
        assert not mask & child_bit
        assert mask & parent_bit


@settings(deadline=None)
@given(LEVEL_SETS)
def test_discard_clears_exactly_that_level(levels):
    rwsets = _build(levels)
    victim = len(levels)
    survivors_r = {lvl: set(rwsets.reads_at(lvl))
                   for lvl in range(1, victim)}
    rwsets.discard(victim)
    bit = 1 << (victim - 1)
    for unit in range(0, 32 * 8, 8):
        assert not rwsets.levels_touching(unit) & bit
    for lvl, reads in survivors_r.items():
        assert rwsets.reads_at(lvl) == reads


@settings(deadline=None)
@given(st.sets(ADDRS, min_size=1, max_size=6), ADDRS)
def test_release_drops_the_unit_iff_present(reads, addr):
    rwsets = _build([(reads, set())])
    was_read = addr in reads
    assert rwsets.release(1, addr) == was_read
    assert addr not in rwsets.reads_at(1)
    assert rwsets.release(1, addr) is False   # already gone


@settings(deadline=None)
@given(st.sets(ADDRS, min_size=1, max_size=8))
def test_line_granularity_collapses_addresses_within_a_line(addrs):
    config = functional_config(granularity=LINE)
    rwsets = RwSets(config)
    rwsets.open_level(1)
    for addr in addrs:
        rwsets.add_read(1, addr)
    expected = {addr - addr % config.line_size for addr in addrs}
    assert rwsets.reads_at(1) == expected
