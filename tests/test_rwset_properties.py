"""Property-based tests for read-/write-set tracking (repro.htm.rwset).

These pin the algebra the conflict detectors and the nesting schemes
lean on: closed-nested merges preserve the CPU's total footprint, the
per-unit level bitmasks agree with the per-level sets, and release/
discard remove exactly what they claim.  Requires ``hypothesis`` (an
optional dev dependency — the module is skipped when it is absent).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.common.params import LINE, WORD, functional_config  # noqa: E402
from repro.htm.rwset import ConflictIndex, RwSets  # noqa: E402

#: Word-aligned addresses in a small pool, so collisions are common.
ADDRS = st.integers(min_value=0, max_value=31).map(lambda i: i * 8)

#: Per-level (reads, writes) footprints for a nest of 1-4 levels.
LEVEL_SETS = st.lists(
    st.tuples(st.sets(ADDRS, max_size=6), st.sets(ADDRS, max_size=6)),
    min_size=1, max_size=4)


def _build(levels, granularity=WORD):
    rwsets = RwSets(functional_config(granularity=granularity))
    for level, (reads, writes) in enumerate(levels, start=1):
        rwsets.open_level(level)
        for addr in reads:
            rwsets.add_read(level, addr)
        for addr in writes:
            rwsets.add_write(level, addr)
    return rwsets


@settings(deadline=None)
@given(LEVEL_SETS)
def test_merge_preserves_the_total_footprint(levels):
    """Closed-nested commits move tracking between levels but never drop
    or invent a unit (the conflict detector's view must not change)."""
    rwsets = _build(levels)
    all_reads = rwsets.all_reads()
    all_writes = rwsets.all_writes()
    for level in range(len(levels), 1, -1):
        rwsets.merge_into_parent(level)
        assert rwsets.all_reads() == all_reads
        assert rwsets.all_writes() == all_writes
    assert rwsets.reads_at(1) == all_reads
    assert rwsets.writes_at(1) == all_writes


@settings(deadline=None)
@given(LEVEL_SETS)
def test_level_masks_agree_with_level_sets(levels):
    rwsets = _build(levels)
    units = rwsets.all_reads() | rwsets.all_writes()
    for unit in units:
        read_mask = rwsets.levels_reading(unit)
        write_mask = rwsets.levels_writing(unit)
        for level in range(1, len(levels) + 1):
            bit = 1 << (level - 1)
            assert bool(read_mask & bit) == (unit in rwsets.reads_at(level))
            assert bool(write_mask & bit) == (unit in rwsets.writes_at(level))
        assert rwsets.levels_touching(unit) == read_mask | write_mask


@settings(deadline=None)
@given(LEVEL_SETS.filter(lambda levels: len(levels) >= 2))
def test_merge_moves_child_bits_to_the_parent(levels):
    rwsets = _build(levels)
    child = len(levels)
    child_bit = 1 << (child - 1)
    parent_bit = 1 << (child - 2)
    child_units = rwsets.reads_at(child) | rwsets.writes_at(child)
    rwsets.merge_into_parent(child)
    assert child not in rwsets.active_levels()
    for unit in child_units:
        mask = rwsets.levels_touching(unit)
        assert not mask & child_bit
        assert mask & parent_bit


@settings(deadline=None)
@given(LEVEL_SETS)
def test_discard_clears_exactly_that_level(levels):
    rwsets = _build(levels)
    victim = len(levels)
    survivors_r = {lvl: set(rwsets.reads_at(lvl))
                   for lvl in range(1, victim)}
    rwsets.discard(victim)
    bit = 1 << (victim - 1)
    for unit in range(0, 32 * 8, 8):
        assert not rwsets.levels_touching(unit) & bit
    for lvl, reads in survivors_r.items():
        assert rwsets.reads_at(lvl) == reads


@settings(deadline=None)
@given(st.sets(ADDRS, min_size=1, max_size=6), ADDRS)
def test_release_drops_the_unit_iff_present(reads, addr):
    rwsets = _build([(reads, set())])
    was_read = addr in reads
    assert rwsets.release(1, addr) == was_read
    assert addr not in rwsets.reads_at(1)
    assert rwsets.release(1, addr) is False   # already gone


@settings(deadline=None)
@given(st.sets(ADDRS, min_size=1, max_size=8))
def test_line_granularity_collapses_addresses_within_a_line(addrs):
    config = functional_config(granularity=LINE)
    rwsets = RwSets(config)
    rwsets.open_level(1)
    for addr in addrs:
        rwsets.add_read(1, addr)
    expected = {addr - addr % config.line_size for addr in addrs}
    assert rwsets.reads_at(1) == expected


# ---------------------------------------------------------------------------
# Reverse conflict index consistency
# ---------------------------------------------------------------------------
#
# The detectors never look at the per-CPU sets any more — they probe the
# machine-wide ConflictIndex.  Its contract: after *any* interleaving of
# mutations across CPUs, every mask it answers equals the one recomputed
# from the per-level sets from scratch, and it tracks no stale units.

#: One mutation step: (op name, address).  The interpreter below drops
#: steps that are illegal in the current state (e.g. merge at depth 1),
#: so any generated sequence is a valid history.
OP_NAMES = ("open", "read", "write", "release", "merge", "discard",
            "discard_all")
OP_SEQS = st.lists(
    st.tuples(st.sampled_from(OP_NAMES), ADDRS), min_size=1, max_size=50)

N_CPUS = 3


def _apply_ops(ops, granularity=WORD):
    """Interpret an op sequence round-robin across N_CPUS CPUs sharing
    one ConflictIndex; return (index, per-CPU RwSets)."""
    config = functional_config(granularity=granularity)
    index = ConflictIndex()
    rwsets = [RwSets(config, index=index, cpu_id=cpu)
              for cpu in range(N_CPUS)]
    depth = [0] * N_CPUS
    for step, (op, addr) in enumerate(ops):
        cpu = step % N_CPUS
        sets = rwsets[cpu]
        if op == "open":
            depth[cpu] += 1
            sets.open_level(depth[cpu])
        elif depth[cpu] == 0:
            continue
        elif op == "read":
            sets.add_read(depth[cpu], addr)
        elif op == "write":
            sets.add_write(depth[cpu], addr)
        elif op == "release":
            sets.release(depth[cpu], addr)
        elif op == "merge" and depth[cpu] >= 2:
            sets.merge_into_parent(depth[cpu])
            depth[cpu] -= 1
        elif op == "discard":
            sets.discard(depth[cpu])
            depth[cpu] -= 1
        elif op == "discard_all":
            sets.discard_all()
            depth[cpu] = 0
    return index, rwsets


@settings(deadline=None)
@given(OP_SEQS, st.sampled_from([WORD, LINE]))
def test_index_masks_equal_recomputed_masks(ops, granularity):
    """For every (cpu, unit), the index's answer is exactly the mask
    recomputed by scanning that CPU's per-level sets."""
    index, rwsets = _apply_ops(ops, granularity)
    units = index.tracked_units()
    for sets in rwsets:
        units |= sets.all_reads() | sets.all_writes()
    for cpu, sets in enumerate(rwsets):
        for unit in units:
            assert index.read_mask(cpu, unit) == sets.levels_reading(unit)
            assert index.write_mask(cpu, unit) == sets.levels_writing(unit)


@settings(deadline=None)
@given(OP_SEQS)
def test_index_owner_tables_match_per_cpu_state(ops):
    """readers_of/writers_of list exactly the CPUs with a nonzero mask —
    no missing owners and no stale entries (pruning is exact)."""
    index, rwsets = _apply_ops(ops)
    units = index.tracked_units()
    for sets in rwsets:
        units |= sets.all_reads() | sets.all_writes()
    for unit in units:
        expected_readers = {
            cpu: sets.levels_reading(unit)
            for cpu, sets in enumerate(rwsets) if sets.levels_reading(unit)}
        expected_writers = {
            cpu: sets.levels_writing(unit)
            for cpu, sets in enumerate(rwsets) if sets.levels_writing(unit)}
        assert dict(index.readers_of(unit)) == expected_readers
        assert dict(index.writers_of(unit)) == expected_writers
        if not expected_readers and not expected_writers:
            assert unit not in index.tracked_units(), (
                f"unit {unit:#x} is stale in the index")


@settings(deadline=None)
@given(OP_SEQS)
def test_discard_all_empties_the_cpu_out_of_the_index(ops):
    """After every CPU discards everything, the index is empty — nothing
    leaks across transaction lifetimes."""
    index, rwsets = _apply_ops(ops)
    for sets in rwsets:
        sets.discard_all()
    assert index.tracked_units() == set()
    assert index.readers == {}
    assert index.writers == {}
