"""The chaos matrix: every recoverable fault kind x every adversarial
program x lazy/eager detection must come out *clean* — the runtime's
recovery machinery (violation handlers, compensation, the §6b.2
re-queue, the retry-scaled loser pause) absorbs the injected noise with
zero oracle violations.

Three further guarantees, per the fault-injection design (docs/faults.md):

* determinism — a chaos case is a pure function of its
  ``(fault, program, config, seed)`` name: identical seeds give
  bit-identical commit streams and injection streams;
* reachability — every kind actually fires somewhere in the matrix
  (an injection count of zero would make the clean sweep vacuous);
* zero overhead when detached — attaching and detaching a
  :class:`~repro.faults.FaultInjector` leaves the machine's seams
  exactly as they were: the flagship bench still pins its golden cycle
  count.
"""

import pytest

from repro.check.fuzz import CHAOS_FAULTS, injection_totals, run_case
from repro.check.programs import PROGRAMS
from repro.faults import FaultInjector, make_plan

MATRIX_CONFIGS = ("lazy-wb-assoc", "eager-wb")


def _matrix(seed):
    results = []
    for fault in CHAOS_FAULTS:
        for program in sorted(PROGRAMS):
            for config in MATRIX_CONFIGS:
                results.append(run_case(program, config, "det", seed,
                                        fault=fault))
    return results


def test_chaos_matrix_is_clean():
    results = _matrix(seed=1)
    failures = [str(r) for r in results
                if not r.skipped and (r.violations or r.error)]
    assert not failures, "\n".join(failures)


def test_every_fault_kind_fires_in_the_matrix():
    totals = injection_totals(_matrix(seed=1))
    dead = [fault for fault in CHAOS_FAULTS if not totals.get(fault)]
    assert not dead, f"fault kinds never injected: {dead}"


@pytest.mark.parametrize("fault", CHAOS_FAULTS)
def test_identical_seeds_give_identical_streams(fault):
    first = run_case("iochaos", "eager-wb", "det", 5, fault=fault)
    second = run_case("iochaos", "eager-wb", "det", 5, fault=fault)
    assert first.n_committed == second.n_committed
    assert first.commit_cpus == second.commit_cpus
    assert first.n_injections == second.n_injections
    assert first.fired == second.fired
    assert [str(v) for v in first.violations] == [
        str(v) for v in second.violations]


def test_chaos_case_replays_from_its_triple():
    result = run_case("counter", "lazy-wb-assoc", "det", 2,
                      fault="spurious-violation")
    assert result.chaos_triple == "spurious-violation:counter:lazy-wb-assoc:2"
    fault, program, config, seed = result.chaos_triple.split(":")
    replay = run_case(program, config, "det", int(seed), fault=fault)
    assert replay.commit_cpus == result.commit_cpus
    assert replay.fired == result.fired


def test_detached_injector_restores_golden_flagship_cycles():
    from repro.harness.bench import (
        FLAGSHIP_CPUS,
        FLAGSHIP_ID,
        _flagship_config,
        load_golden,
    )
    from repro.mem.layout import SharedArena
    from repro.runtime.core import Runtime
    from repro.sim.engine import Machine
    from repro.workloads import DetectionStressKernel

    golden = load_golden()[FLAGSHIP_ID]
    machine = Machine(_flagship_config(naive=False))
    injector = FaultInjector(make_plan("spurious-violation", seed=7),
                             machine)
    injector.detach()
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    workload = DetectionStressKernel(n_threads=FLAGSHIP_CPUS)
    workload.setup(machine, runtime, arena)
    machine.run()
    workload.verify(machine)
    assert machine.stats.get("cycles") == golden
