"""Conflict detection: lazy (commit-time) vs eager (access-time),
resolution policies, strong atomicity, and the validated-set guarantee.
"""

import pytest

from repro.common.params import functional_config
from repro.runtime.core import Runtime
from repro.sim import ops as O
from repro.sim.engine import Machine

SHARED = 0x7_0000


def build(config):
    machine = Machine(config)
    runtime = Runtime(machine)
    return machine, runtime


def incrementer(runtime, addr, rounds, think=20):
    def body(t):
        value = yield t.load(addr)
        yield t.alu(think)
        yield t.store(addr, value + 1)

    def program(t):
        for _ in range(rounds):
            yield from runtime.atomic(t, body)
        return "ok"

    return program


ALL_MODES = [
    ("lazy", "write_buffer"),
    ("eager", "write_buffer"),
    ("eager", "undo_log"),
]


class TestCounterCorrectness:
    @pytest.mark.parametrize("detection,versioning", ALL_MODES)
    def test_concurrent_increments_all_land(self, detection, versioning):
        machine, runtime = build(functional_config(
            n_cpus=4, detection=detection, versioning=versioning))
        for _ in range(4):
            runtime.spawn(incrementer(runtime, SHARED, 5))
        machine.run()
        assert machine.memory.read(SHARED) == 20

    @pytest.mark.parametrize("detection,versioning", ALL_MODES)
    def test_eager_policies(self, detection, versioning):
        for policy in ["requester_wins", "requester_stalls"]:
            machine, runtime = build(functional_config(
                n_cpus=4, detection=detection, versioning=versioning,
                eager_policy=policy))
            for _ in range(4):
                runtime.spawn(incrementer(runtime, SHARED, 3))
            machine.run()
            assert machine.memory.read(SHARED) == 12


class TestLazySemantics:
    def test_committer_wins_victim_restarts(self):
        machine, runtime = build(functional_config(n_cpus=2))
        events = []

        def slow(t):
            def body(t):
                value = yield t.load(SHARED)
                yield t.alu(200)
                yield t.store(SHARED, value + 10)
            yield from runtime.atomic(t, body)
            events.append("slow-done")

        def fast(t):
            yield t.alu(20)
            def body(t):
                yield t.store(SHARED, 1)
            yield from runtime.atomic(t, body)
            events.append("fast-done")

        machine.add_thread(lambda t: runtime._thread_main(t, slow, ()),
                           cpu_id=0)
        machine.add_thread(lambda t: runtime._thread_main(t, fast, ()),
                           cpu_id=1)
        machine.run()
        assert events == ["fast-done", "slow-done"]
        assert machine.memory.read(SHARED) == 11

    def test_write_write_without_read_not_a_conflict(self):
        """TCC semantics: blind writes serialize by commit order and do
        not violate each other."""
        machine, runtime = build(functional_config(n_cpus=2))

        def writer(value):
            def body(t):
                yield t.alu(50)
                yield t.store(SHARED, value)

            def program(t):
                yield from runtime.atomic(t, body)
            return program

        runtime.spawn(writer(1), cpu_id=0)
        runtime.spawn(writer(2), cpu_id=1)
        machine.run()
        assert machine.stats.total("htm.violations_received") == 0
        assert machine.memory.read(SHARED) in (1, 2)

    def test_non_tx_store_violates_readers(self):
        """Strong atomicity: a non-transactional store violates a
        transaction that has the line in its read-set."""
        machine, runtime = build(functional_config(n_cpus=2))
        outcome = []

        def reader(t):
            def body(t):
                before = yield t.load(SHARED)
                yield t.alu(300)
                after = yield t.load(SHARED)
                return before, after
            outcome.append((yield from runtime.atomic(t, body)))

        def bare_writer(t):
            yield O.Alu(100)
            yield O.Store(SHARED, 5)   # outside any transaction

        runtime.spawn(reader, cpu_id=0)
        machine.add_thread(bare_writer, cpu_id=1)
        machine.run()
        # the transaction restarted and saw a consistent snapshot
        assert outcome == [(5, 5)]


class TestEagerSemantics:
    def test_conflict_detected_at_access_time(self):
        """The younger requester is held off *at the access*, long before
        the older writer commits — the defining eager property."""
        config = functional_config(
            n_cpus=2, detection="eager", versioning="undo_log")
        machine, runtime = build(config)
        events = []

        def victim(t):
            def body(t):
                yield t.store(SHARED, 1)
                yield t.alu(400)       # hold the line a long time
            yield from runtime.atomic(t, body)
            events.append("committed")

        def requester(t):
            yield t.alu(50)
            def body(t):
                value = yield t.load(SHARED)   # conflicts immediately
                return value
            result = yield from runtime.atomic(t, body)
            events.append(("read", result))

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(requester, cpu_id=1)
        machine.run()
        # The requester stalled at access time (conflict found eagerly)
        # and, once through, saw only the committed value — never the
        # writer's in-flight speculative data.
        assert machine.stats.get("htm.conflicts.stalls") >= 1
        assert events == ["committed", ("read", 1)]

    def test_requester_wins_policy_violates_owner(self):
        config = functional_config(
            n_cpus=2, detection="eager", versioning="undo_log",
            eager_policy="requester_wins")
        machine, runtime = build(config)

        def victim(t):
            def body(t):
                yield t.store(SHARED, 1)
                yield t.alu(400)
            yield from runtime.atomic(t, body)

        def requester(t):
            yield t.alu(50)
            def body(t):
                value = yield t.load(SHARED)
                return value
            result = yield from runtime.atomic(t, body)
            return result

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(requester, cpu_id=1)
        machine.run()
        assert machine.stats.get("cpu0.htm.violations_received") >= 1
        assert machine.memory.read(SHARED) == 1   # victim retried fine

    def test_requester_stalls_policy_older_wins(self):
        config = functional_config(
            n_cpus=2, detection="eager", versioning="undo_log",
            eager_policy="requester_stalls")
        machine, runtime = build(config)

        def older(t):
            def body(t):
                yield t.store(SHARED, 7)
                yield t.alu(100)
            yield from runtime.atomic(t, body)
            return "older-done"

        def younger(t):
            yield t.alu(30)   # begins later => younger timestamp
            def body(t):
                value = yield t.load(SHARED)
                return value
            value = yield from runtime.atomic(t, body)
            return value

        runtime.spawn(older, cpu_id=0)
        runtime.spawn(younger, cpu_id=1)
        machine.run()
        # the younger requester waited for the older writer's commit
        assert machine.results()[1] == 7
        assert machine.stats.get("htm.conflicts.stalls") >= 1

    def test_self_abort_breaks_deadlock(self):
        """Two eager transactions waiting on each other must not hang."""
        config = functional_config(
            n_cpus=2, detection="eager", versioning="undo_log",
            eager_policy="requester_stalls")
        machine, runtime = build(config)
        other = SHARED + 0x100

        def crosser(first, second):
            def body(t):
                yield t.store(first, 1)
                yield t.alu(60)
                value = yield t.load(second)
                return value

            def program(t):
                yield from runtime.atomic(t, body)
                return "done"
            return program

        runtime.spawn(crosser(SHARED, other), cpu_id=0)
        runtime.spawn(crosser(other, SHARED), cpu_id=1)
        machine.run(max_cycles=3_000_000)
        assert machine.results()[0] == "done"
        assert machine.results()[1] == "done"


class TestValidatedSet:
    def test_non_conflicting_commits_overlap(self):
        """Two validated transactions with disjoint sets commit
        concurrently (no global serialization)."""
        machine, runtime = build(functional_config(n_cpus=2))
        spots = [SHARED, SHARED + 0x1000]

        def worker(index):
            def body(t):
                yield t.store(spots[index], index + 1)
                yield from runtime.register_commit_handler(
                    t, _slow_handler)

            def program(t):
                yield from runtime.atomic(t, body)
            return program

        def _slow_handler(t):
            yield t.alu(500)

        runtime.spawn(worker(0), cpu_id=0)
        runtime.spawn(worker(1), cpu_id=1)
        cycles = machine.run()
        # overlapping 500-cycle commit handlers: far less than 2x500 serial
        assert cycles < 1000 + 400
        assert machine.memory.read(spots[0]) == 1
        assert machine.memory.read(spots[1]) == 2

    def test_conflicting_validation_stalls(self):
        machine, runtime = build(functional_config(n_cpus=2))
        order = []

        def first(t):
            def body(t):
                yield t.store(SHARED, 1)
                yield from runtime.register_commit_handler(t, _long_handler)
            yield from runtime.atomic(t, body)
            order.append("first")

        def _long_handler(t):
            yield t.alu(400)

        def second(t):
            yield t.alu(50)
            def body(t):
                value = yield t.load(SHARED)
                return value
            value = yield from runtime.atomic(t, body)
            order.append(("second", value))

        runtime.spawn(first, cpu_id=0)
        runtime.spawn(second, cpu_id=1)
        machine.run()
        assert order[0] == "first"
        assert ("second", 1) in order
