"""Oracle self-tests: the checking machinery has teeth.

Every recoverable fault kind ships a ``+broken`` variant whose recovery
is deliberately wrong (docs/faults.md lists the sabotage per kind).  For
each kind there is a deterministic, replayable case where:

* the *clean* kind is absorbed — injections fire, zero violations — and
* the *broken* variant is flagged by the matching oracle.

A kind whose broken variant sailed through would mean the matrix's clean
result is vacuous for that kind; this file pins each one to a concrete
``fault:program:config:seed`` coordinate (small ``max_cycles`` budgets
keep the deliberate-livelock variants fast).
"""

import pytest

from repro.check.fuzz import run_case

#: (fault kind, program, config, seed, max_cycles, oracle, symptom)
#: ``oracle`` is the label the broken variant must be flagged under;
#: ``symptom`` a substring of the violation/error text that names the
#: actual anomaly (not just "something failed").
SELF_TESTS = [
    ("spurious-violation", "counter", "lazy-wb-assoc", 0, None,
     "run-failure", "lost increments"),
    ("delayed-violation", "counter", "lazy-wb-assoc", 0, None,
     "serializability", ""),
    ("token-loss", "counter", "lazy-wb-assoc", 0, 60_000,
     "run-failure", "exceeded 60000 cycles"),
    ("validated-abort", "iochaos", "lazy-wb-assoc", 2, None,
     "invariant", ""),
    ("handler-reentry", "requeue", "lazy-wb-assoc", 0, None,
     "lost-wakeup", ""),
    ("watch-drop", "counter", "lazy-wb-assoc", 0, None,
     "serializability", ""),
    ("io-fault", "iochaos", "lazy-wb-assoc", 0, None,
     "compensation", ""),
    ("alloc-pressure", "iochaos", "lazy-wb-assoc", 0, None,
     "invariant", ""),
]

IDS = [case[0] for case in SELF_TESTS]


@pytest.mark.parametrize(
    "fault,program,config,seed,max_cycles,oracle,symptom",
    SELF_TESTS, ids=IDS)
def test_clean_kind_is_absorbed(fault, program, config, seed, max_cycles,
                                oracle, symptom):
    result = run_case(program, config, "det", seed, fault=fault,
                      max_cycles=max_cycles)
    assert not result.skipped
    assert result.n_injections > 0, "clean case never injected"
    assert not result.violations, str(result)
    assert not result.error, str(result)


@pytest.mark.parametrize(
    "fault,program,config,seed,max_cycles,oracle,symptom",
    SELF_TESTS, ids=IDS)
def test_broken_variant_is_caught(fault, program, config, seed,
                                  max_cycles, oracle, symptom):
    result = run_case(program, config, "det", seed,
                      fault=fault + "+broken", max_cycles=max_cycles)
    assert not result.skipped
    assert result.n_injections > 0, "broken case never injected"
    oracles = {v.oracle for v in result.violations}
    assert oracle in oracles, (
        f"expected the {oracle} oracle to flag {fault}+broken, "
        f"got {sorted(oracles)}: {result}")
    if symptom:
        text = "\n".join(str(v) for v in result.violations)
        assert symptom in text, f"symptom {symptom!r} missing from: {text}"


@pytest.mark.parametrize(
    "fault,program,config,seed,max_cycles,oracle,symptom",
    SELF_TESTS, ids=IDS)
def test_broken_catch_is_replayable(fault, program, config, seed,
                                    max_cycles, oracle, symptom):
    first = run_case(program, config, "det", seed,
                     fault=fault + "+broken", max_cycles=max_cycles)
    replay = run_case(program, config, "det", seed,
                      fault=fault + "+broken", max_cycles=max_cycles)
    assert [str(v) for v in first.violations] == [
        str(v) for v in replay.violations]
    assert first.fired == replay.fired
