"""Runtime exceptions within transactions (paper §3 and §5).

A Python exception raised inside an atomic block must abort the
transaction — running abort handlers (compensation), discarding the
speculative state — and then propagate to the code outside, unwinding
nested transactions level by level.
"""


from repro.common.params import functional_config
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

SHARED = 0x11_0000


def build(n_cpus=2):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    return machine, runtime


class TestExceptionUnwind:
    def test_exception_rolls_back_and_propagates(self):
        machine, runtime = build(1)

        def body(t):
            yield t.store(SHARED, 99)
            raise ValueError("boom")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except ValueError as error:
                return str(error)

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "boom"
        assert machine.memory.read(SHARED) == 0   # store rolled back
        assert machine.htm.depth(0) == 0          # no dangling transaction

    def test_abort_handlers_compensate_on_exception(self):
        machine, runtime = build(1)
        log = []

        def compensate(t, tag):
            log.append(tag)
            yield t.alu()

        def body(t):
            yield from runtime.register_abort_handler(t, compensate, "undo")
            yield t.store(SHARED, 1)
            raise RuntimeError("library blew up")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except RuntimeError:
                return "handled"

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "handled"
        assert log == ["undo"]

    def test_nested_unwinding_level_by_level(self):
        machine, runtime = build(1)
        log = []

        def compensate(t, tag):
            log.append(tag)
            yield t.alu()

        def inner(t):
            yield from runtime.register_abort_handler(t, compensate,
                                                      "inner-undo")
            yield t.store(SHARED + 64, 2)
            raise KeyError("deep failure")

        def outer(t):
            yield from runtime.register_abort_handler(t, compensate,
                                                      "outer-undo")
            yield t.store(SHARED, 1)
            yield from runtime.atomic(t, inner)

        def program(t):
            try:
                yield from runtime.atomic(t, outer)
            except KeyError:
                return "unwound"

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "unwound"
        # compensation ran innermost-first, one abort per level
        assert log == ["inner-undo", "outer-undo"]
        assert machine.memory.read(SHARED) == 0
        assert machine.memory.read(SHARED + 64) == 0
        assert machine.htm.depth(0) == 0

    def test_exception_caught_between_levels(self):
        """Catching between nesting levels keeps the outer transaction
        alive — the try/catch error-handling pattern of §3."""
        machine, runtime = build(1)

        def inner(t):
            yield t.store(SHARED + 64, 5)
            raise ValueError("recoverable")

        def outer(t):
            yield t.store(SHARED, 1)
            try:
                yield from runtime.atomic(t, inner)
            except ValueError:
                yield t.store(SHARED + 128, 7)   # recovery path

        def program(t):
            yield from runtime.atomic(t, outer)
            return "committed"

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "committed"
        assert machine.memory.read(SHARED) == 1        # outer survived
        assert machine.memory.read(SHARED + 64) == 0   # inner undone
        assert machine.memory.read(SHARED + 128) == 7  # recovery committed

    def test_exception_info_captured_before_rollback(self):
        """§3: error handling needs information about the aborted
        transaction before its state is rolled back — the exception
        object carries it out."""
        machine, runtime = build(1)

        class Diagnostic(Exception):
            def __init__(self, observed):
                super().__init__("diagnostic")
                self.observed = observed

        def body(t):
            yield t.store(SHARED, 42)
            value = yield t.load(SHARED)   # speculative state, pre-rollback
            raise Diagnostic(observed=value)

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except Diagnostic as diag:
                return diag.observed

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == 42          # captured before undo
        assert machine.memory.read(SHARED) == 0    # then rolled back

    def test_machine_usable_after_exception(self):
        machine, runtime = build(2)

        def failing(t):
            def body(t):
                yield t.store(SHARED, 1)
                raise ValueError("once")

            try:
                yield from runtime.atomic(t, body)
            except ValueError:
                pass

            def good(t):
                value = yield t.load(SHARED)
                yield t.store(SHARED, value + 10)

            yield from runtime.atomic(t, good)
            return "recovered"

        runtime.spawn(failing, cpu_id=0)
        machine.run()
        assert machine.results()[0] == "recovered"
        assert machine.memory.read(SHARED) == 10

    def test_exception_with_buffered_io_discards_output(self):
        from repro.mem.layout import SharedArena
        from repro.runtime.txio import SimFile, TxIo

        machine, runtime = build(1)
        arena = SharedArena(machine)
        io = TxIo(runtime)
        log = SimFile(arena, "log")

        def body(t):
            yield from io.write(t, log, [1, 2, 3])
            raise OSError("disk on fire")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except OSError:
                return "caught"

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "caught"
        assert log.data == []   # buffered output evaporated
