"""Trace-on-failure and the campaign-wide conservation property.

Every check/chaos/explore case now runs with a cycle profiler and a
last-K trace ring attached.  A failing case must carry its trace tail —
including when the campaign fans out across worker processes, where the
ring has to pickle back — and a passing case must carry none (the rings
would bloat result lists).  On top sits the Hypothesis property: cycle
conservation holds across the whole program × config × policy × fault
space, not just the hand-picked matrix cells.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.explore import replay
from repro.check.fuzz import (
    CONFIGS,
    POLICIES,
    TRACE_RING,
    run_case,
    summarize,
    sweep,
)
from repro.sim.trace import TraceEvent

#: A reliably failing coordinate: the broken spurious-violation variant
#: loses increments on the counter program (see the oracle self-tests).
FAILING = dict(program_name="counter", config_name="lazy-wb-assoc",
               policy_name="det", seed=0, fault="spurious-violation+broken")


class TestTraceOnFailure:
    def test_failing_case_carries_trace_tail(self):
        result = run_case(**FAILING)
        assert result.failed
        assert result.trace, "failing case shipped no trace"
        assert 0 < len(result.trace) <= TRACE_RING
        assert all(isinstance(event, TraceEvent)
                   for event in result.trace)
        # The tail is the *end* of the run: its last event is near the
        # machine's final cycle, not the beginning.
        assert result.trace[-1].cycle >= result.trace[0].cycle

    def test_trace_appears_in_failure_report(self):
        result = run_case(**FAILING)
        text = str(result)
        assert "trace tail" in text
        assert f"({len(result.trace)} events)" in text

    def test_passing_case_carries_no_trace(self):
        result = run_case("counter", "lazy-wb-assoc", "det", 1)
        assert not result.failed
        assert result.trace == ()

    def test_trace_survives_parallel_campaign_workers(self):
        """The ring must pickle through ``sweep(..., jobs=2)`` and come
        back identical to the serial run's."""
        kwargs = dict(
            programs=["counter"], configs=["lazy-wb-assoc"],
            policies=["det"], seeds=1,
            fault="spurious-violation+broken")
        serial = sweep(jobs=1, **kwargs)
        parallel = sweep(jobs=2, **kwargs)
        _, _, serial_failures = summarize(serial)
        _, _, parallel_failures = summarize(parallel)
        assert serial_failures and parallel_failures
        assert [f.trace for f in parallel_failures] == \
               [f.trace for f in serial_failures]
        assert all(f.trace for f in parallel_failures)

    def test_explore_verdicts_carry_trace_on_failure(self):
        verdict = replay("counter", "lazy-wb-assoc", (),
                         fault="spurious-violation+broken", seed=0)
        assert verdict.failed
        assert verdict.trace
        assert "trace tail" in str(verdict)

    def test_explore_verdicts_clean_when_passing(self):
        verdict = replay("litmus-sb", "lazy-wb-assoc", (), seed=1)
        assert not verdict.failed
        assert verdict.trace == ()


# ----------------------------------------------------------------------
# The conservation property, across the whole case space.
# ----------------------------------------------------------------------

#: Faults whose *clean* variants the property may draw (broken variants
#: fail oracles by design; conservation must hold even then, and the
#: targeted tests above cover one).
CLEAN_FAULTS = [None, "spurious-violation", "delayed-violation",
                "token-loss", "validated-abort", "handler-reentry",
                "watch-drop", "io-fault", "alloc-pressure"]

PROGRAM_NAMES = ["counter", "requeue", "condsync", "litmus-sb",
                 "litmus-mp", "iochaos", "bank"]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    program=st.sampled_from(PROGRAM_NAMES),
    config=st.sampled_from(sorted(CONFIGS)),
    policy=st.sampled_from(POLICIES),
    fault=st.sampled_from(CLEAN_FAULTS),
    seed=st.integers(min_value=0, max_value=6),
)
def test_cycle_conservation_property(program, config, policy, fault, seed):
    """Whatever the schedule, config, policy, or injected fault, every
    simulated cycle lands in exactly one bucket."""
    result = run_case(program, config, policy, seed, fault=fault)
    leaks = [v for v in result.violations
             if v.oracle == "cycle-conservation"]
    assert not leaks, "\n".join(str(v) for v in leaks)
