"""Timing-model behaviour: the costs the paper's evaluation rests on."""

import pytest

from repro.common.params import functional_config, paper_config
from repro.runtime.core import Runtime
from repro.sim import ops as O
from repro.sim.engine import Machine

BASE = 0x14_0000


def run_program(config, program):
    machine = Machine(config)
    machine.add_thread(program)
    machine.run()
    return machine


class TestMemoryTiming:
    def test_cold_miss_then_l1_hits(self):
        config = paper_config(n_cpus=1)

        def program(t):
            yield O.Load(BASE)          # cold: memory latency
            for _ in range(10):
                yield O.Load(BASE)      # L1 hits

        machine = run_program(config, program)
        cycles = machine.now
        # 1 miss (>= mem_latency) + 10 hits (1 cycle each), small slack
        assert cycles >= config.mem_latency + 10
        assert cycles <= config.mem_latency + 10 + 30

    def test_flat_model_is_uniform(self):
        config = functional_config(n_cpus=1)

        def program(t):
            for i in range(20):
                yield O.Load(BASE + 64 * i)

        machine = run_program(config, program)
        assert machine.now == 20

    def test_sequential_walk_reuses_lines(self):
        config = paper_config(n_cpus=1)

        def walk(stride):
            def program(t):
                for i in range(32):
                    yield O.Load(BASE + i * stride)
            return program

        within_line = run_program(config, walk(4)).now
        one_per_line = run_program(config, walk(config.line_size)).now
        assert one_per_line > 4 * within_line

    def test_commit_broadcast_scales_with_write_set(self):
        config = paper_config(n_cpus=2)

        def writer(n_lines):
            def program(t):
                yield O.XBegin()
                for i in range(n_lines):
                    yield O.Store(BASE + i * config.line_size, i)
                yield O.XValidate()
                yield O.XCommit()
            return program

        small = run_program(config, writer(2)).now
        # subtract the store traffic itself by measuring per-line slope
        big = run_program(config, writer(20)).now
        per_line = (big - small) / 18
        # each extra line pays its miss + its share of the broadcast
        assert per_line > config.line_transfer_cycles

    def test_bus_contention_raises_latency(self):
        config = paper_config(n_cpus=8)

        def miss_storm(offset):
            def program(t):
                for i in range(16):
                    yield O.Load(BASE + offset + i * 0x1000)
            return program

        solo = Machine(config)
        solo.add_thread(miss_storm(0), cpu_id=0)
        solo.run()

        crowd = Machine(config)
        for cpu in range(8):
            crowd.add_thread(miss_storm(cpu * 0x100_000), cpu_id=cpu)
        crowd.run()
        # 8 CPUs missing simultaneously queue on the one bus
        assert crowd.now > solo.now
        assert crowd.stats.get("bus.wait_cycles") > 0


class TestHtmTimingHooks:
    def test_rollback_latency_scales_with_undo_work(self):
        config = paper_config(n_cpus=1, versioning="undo_log",
                              detection="eager")

        def program(t):
            from repro.common.errors import TxRollback

            yield O.XBegin()
            try:
                for i in range(12):
                    yield O.Store(BASE + i * 4, i)
                yield O.XAbort()
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()

        machine = run_program(config, program)
        rollback_cycles = machine.stats.get("cpu0.htm.rollback_cycles")
        assert rollback_cycles >= 12 * config.undo_cycles_per_entry

    def test_validate_arbitrates_for_publishing_commits_only(self):
        config = paper_config(n_cpus=1)

        def program(t):
            yield O.XBegin()
            yield O.Store(BASE, 1)
            yield O.XBegin()            # closed child
            yield O.Store(BASE + 64, 2)
            yield O.XValidate()         # no-op for closed nesting
            yield O.XCommit()
            yield O.XValidate()         # real arbitration
            yield O.XCommit()

        machine = run_program(config, program)
        # one bus arbitration pair for validate+broadcast, not two
        assert machine.stats.get("bus.transactions") >= 1

    def test_syscall_cycles_configurable(self):
        from repro.mem.layout import SharedArena
        from repro.runtime.txio import SimFile, TxIo

        def run_with(syscall_cycles):
            machine = Machine(paper_config(
                n_cpus=1, syscall_cycles=syscall_cycles))
            runtime = Runtime(machine)
            arena = SharedArena(machine)
            io = TxIo(runtime)
            log = SimFile(arena, "log")

            def body(t):
                yield from io.write(t, log, [1])

            def program(t):
                yield from runtime.atomic(t, body)

            runtime.spawn(program)
            machine.run()
            return machine.now

        assert run_with(2000) >= run_with(100) + 1800


class TestDeterminismAcrossConfigs:
    @pytest.mark.parametrize("overrides", [
        dict(),
        dict(detection="eager"),
        dict(detection="eager", versioning="undo_log"),
        dict(nesting_scheme="multi_tracking"),
        dict(granularity="word"),
        dict(flatten=True),
    ])
    def test_bitwise_reproducible(self, overrides):
        def once():
            machine = Machine(paper_config(n_cpus=4, **overrides))
            runtime = Runtime(machine)

            def program(t):
                for _ in range(3):
                    def body(t):
                        value = yield t.load(BASE)
                        yield t.alu(17)
                        yield t.store(BASE, value + 1)

                    def inner(t):
                        yield t.store(BASE + 0x100, 1)

                    def outer(t):
                        yield from body(t)
                        yield from runtime.atomic(t, inner)

                    yield from runtime.atomic(t, outer)

            for cpu in range(4):
                runtime.spawn(program, cpu_id=cpu)
            machine.run()
            return machine.now, machine.memory.read(BASE)

        assert once() == once()
