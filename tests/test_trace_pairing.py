"""Trace-event pairing: the tracer's causal story is complete.

The :class:`~repro.sim.trace.Tracer` is the debugging instrument for the
paper's subtle mechanisms, so its event stream must be *pairable*: a
delivery implies a prior violation post, a rollback implies a prior
handler dispatch on the same CPU, and — the lost-wakeup axis — every
``park`` (a CPU descheduling itself) is matched by a later ``wake``.
``fault`` events must account for every injection an attached
:class:`~repro.faults.FaultInjector` performed.
"""

from repro.check.fuzz import build_config
from repro.check.programs import make_program
from repro.faults import FaultInjector, make_plan
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import make_policy
from repro.sim.trace import Tracer


def _traced_run(program_name, config_name, seed=1, fault=None, sink=None):
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    machine = Machine(config, policy=make_policy("det", seed=seed))
    injector = (FaultInjector(make_plan(fault, seed), machine)
                if fault else None)
    tracer = Tracer(machine, sink=sink)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    program.setup(machine, runtime, arena)
    machine.run(max_cycles=program.max_cycles)
    program.verify(machine)
    tracer.detach()
    if injector is not None:
        injector.detach()
    return tracer, injector


def test_every_delivery_has_a_prior_violation_post():
    tracer, _ = _traced_run("counter", "lazy-wb-assoc")
    assert tracer.of_kind("delivery"), "workload produced no deliveries"
    posts = {}
    for event in tracer.events:
        if event.kind == "violation":
            posts[event.cpu] = posts.get(event.cpu, 0) + 1
        elif event.kind == "delivery":
            # Coalescing means posts >= deliveries, never the reverse.
            assert posts.get(event.cpu, 0) > 0, (
                f"delivery on cpu{event.cpu} at cycle {event.cycle} "
                f"without a prior violation post")


def test_every_rollback_has_a_prior_dispatch():
    tracer, _ = _traced_run("counter", "eager-wb")
    assert tracer.of_kind("rollback"), "workload produced no rollbacks"
    dispatched = set()
    for event in tracer.events:
        if event.kind == "dispatch":
            dispatched.add(event.cpu)
        elif event.kind == "rollback":
            assert event.cpu in dispatched, (
                f"rollback on cpu{event.cpu} at cycle {event.cycle} "
                f"before any handler dispatch")


def test_every_park_is_matched_by_a_wake():
    tracer, _ = _traced_run("condsync", "lazy-wb-assoc")
    parks = tracer.of_kind("park")
    assert parks, "condsync produced no park events"
    unmatched = {}
    for event in tracer.events:
        if event.kind == "park":
            unmatched[event.cpu] = unmatched.get(event.cpu, 0) + 1
        elif event.kind == "wake" and unmatched.get(event.cpu):
            unmatched[event.cpu] -= 1
    stuck = {cpu: n for cpu, n in unmatched.items() if n}
    assert not stuck, f"parks never woken: {stuck}"


def test_fault_events_account_for_every_injection():
    tracer, injector = _traced_run("counter", "lazy-wb-assoc",
                                   fault="spurious-violation")
    faults = tracer.of_kind("fault")
    assert injector.n_injections > 0
    assert len(faults) == injector.n_injections
    assert all(e.detail["what"] == "spurious-violation" for e in faults)
    # The trace and the plan agree on who was hit.
    assert [e.cpu for e in faults] == [cpu for _, cpu, _ in
                                       injector.plan.fired]


def test_pairing_oracles_hold_on_jsonl_sink(tmp_path):
    """The streamed JSONL file tells the same causal story as the ring:
    the pairing oracles hold on the loaded events, which match the
    in-memory ones record for record."""
    from repro.obs.sinks import JsonlSink, RingSink, TeeSink, load_jsonl

    path = tmp_path / "trace.jsonl"
    sink = TeeSink(RingSink(100_000), JsonlSink(str(path)))
    tracer, _ = _traced_run("counter", "lazy-wb-assoc", sink=sink)
    sink.close()
    loaded = load_jsonl(str(path))

    assert [(e.cycle, e.kind, e.cpu, e.detail) for e in loaded] == \
           [(e.cycle, e.kind, e.cpu, e.detail) for e in tracer.events]

    deliveries = [e for e in loaded if e.kind == "delivery"]
    assert deliveries, "workload produced no deliveries"
    posts = {}
    dispatched = set()
    for event in loaded:
        if event.kind == "violation":
            posts[event.cpu] = posts.get(event.cpu, 0) + 1
        elif event.kind == "delivery":
            assert posts.get(event.cpu, 0) > 0, (
                f"delivery on cpu{event.cpu} at cycle {event.cycle} "
                f"without a prior violation post")
        elif event.kind == "dispatch":
            dispatched.add(event.cpu)
        elif event.kind == "rollback":
            assert event.cpu in dispatched, (
                f"rollback on cpu{event.cpu} at cycle {event.cycle} "
                f"before any handler dispatch")


def test_park_wake_pairing_survives_jsonl_round_trip(tmp_path):
    from repro.obs.sinks import JsonlSink, load_jsonl

    path = tmp_path / "condsync.jsonl"
    sink = JsonlSink(str(path))
    _traced_run("condsync", "lazy-wb-assoc", sink=sink)
    sink.close()
    loaded = load_jsonl(str(path))
    parks = [e for e in loaded if e.kind == "park"]
    assert parks, "condsync produced no park events"
    unmatched = {}
    for event in loaded:
        if event.kind == "park":
            unmatched[event.cpu] = unmatched.get(event.cpu, 0) + 1
        elif event.kind == "wake" and unmatched.get(event.cpu):
            unmatched[event.cpu] -= 1
    stuck = {cpu: n for cpu, n in unmatched.items() if n}
    assert not stuck, f"parks never woken: {stuck}"


def test_detach_stops_recording():
    program = make_program("counter", seed=1)
    config = build_config("lazy-wb-assoc", program)
    machine = Machine(config, policy=make_policy("det", seed=1))
    tracer = Tracer(machine)
    tracer.detach()
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    program.setup(machine, runtime, arena)
    machine.run(max_cycles=program.max_cycles)
    assert tracer.events == []
