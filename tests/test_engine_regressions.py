"""Regression tests for engine bugs found (and fixed) during bring-up.

Each test reconstructs the interleaving that exposed the bug; see
DESIGN.md §6b for the narrative.
"""


from repro.common.params import functional_config
from repro.runtime.core import RESUME, Runtime
from repro.sim.engine import Machine

SHARED = 0x12_0000
OTHER = 0x12_1000


def build(n_cpus=3):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    return machine, runtime


class TestDispatcherUnwindKeepsRecords:
    """Bug: a violation record being handled was dropped when its
    dispatcher got unwound by a nested rollback (lost wakeups in
    condsync).  The record must be re-delivered."""

    def test_record_redelivered_after_nested_unwind(self):
        machine, runtime = build(3)
        handled = []

        def level1_handler(t):
            handled.append("level1-handler")
            # Handler runs an open-nested transaction on contended data;
            # that transaction will be violated, and its rollback (to the
            # open level) unwinds... nothing below the outer record.
            def touch(t):
                value = yield t.load(OTHER)
                yield t.alu(120)
                yield t.store(OTHER, value + 1)

            yield from runtime.atomic_open(t, touch)

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, level1_handler)
                    yield t.alu(500)
                return value

            result = yield from runtime.atomic(t, body)
            return (result, len(rounds))

        def attacker_shared(t):
            yield t.alu(60)

            def body(t):
                yield t.store(SHARED, 7)

            yield from runtime.atomic(t, body)

        def attacker_other(t):
            # Keep OTHER hot so the handler's open transaction conflicts.
            for _ in range(12):
                def body(t):
                    value = yield t.load(OTHER)
                    yield t.alu(15)
                    yield t.store(OTHER, value + 1)

                yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker_shared, cpu_id=1)
        runtime.spawn(attacker_other, cpu_id=2)
        machine.run(max_cycles=10_000_000)
        result, rounds = machine.results()[0]
        # the victim eventually restarted (record not lost) and re-read
        assert rounds >= 2
        assert result == 7
        assert handled  # the handler really ran

    def test_violation_registers_saved_across_nested_dispatch(self):
        """Bug: nested dispatch clobbered xvcurrent/xvaddr of the record
        below; on unwind the wrong (empty) record was re-queued."""
        machine, runtime = build(3)
        captured = []

        def resume_handler(t):
            # Runs for the OTHER-line violation at the open level while
            # the SHARED-line record is still being handled below.
            captured.append(("inner", t.isa.xvaddr))
            yield t.alu()
            return RESUME

        def outer_handler(t):
            captured.append(("outer", t.isa.xvaddr))

            def touch(t):
                yield from runtime.register_violation_handler(
                    t, resume_handler)
                value = yield t.load(OTHER)
                yield t.alu(200)
                yield t.store(OTHER, value + 1)

            yield from runtime.atomic_open(t, touch)
            captured.append(("outer-after", t.isa.xvaddr))

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, outer_handler)
                    yield t.alu(400)
                return value

            yield from runtime.atomic(t, body)

        def attacker_shared(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        def attacker_other(t):
            yield t.alu(80)
            for _ in range(6):
                def body(t):
                    value = yield t.load(OTHER)
                    yield t.alu(30)
                    yield t.store(OTHER, value + 1)

                yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker_shared, cpu_id=1)
        runtime.spawn(attacker_other, cpu_id=2)
        machine.run(max_cycles=10_000_000)
        line = SHARED - SHARED % machine.config.line_size
        outer_records = [a for tag, a in captured if tag == "outer"]
        after_records = [a for tag, a in captured if tag == "outer-after"]
        assert outer_records and outer_records[0] == line
        # after the nested dispatch, the outer record's xvaddr is intact
        for addr in after_records:
            assert addr == line


class TestNoZeroTimeDispatchLoop:
    """Bug: pushing a dispatcher while a TxRollback was pending threw the
    rollback into the new dispatcher, which re-queued the record — a
    zero-cycle infinite loop.  Guard: never dispatch over a pending
    rollback; the simulation below must terminate promptly."""

    def test_rollback_with_queued_records_terminates(self):
        machine, runtime = build(3)

        def victim(t):
            def body(t):
                a = yield t.load(SHARED)
                b = yield t.load(OTHER)
                yield t.alu(300)
                return a + b

            result = yield from runtime.atomic(t, body)
            return result

        def attacker(addr):
            def program(t):
                yield t.alu(60)
                for _ in range(4):
                    def body(t):
                        value = yield t.load(addr)
                        yield t.alu(10)
                        yield t.store(addr, value + 1)

                    yield from runtime.atomic(t, body)
            return program

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker(SHARED), cpu_id=1)
        runtime.spawn(attacker(OTHER), cpu_id=2)
        # Tight step budget: a zero-time loop would blow through it.
        machine.run(max_cycles=5_000_000, max_steps=500_000)
        assert machine.results()[0] == 8


class TestOpResultSurvivesDispatch:
    """Bug: a dispatcher pushed between an op's execution and its result
    delivery consumed the pending send value (crash: "can't send non-None
    value to a just-started generator")."""

    def test_interrupted_load_result_redelivered_on_resume(self):
        machine, runtime = build(2)

        def ignore(t):
            yield t.alu()
            return RESUME

        def victim(t):
            def body(t):
                yield from runtime.register_violation_handler(t, ignore)
                values = []
                for i in range(40):
                    values.append((yield t.load(SHARED)))
                    yield t.alu(5)
                return values

            values = yield from runtime.atomic(t, body)
            return values

        def attacker(t):
            yield t.alu(40)
            for _ in range(5):
                def body(t):
                    value = yield t.load(SHARED)
                    yield t.store(SHARED, value + 1)

                yield from runtime.atomic(t, body)
                yield t.alu(25)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        values = machine.results()[0]
        assert len(values) == 40
        # resumed transaction: values move monotonically with commits
        assert values == sorted(values)


class TestEagerProgress:
    """Bugs: timestamp ties made same-age transactions kill each other
    forever; and a winning requester that proceeded immediately could
    read a victim's doomed in-place (undo-log) data."""

    def test_symmetric_contention_makes_progress(self):
        config = functional_config(
            n_cpus=4, detection="eager", versioning="undo_log")
        machine = Machine(config)
        runtime = Runtime(machine)

        def program(t):
            for _ in range(6):
                def body(t):
                    value = yield t.load(SHARED)
                    yield t.alu(20)
                    yield t.store(SHARED, value + 1)

                yield from runtime.atomic(t, body)

        for cpu in range(4):
            runtime.spawn(program, cpu_id=cpu)
        machine.run(max_cycles=5_000_000, max_steps=2_000_000)
        assert machine.memory.read(SHARED) == 24

    def test_winner_never_reads_doomed_data(self):
        """The winning requester must observe either the victim's
        pre-transaction or committed value — never its in-flight
        speculative store."""
        config = functional_config(
            n_cpus=2, detection="eager", versioning="undo_log")
        machine = Machine(config)
        runtime = Runtime(machine)
        observed = []

        def older(t):
            # Begins first => wins conflicts.  Reads late.
            def body(t):
                yield t.alu(120)
                value = yield t.load(SHARED)
                return value

            value = yield from runtime.atomic(t, body)
            observed.append(value)

        def younger(t):
            yield t.alu(10)

            def body(t):
                yield t.store(SHARED, 666)   # doomed speculative value
                yield t.alu(500)
                yield t.store(SHARED, 777)   # commits this eventually

            yield from runtime.atomic(t, body)

        runtime.spawn(older, cpu_id=0)
        runtime.spawn(younger, cpu_id=1)
        machine.run(max_cycles=5_000_000)
        assert observed[0] in (0, 777)   # never 666
