"""Unit tests for workload construction: determinism, work division,
scaling, and the invariant checkers themselves."""

import pytest

from repro.common.errors import ReproError
from repro.common.params import functional_config, paper_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.workloads import (
    IoLogWorkload,
    JbbWorkload,
    Mp3dKernel,
    SwimKernel,
)
from repro.workloads.kernels import ReductionKernel


def setup_only(workload, config):
    """Build the machine and run setup without simulating."""
    machine = Machine(config)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    workload.setup(machine, runtime, arena)
    return machine, workload


class TestKernelConstruction:
    def test_work_division_covers_total(self):
        workload = SwimKernel(n_threads=3)
        setup_only(workload, paper_config(n_cpus=3))
        assert sum(len(plan) for plan in workload._plans) \
            == workload._total_outer

    def test_scale_changes_total(self):
        full = SwimKernel(n_threads=2)
        setup_only(full, paper_config(n_cpus=2))
        half = SwimKernel(n_threads=2, scale=0.5)
        setup_only(half, paper_config(n_cpus=2))
        assert half._total_outer == full._total_outer // 2

    def test_plans_deterministic_per_seed(self):
        first = Mp3dKernel(n_threads=4, seed=9)
        setup_only(first, paper_config(n_cpus=4))
        second = Mp3dKernel(n_threads=4, seed=9)
        setup_only(second, paper_config(n_cpus=4))
        assert first._plans == second._plans
        third = Mp3dKernel(n_threads=4, seed=10)
        setup_only(third, paper_config(n_cpus=4))
        assert first._plans != third._plans

    def test_collision_cells_within_pool(self):
        workload = Mp3dKernel(n_threads=4)
        setup_only(workload, paper_config(n_cpus=4))
        for plan in workload._plans:
            for step in plan:
                assert all(0 <= c < workload.n_cells
                           for c in step["cells"])

    def test_grid_slices_line_disjoint(self):
        workload = SwimKernel(n_threads=4)
        machine, _ = setup_only(workload, paper_config(n_cpus=4))
        line = machine.config.line_size
        spans = []
        for grid in workload.grid:
            start = grid.base - grid.base % line
            end = grid.addr(grid.length - 1) // line * line
            spans.append((start, end))
        for i, (s1, e1) in enumerate(spans):
            for s2, e2 in spans[i + 1:]:
                assert e1 < s2 or e2 < s1   # no shared line

    def test_too_few_cpus_rejected(self):
        with pytest.raises(ReproError):
            SwimKernel(n_threads=8).run(paper_config(n_cpus=4))

    def test_verify_catches_corruption(self):
        workload = SwimKernel(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(n_cpus=2))
        # sabotage a reduction cell; the checker must notice
        machine.memory.write(workload.reductions.addr(0), 999)
        with pytest.raises(ReproError):
            workload.verify(machine)

    def test_collision_checker_catches_corruption(self):
        workload = Mp3dKernel(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(n_cpus=2))
        machine.memory.write(workload.cells.addr(0), 10_000)
        with pytest.raises(ReproError):
            workload.verify(machine)


class TestJbbConstruction:
    def test_prepopulation(self):
        workload = JbbWorkload(n_threads=2)
        machine, _ = setup_only(workload, paper_config(n_cpus=2))
        customers = workload.customers.items_host(machine.memory)
        stock = workload.stock.items_host(machine.memory)
        assert len(customers) == workload.N_CUSTOMERS
        assert all(v == 1000 for _, v in customers)
        assert len(stock) == workload.N_ITEMS

    def test_op_mix_roughly_matches(self):
        workload = JbbWorkload(n_threads=4, scale=4.0)   # 384 ops
        setup_only(workload, paper_config(n_cpus=4))
        ops = [plan["op"] for plans in workload._plans for plan in plans]
        new_orders = ops.count("new_order") / len(ops)
        assert 0.4 < new_orders < 0.6

    def test_expected_totals_consistent(self):
        workload = JbbWorkload(n_threads=2, scale=0.5)
        setup_only(workload, paper_config(n_cpus=2))
        planned = sum(1 for plans in workload._plans for plan in plans
                      if plan["op"] == "new_order")
        assert planned == workload._expected_orders

    def test_balance_checker_catches_corruption(self):
        workload = JbbWorkload(n_threads=2, scale=0.25)
        machine = workload.run(paper_config(n_cpus=2))
        row = workload.customers.items_host(machine.memory)[0]
        # sabotage one balance via a host write into the tree
        from repro.mem.hostexec import host

        host(workload.customers.insert, machine.memory, row[0],
             row[1] + 1)
        with pytest.raises(ReproError):
            workload.verify(machine)


class TestIoLogConstruction:
    def test_records_scale(self):
        full = IoLogWorkload(n_threads=2)
        half = IoLogWorkload(n_threads=2, scale=0.5)
        setup_only(full, paper_config(n_cpus=2))
        setup_only(half, paper_config(n_cpus=2))
        assert half._records == full._records // 2

    def test_log_checker_catches_duplicates(self):
        workload = IoLogWorkload(n_threads=2, scale=0.5)
        machine = workload.run(paper_config(n_cpus=2))
        workload.log.data.append(workload.log.data[0])   # sabotage
        with pytest.raises(ReproError):
            workload.verify(machine)


class TestKernelBaseClass:
    def test_custom_kernel_subclass(self):
        class Tiny(ReductionKernel):
            name = "tiny"
            outer_work = 4
            work_alu = 2
            n_reductions = 1
            n_collisions = 0
            total_outer = 4
            jitter = 1

        workload = Tiny(n_threads=2)
        machine = workload.run(functional_config(n_cpus=2))
        assert machine.memory.read(workload.reductions.addr(0)) == 4
        assert machine.stats.total("htm.commits_outer") >= 4
