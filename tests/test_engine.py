"""Unit tests: the simulation engine — scheduling, threads, determinism."""

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.common.params import functional_config, paper_config
from repro.sim import ops as O
from repro.sim.engine import Machine


def simple(ops_then_result):
    """Build a program yielding fixed ops."""
    def program(t):
        for op in ops_then_result[:-1]:
            yield op
        return ops_then_result[-1]
    return program


class TestThreadLifecycle:
    def test_program_result_collected(self):
        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(simple([O.Alu(3), "done"]))
        machine.run()
        assert machine.results()[0] == "done"

    def test_cpu_assignment_explicit_and_automatic(self):
        machine = Machine(functional_config(n_cpus=3))
        machine.add_thread(simple([O.Alu(1), "a"]), cpu_id=2)
        cpu = machine.add_thread(simple([O.Alu(1), "b"]))
        assert cpu.cpu_id == 0
        machine.run()
        assert machine.results()[2] == "a"
        assert machine.results()[0] == "b"

    def test_double_bind_rejected(self):
        machine = Machine(functional_config(n_cpus=1))
        machine.add_thread(simple([O.Alu(1), None]))
        with pytest.raises(SimulationError):
            machine.add_thread(simple([O.Alu(1), None]), cpu_id=0)

    def test_no_free_cpu_rejected(self):
        machine = Machine(functional_config(n_cpus=1))
        machine.add_thread(simple([O.Alu(1), None]))
        with pytest.raises(SimulationError):
            machine.add_thread(simple([O.Alu(1), None]))

    def test_non_generator_program_rejected(self):
        machine = Machine(functional_config(n_cpus=1))
        with pytest.raises(SimulationError):
            machine.add_thread(lambda t: 42)

    def test_non_op_yield_kills_thread(self):
        machine = Machine(functional_config(n_cpus=1))

        def bad(t):
            yield "not an op"

        machine.add_thread(bad)
        with pytest.raises(SimulationError):
            machine.run()

    def test_workload_exception_propagates(self):
        machine = Machine(functional_config(n_cpus=1))

        def boom(t):
            yield O.Alu(1)
            raise ValueError("workload bug")

        machine.add_thread(boom)
        with pytest.raises(ValueError):
            machine.run()

    def test_finishing_inside_transaction_is_error(self):
        machine = Machine(functional_config(n_cpus=1))

        def leaky(t):
            yield O.XBegin()

        machine.add_thread(leaky)
        with pytest.raises(SimulationError):
            machine.run()


class TestTimingAndDeterminism:
    def test_alu_advances_time(self):
        machine = Machine(functional_config(n_cpus=1))
        machine.add_thread(simple([O.Alu(100), None]))
        cycles = machine.run()
        assert cycles >= 100

    def test_instruction_count(self):
        machine = Machine(functional_config(n_cpus=1))
        machine.add_thread(simple([O.Alu(5), O.Fence(), None]))
        machine.run()
        assert machine.stats.get("cpu0.instructions") == 6

    def test_deterministic_across_runs(self):
        def build():
            machine = Machine(paper_config(n_cpus=4))
            shared = 0x1_0000

            def worker(t):
                from repro.common.errors import TxRollback

                yield O.XBegin()
                while True:
                    try:
                        value = yield O.Load(shared)
                        yield O.Alu(7)
                        yield O.Store(shared, value + 1)
                        yield O.XValidate()
                        yield O.XCommit()
                        break
                    except TxRollback:
                        continue

            for _ in range(4):
                machine.add_thread(worker)
            machine.run()
            return machine.now, machine.memory.read(shared)

        assert build() == build()

    def test_max_cycles_enforced(self):
        machine = Machine(functional_config(n_cpus=1))

        def forever(t):
            while True:
                yield O.Alu(10)

        machine.add_thread(forever)
        with pytest.raises(SimulationError):
            machine.run(max_cycles=1000)

    def test_tie_break_by_cpu_id(self):
        machine = Machine(functional_config(n_cpus=2))
        order = []

        def watcher(tag):
            def program(t):
                yield O.Alu(1)
                order.append(tag)
            return program

        machine.add_thread(watcher("cpu1"), cpu_id=1)
        machine.add_thread(watcher("cpu0"), cpu_id=0)
        machine.run()
        assert order == ["cpu0", "cpu1"]


class TestYieldAndWake:
    def test_yield_then_wake(self):
        machine = Machine(functional_config(n_cpus=2))

        def sleeper(t):
            yield O.YieldCpu()
            return "woke"

        def waker(t):
            yield O.Alu(50)
            yield O.Wake(0)

        machine.add_thread(sleeper, cpu_id=0)
        machine.add_thread(waker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "woke"

    def test_wake_token_prevents_lost_wakeup(self):
        machine = Machine(functional_config(n_cpus=2))

        def sleeper(t):
            yield O.Alu(100)       # wake arrives while still runnable
            yield O.YieldCpu()     # must not sleep
            return "survived"

        def waker(t):
            yield O.Alu(10)
            yield O.Wake(0)

        machine.add_thread(sleeper, cpu_id=0)
        machine.add_thread(waker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "survived"

    def test_deadlock_detected(self):
        machine = Machine(functional_config(n_cpus=2))

        def sleeper(t):
            yield O.YieldCpu()

        machine.add_thread(sleeper, cpu_id=0)
        machine.add_thread(sleeper, cpu_id=1)
        with pytest.raises(DeadlockError):
            machine.run()

    def test_daemon_does_not_block_exit(self):
        machine = Machine(functional_config(n_cpus=2))

        def daemon(t):
            while True:
                yield O.Alu(10)

        def worker(t):
            yield O.Alu(100)
            return "done"

        machine.add_thread(daemon, cpu_id=0, daemon=True)
        machine.add_thread(worker, cpu_id=1)
        machine.run()
        assert machine.results()[1] == "done"

    def test_wake_of_finished_thread_ignored(self):
        machine = Machine(functional_config(n_cpus=2))

        def quick(t):
            yield O.Alu(1)

        def waker(t):
            yield O.Alu(500)
            yield O.Wake(0)
            return "ok"

        machine.add_thread(quick, cpu_id=0)
        machine.add_thread(waker, cpu_id=1)
        machine.run()
        assert machine.results()[1] == "ok"
