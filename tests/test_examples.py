"""Every example must run clean end-to-end (they assert their own
correctness), so the documented entry points cannot rot."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath(
        "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[e.stem for e in EXAMPLES])
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}")
    assert "OK" in result.stdout or "nesting vs flattening" in result.stdout


def test_all_documented_examples_exist():
    readme = pathlib.Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    for example in EXAMPLES:
        assert f"examples/{example.name}" in text, (
            f"{example.name} missing from the README example list")
