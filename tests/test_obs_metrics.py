"""Unified metrics registry: labels, snapshots, deltas, ingestion.

The registry is the query layer over the repo's three statistics
sources (the machine's flat stats tree, the per-commit txstats records,
the profiler's cycle account); these tests pin the label algebra, the
snapshot/delta contract, and each ingestion adapter.
"""

import json

from repro.check.fuzz import build_config
from repro.check.programs import make_program
from repro.harness.txstats import TxStatsCollector
from repro.mem.layout import SharedArena
from repro.obs.metrics import (
    MetricsRegistry,
    account_metrics,
    machine_metrics,
    snapshot_delta,
    txstats_metrics,
)
from repro.obs.profiler import BUCKETS, CycleProfiler
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import make_policy


def _run_instrumented(program_name="counter", config_name="lazy-wb-assoc",
                      seed=1):
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    machine = Machine(config, policy=make_policy("det", seed=seed))
    profiler = CycleProfiler(machine)
    collector = TxStatsCollector(machine)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    program.setup(machine, runtime, arena)
    machine.run(max_cycles=program.max_cycles)
    program.verify(machine)
    collector.detach()
    profiler.detach()
    return machine, collector, profiler.account()


class TestCounter:
    def test_labels_are_independent_series(self):
        reg = MetricsRegistry()
        commits = reg.counter("htm.commits")
        commits.labels(cpu="0").add()
        commits.labels(cpu="0").add(2)
        commits.labels(cpu="1").add(5)
        assert commits.get(cpu="0") == 3
        assert commits.get(cpu="1") == 5
        assert commits.get(cpu="9") == 0
        assert commits.total() == 8

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        family = reg.counter("x")
        family.add(1, a="1", b="2")
        family.add(1, b="2", a="1")
        assert family.get(a="1", b="2") == 2
        assert family.snapshot() == {"{a=1,b=2}": 2}

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")
        assert reg.histogram("h") is reg.histogram("h")


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("sizes", buckets=(1, 4, 16))
        for value in (1, 2, 5, 100):
            hist.observe(value)
        snap = hist.snapshot()[""]
        assert snap["count"] == 4
        assert snap["sum"] == 108
        assert snap["max"] == 100
        assert snap["le_1"] == 1
        assert snap["le_4"] == 2
        assert snap["le_16"] == 3
        assert snap["le_inf"] == 4

    def test_labeled_series(self):
        reg = MetricsRegistry()
        hist = reg.histogram("dur", buckets=(10,))
        hist.observe(5, kind="outer")
        hist.observe(50, kind="open")
        snap = hist.snapshot()
        assert snap["{kind=outer}"]["count"] == 1
        assert snap["{kind=open}"]["max"] == 50


class TestSnapshotDelta:
    def test_delta_counts_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").add(3, cpu="0")
        before = reg.snapshot()
        reg.counter("a").add(4, cpu="0")
        reg.counter("b").add(1)
        after = reg.snapshot()
        delta = snapshot_delta(before, after)
        assert delta["counters"] == {"a": {"{cpu=0}": 4}, "b": {"": 1}}

    def test_empty_delta_for_identical_snapshots(self):
        reg = MetricsRegistry()
        reg.counter("a").add(3)
        snap = reg.snapshot()
        assert snapshot_delta(snap, snap) == {"counters": {}}

    def test_to_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").add(3, cpu="1")
        reg.histogram("h").observe(7)
        path = tmp_path / "metrics.json"
        text = reg.to_json(str(path))
        assert json.loads(text) == reg.snapshot()
        assert json.loads(path.read_text()) == reg.snapshot()


class TestIngestion:
    def test_machine_metrics_lifts_cpu_prefix_into_label(self):
        machine, _, _ = _run_instrumented()
        reg = machine_metrics(machine)
        snap = reg.snapshot()["counters"]
        # No dotted cpuN. names survive; they became labels.
        assert not any(name.startswith("cpu") for name in snap)
        per_cpu = [name for name, series in snap.items()
                   if any(label.startswith("{cpu=") for label in series)]
        assert per_cpu, "no per-CPU series ingested"
        # Global counters (no cpu prefix) keep their bare label.
        assert "cycles" in snap

    def test_machine_metrics_totals_match_stats_tree(self):
        machine, _, _ = _run_instrumented()
        reg = machine_metrics(machine)
        stats = machine.stats.as_dict()
        outer = sum(v for k, v in stats.items()
                    if k.endswith("htm.commits_outer"))
        assert reg.counter("htm.commits_outer").total() == outer

    def test_txstats_metrics_histograms_by_kind(self):
        _, collector, _ = _run_instrumented()
        assert collector.records
        reg = txstats_metrics(collector)
        snap = reg.snapshot()["histograms"]
        total = sum(series["count"]
                    for series in snap["tx.duration_cycles"].values())
        assert total == len(collector.records)
        kinds = {record.kind for record in collector.records}
        assert set(snap["tx.read_units"]) == {
            "{kind=%s}" % kind for kind in kinds}

    def test_account_metrics_preserves_conservation(self):
        _, _, account = _run_instrumented()
        reg = account_metrics(account)
        family = reg.counter("cycles.bucket")
        assert family.total() == account.budget
        for bucket in BUCKETS:
            total = sum(
                family.get(cpu=str(cpu), bucket=bucket)
                for cpu in range(account.n_cpus))
            assert total == account.totals[bucket]

    def test_sources_compose_into_one_registry(self):
        machine, collector, account = _run_instrumented()
        reg = MetricsRegistry()
        machine_metrics(machine, reg)
        txstats_metrics(collector, reg)
        account_metrics(account, reg)
        snap = reg.snapshot()
        assert "cycles.bucket" in snap["counters"]
        assert "tx.duration_cycles" in snap["histograms"]
        assert "cycles" in snap["counters"]
