"""Differential testing: naive full-scan vs reverse-index detectors.

The reverse-index conflict detectors (:mod:`repro.htm.conflict`) are an
optimization with a hard contract: *no observable difference* from the
original O(n_cpus × levels) scanning implementations, which are kept as
``NaiveLazyDetector``/``NaiveEagerDetector`` exactly for this test.  Each
case here runs one adversarial check program twice — once per detector
implementation (``config.naive_detection`` flips it) — and asserts that

* the violation streams are identical (victim, level mask, address, and
  source CPU, in posting order),
* the final shared-memory images are identical, and
* the cycle and step counts are identical,

across lazy and eager configurations, undo-log and write-buffer
versioning, deterministic and adversarial (PCT) schedules, and multiple
seeds.  Any divergence — even a reordering of two violation posts —
fails, because the violation order feeds victim handlers and therefore
the whole downstream schedule.
"""

import pytest

from repro.check.fuzz import CONFIGS
from repro.check.programs import PROGRAMS, make_program
from repro.common.errors import ReproError
from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import make_policy

#: Config cells that exercise both detector families (the timing configs
#: are cycle-heavy and add no detector coverage beyond these).
CONFIG_NAMES = ("lazy-wb-assoc", "eager-wb", "eager-undo")
POLICY_NAMES = ("det", "pct")
SEEDS = (1, 2)


def run_observed(program_name, config_name, policy_name, seed, naive):
    """Run one check program; return every observable of the run."""
    program = make_program(program_name, seed=seed)
    overrides = dict(CONFIGS[config_name])
    config = functional_config(
        n_cpus=max(4, program.min_cpus()), naive_detection=naive,
        **overrides)
    if not program.supports(config):
        return None
    machine = Machine(config, policy=make_policy(policy_name, seed=seed))
    violations = []
    deliver = machine.htm.detector._sink

    def recording_sink(violation):
        violations.append((violation.victim, violation.mask,
                           violation.addr, violation.source))
        deliver(violation)

    machine.htm.attach_violation_sink(recording_sink)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    error = None
    try:
        program.setup(machine, runtime, arena)
        machine.run(max_cycles=program.max_cycles)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return {
        "violations": violations,
        "memory": machine.memory.snapshot(),
        "cycles": machine.stats.get("cycles"),
        "steps": machine.stats.get("engine.steps"),
        "error": error,
    }


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_naive_and_indexed_detectors_are_observably_identical(
        program_name, config_name):
    compared = 0
    for policy_name in POLICY_NAMES:
        for seed in SEEDS:
            indexed = run_observed(
                program_name, config_name, policy_name, seed, naive=False)
            if indexed is None:
                continue
            naive = run_observed(
                program_name, config_name, policy_name, seed, naive=True)
            case = f"{program_name}:{config_name}:{policy_name}:{seed}"
            assert naive["violations"] == indexed["violations"], (
                f"{case}: violation streams diverge")
            assert naive["memory"] == indexed["memory"], (
                f"{case}: final memory images diverge")
            assert naive["cycles"] == indexed["cycles"], (
                f"{case}: cycle counts diverge")
            assert naive["steps"] == indexed["steps"], (
                f"{case}: step counts diverge")
            assert naive["error"] == indexed["error"], (
                f"{case}: run outcomes diverge")
            compared += 1
    if compared == 0:
        pytest.skip(f"{program_name} does not support {config_name}")


def test_naive_detection_flag_selects_the_reference_classes():
    from repro.htm.conflict import (
        EagerDetector,
        LazyDetector,
        NaiveEagerDetector,
        NaiveLazyDetector,
    )

    def detector_for(**overrides):
        machine = Machine(functional_config(n_cpus=2, **overrides))
        return machine.htm.detector

    assert isinstance(detector_for(), LazyDetector)
    assert isinstance(detector_for(naive_detection=True), NaiveLazyDetector)
    assert isinstance(detector_for(detection="eager"), EagerDetector)
    assert isinstance(
        detector_for(detection="eager", naive_detection=True),
        NaiveEagerDetector)
