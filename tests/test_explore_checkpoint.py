"""The explorer's prefix checkpoint cache (repro.check.explore).

Checkpointing is a pure optimisation: every node must produce the exact
verdict it would have produced when replayed from cycle 0.  These tests
enforce that differentially — same campaign with the cache on and off,
byte-identical reports — and under adversarial cache pressure (a budget
that can hold roughly one checkpoint, so every deposit evicts).

The snapshot layer itself (capture → restore → resume, bit-for-bit) is
pinned in tests/test_snapshot.py; this file is about the *cache policy*
staying invisible to exploration semantics.
"""

import pytest

import repro.check.explore as explore_mod
from repro.check.explore import CheckpointCache, explore

CONFIG = "lazy-wb-assoc"
PROGRAMS = ("litmus-sb", "litmus-mp", "litmus-inc")


def _fingerprint(report):
    """Everything a campaign can observably produce, order-insensitive
    only where the explorer itself guarantees order (verdict list order
    is part of the contract, so it is kept)."""
    return (
        report.program, report.config, report.fault, report.seed,
        report.skipped, report.explored, report.pruned,
        report.truncated, report.generations,
        [(v.name, v.failed, v.signature) for v in report.verdicts],
    )


def _fresh_cache(**kwargs):
    """Install a fresh worker-local cache; returns it for inspection."""
    cache = CheckpointCache(**kwargs)
    explore_mod._CHECKPOINTS = cache
    explore_mod._CONTEXTS.clear()
    return cache


@pytest.fixture(autouse=True)
def _restore_cache():
    yield
    _fresh_cache()


@pytest.mark.parametrize("program", PROGRAMS)
def test_checkpoint_matches_stateless(program):
    stateless = explore(program, CONFIG, preemption_bound=2,
                        checkpoint=False)
    _fresh_cache()
    checkpointed = explore(program, CONFIG, preemption_bound=2,
                           checkpoint=True)
    assert _fingerprint(checkpointed) == _fingerprint(stateless)
    assert checkpointed.checkpoint
    assert not stateless.checkpoint


def test_checkpoint_cache_actually_used():
    cache = _fresh_cache()
    report = explore("litmus-inc", CONFIG, preemption_bound=2,
                     checkpoint=True)
    stats = report.checkpoint_stats
    assert stats is not None
    assert stats["deposits"] > 0
    assert stats["hits"] > 0
    # A fallback means a restore failed and the node silently replayed
    # from cycle 0 — allowed for safety, but it must never happen on
    # the supported litmus configs.
    assert stats["fallbacks"] == 0
    assert cache.stats["hits"] == stats["hits"]


def test_eviction_pressure_keeps_verdicts_identical():
    """A budget that fits roughly one checkpoint forces an eviction on
    nearly every deposit; verdicts must not notice."""
    stateless = explore("litmus-sb", CONFIG, preemption_bound=2,
                        checkpoint=False)
    _fresh_cache(budget=8 * 1024)
    squeezed = explore("litmus-sb", CONFIG, preemption_bound=2,
                       checkpoint=True)
    assert _fingerprint(squeezed) == _fingerprint(stateless)
    stats = squeezed.checkpoint_stats
    assert stats["evictions"] > 0
    assert stats["fallbacks"] == 0


def test_checkpoint_matches_stateless_parallel():
    """Sharded exploration with worker-local caches and checkpoint
    affinity still reproduces the stateless campaign exactly."""
    kwargs = dict(preemption_bound=2, max_schedules=2000)
    stateless = explore("litmus-mp", CONFIG, jobs=1, checkpoint=False,
                        **kwargs)
    checkpointed = explore("litmus-mp", CONFIG, jobs=3, checkpoint=True,
                           **kwargs)
    assert _fingerprint(checkpointed)[:-1] == _fingerprint(stateless)[:-1]
    assert [(v.name, v.failed, v.signature)
            for v in checkpointed.verdicts] \
        == [(v.name, v.failed, v.signature) for v in stateless.verdicts]


def test_stateless_mode_deposits_nothing():
    cache = _fresh_cache()
    report = explore("litmus-sb", CONFIG, preemption_bound=1,
                     checkpoint=False)
    assert report.checkpoint_stats is None
    assert cache.stats["deposits"] == 0
    assert not cache._entries
