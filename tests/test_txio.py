"""Transactional I/O library tests (paper Sections 5 and 7.2)."""


from repro.common.errors import TxAborted
from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.runtime.txio import SimFile, TxIo
from repro.sim.engine import Machine

SHARED = 0x9_0000


def build(n_cpus=2):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    io = TxIo(runtime)
    return machine, runtime, arena, io


class TestOutput:
    def test_write_deferred_to_commit(self):
        machine, runtime, arena, io = build(1)
        log = SimFile(arena, "log")
        probe = []

        def body(t):
            yield from io.write(t, log, [1, 2])
            probe.append(list(log.data))   # still buffered

        def program(t):
            yield from runtime.atomic(t, body)
            probe.append(list(log.data))   # flushed at commit

        runtime.spawn(program)
        machine.run()
        assert probe == [[], [1, 2]]
        assert machine.memory.read(log.size_addr) == 2

    def test_multiple_writes_one_flush(self):
        machine, runtime, arena, io = build(1)
        log = SimFile(arena, "log")

        def body(t):
            yield from io.write(t, log, [1])
            yield from io.write(t, log, [2, 3])

        def program(t):
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        assert log.data == [1, 2, 3]
        assert machine.stats.total("txio.flushes") == 1

    def test_rollback_discards_buffer(self):
        machine, runtime, arena, io = build(2)
        log = SimFile(arena, "log")

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                yield from io.write(t, log, [100 + len(rounds)])
                if len(rounds) == 1:
                    yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        # only the successful (second) attempt's record reached the file
        assert log.data == [102]

    def test_abort_discards_buffer(self):
        machine, runtime, arena, io = build(1)
        log = SimFile(arena, "log")

        def body(t):
            yield from io.write(t, log, [7])
            yield from runtime.abort(t, code="no")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except TxAborted:
                return "aborted"

        runtime.spawn(program)
        machine.run()
        assert log.data == []
        assert machine.results()[0] == "aborted"

    def test_write_outside_transaction_immediate(self):
        machine, runtime, arena, io = build(1)
        log = SimFile(arena, "log")

        def program(t):
            yield from io.write(t, log, [5])
            return list(log.data)

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == [5]

    def test_nested_write_flushes_at_outer_commit(self):
        machine, runtime, arena, io = build(1)
        log = SimFile(arena, "log")
        probe = []

        def inner(t):
            yield from io.write(t, log, [1])

        def outer(t):
            yield from runtime.atomic(t, inner)
            probe.append(list(log.data))     # inner committed: still buffered

        def program(t):
            yield from runtime.atomic(t, outer)
            probe.append(list(log.data))

        runtime.spawn(program)
        machine.run()
        assert probe == [[], [1]]

    def test_interleaved_writers_no_loss(self):
        machine, runtime, arena, io = build(4)
        log = SimFile(arena, "log")

        def writer(t, tag):
            for i in range(4):
                def body(t, i=i):
                    value = yield t.load(SHARED)
                    yield t.alu(25)
                    yield t.store(SHARED, value + 1)
                    yield from io.write(t, log, [tag * 10 + i])
                yield from runtime.atomic(t, body)

        for tag in range(4):
            runtime.spawn(writer, tag, cpu_id=tag)
        machine.run()
        expected = sorted(tag * 10 + i for tag in range(4) for i in range(4))
        assert sorted(log.data) == expected
        assert machine.memory.read(SHARED) == 16


class TestInput:
    def test_sequential_reads_advance_position(self):
        machine, runtime, arena, io = build(1)
        source = SimFile(arena, "in", initial=list(range(10)))

        def program(t):
            got = []
            for _ in range(3):
                def body(t):
                    items = yield from io.read(t, source, 2)
                    return items
                got.extend((yield from runtime.atomic(t, body)))
            return got

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == [0, 1, 2, 3, 4, 5]
        assert machine.memory.read(source.pos_addr) == 6

    def test_violation_compensates_position(self):
        """A violated transaction's early read is undone: the file
        position is restored so no input is lost (paper §5)."""
        machine, runtime, arena, io = build(2)
        source = SimFile(arena, "in", initial=list(range(10)))

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                items = yield from io.read(t, source, 2)
                yield t.load(SHARED)
                if len(rounds) == 1:
                    yield t.alu(800)
                return items

            items = yield from runtime.atomic(t, body)
            return items

        def attacker(t):
            yield t.alu(400)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        # the retry re-read the same records: nothing skipped
        assert machine.results()[0] == [0, 1]
        assert machine.memory.read(source.pos_addr) == 2
        assert machine.stats.total("txio.compensations") >= 1

    def test_abort_compensates_position(self):
        machine, runtime, arena, io = build(1)
        source = SimFile(arena, "in", initial=list(range(10)))

        def body(t):
            yield from io.read(t, source, 3)
            yield from runtime.abort(t, code="nah")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except TxAborted:
                pass
            return (yield t.imld(source.pos_addr))

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == 0

    def test_two_readers_partition_stream(self):
        """Closed-mode reads: concurrent consumers of one stream get
        exactly-once delivery (the position is user-transaction state)."""
        machine, runtime, arena, io = build(2)
        source = SimFile(arena, "in", initial=list(range(12)))

        def reader(t):
            got = []
            for _ in range(3):
                def body(t):
                    items = yield from io.read(t, source, 2,
                                               open_nested=False)
                    yield t.alu(30)
                    return items
                got.extend((yield from runtime.atomic(t, body)))
            return got

        runtime.spawn(reader, cpu_id=0)
        runtime.spawn(reader, cpu_id=1)
        machine.run()
        results = machine.results()
        combined = sorted(results[0] + results[1])
        assert combined == list(range(12))   # exactly-once delivery
