"""Unit tests: write-buffer and undo-log version management."""

import pytest

from repro.common.params import functional_config
from repro.common.stats import Stats
from repro.htm.versioning import (
    UndoLogVersioning,
    WriteBufferVersioning,
    make_version_manager,
)
from repro.memsys.memory import MemoryImage

A = 0x100
B = 0x200
C = 0x300


@pytest.fixture(params=["write_buffer", "undo_log"])
def vm(request):
    config = functional_config()
    memory = MemoryImage()
    cls = (WriteBufferVersioning if request.param == "write_buffer"
           else UndoLogVersioning)
    manager = cls(config, memory, Stats().scope("v"))
    manager.memory = memory
    return manager


class TestCommonSemantics:
    """Both schemes must agree on everything visible to software."""

    def test_load_sees_own_store(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 5)
        assert vm.tx_load(1, A) == 5

    def test_rollback_restores(self, vm):
        vm.memory.write(A, 1)
        vm.begin_level(1)
        vm.tx_store(1, A, 2)
        vm.rollback(1)
        assert vm.memory.read(A) == 1

    def test_outer_commit_publishes(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 9)
        written = vm.commit_to_memory(1)
        assert vm.memory.read(A) == 9
        assert A in written

    def test_closed_commit_then_outer(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 1)
        vm.begin_level(2)
        vm.tx_store(2, B, 2)
        assert vm.tx_load(2, A) == 1      # child sees ancestor state
        vm.commit_closed(2)
        assert vm.tx_load(1, B) == 2      # parent inherits child state
        vm.commit_to_memory(1)
        assert vm.memory.read(A) == 1
        assert vm.memory.read(B) == 2

    def test_closed_commit_then_parent_rollback(self, vm):
        vm.memory.write(B, 100)
        vm.begin_level(1)
        vm.begin_level(2)
        vm.tx_store(2, B, 200)
        vm.commit_closed(2)
        vm.rollback(1)
        assert vm.memory.read(B) == 100

    def test_nested_rollback_keeps_parent(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 1)
        vm.begin_level(2)
        vm.tx_store(2, A, 2)
        vm.tx_store(2, B, 3)
        vm.rollback(2)
        assert vm.tx_load(1, A) == 1
        vm.commit_to_memory(1)
        assert vm.memory.read(A) == 1
        assert vm.memory.read(B) == 0

    def test_open_commit_publishes_under_active_parent(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 1)
        vm.begin_level(2)
        vm.tx_store(2, B, 2)
        vm.commit_to_memory(2)
        assert vm.memory.read(B) == 2     # visible now
        if isinstance(vm, WriteBufferVersioning):
            # A write-buffer keeps the parent's store private; an
            # undo-log writes in place (isolation is the eager conflict
            # detector's job, not the version manager's).
            assert vm.memory.read(A) == 0
        vm.rollback(1)
        assert vm.memory.read(A) == 0     # parent rolled back either way
        assert vm.memory.read(B) == 2     # open commit survives

    def test_open_commit_overwrite_parent_write(self, vm):
        """Paper §6.3: the parent's version (and undo record) must be
        updated so a later parent rollback does not resurrect a
        pre-open-commit value."""
        vm.memory.write(A, 1)
        vm.begin_level(1)
        vm.tx_store(1, A, 10)
        vm.begin_level(2)
        vm.tx_store(2, A, 20)
        vm.commit_to_memory(2)            # open commit: A = 20 permanent
        assert vm.tx_load(1, A) == 20     # parent updated
        vm.rollback(1)
        assert vm.memory.read(A) == 20    # not 1, not 10

    def test_open_commit_overwrite_then_parent_commit(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 10)
        vm.begin_level(2)
        vm.tx_store(2, A, 20)
        vm.commit_to_memory(2)
        vm.tx_store(1, A, 30)             # parent overwrites again
        vm.commit_to_memory(1)
        assert vm.memory.read(A) == 30

    def test_grandparent_rollback_after_open_commit(self, vm):
        vm.memory.write(A, 1)
        vm.begin_level(1)
        vm.tx_store(1, A, 2)
        vm.begin_level(2)
        vm.tx_store(2, A, 3)
        vm.begin_level(3)
        vm.tx_store(3, A, 4)
        vm.commit_to_memory(3)            # open commit at level 3
        vm.rollback(1)                    # both ancestors roll back
        assert vm.memory.read(A) == 4

    def test_written_words(self, vm):
        vm.begin_level(1)
        vm.tx_store(1, A, 1)
        vm.tx_store(1, B, 2)
        assert vm.written_words(1) == {A, B}


class TestImmediateStores:
    def test_imst_rollback_filo(self, vm):
        vm.memory.write(A, 1)
        vm.begin_level(1)
        vm.im_store(1, A, 2)
        vm.im_store(1, B, 3)
        vm.rollback(1)
        assert vm.memory.read(A) == 1
        assert vm.memory.read(B) == 0

    def test_imstid_no_undo(self, vm):
        vm.begin_level(1)
        vm.im_store_id(A, 7)
        vm.rollback(1)
        assert vm.memory.read(A) == 7

    def test_imst_one_undo_per_word_per_level(self, vm):
        vm.memory.write(A, 1)
        vm.begin_level(1)
        vm.im_store(1, A, 2)
        vm.im_store(1, A, 3)              # second store, same word
        vm.rollback(1)
        assert vm.memory.read(A) == 1     # restores the oldest value

    def test_imst_nested_merge(self, vm):
        vm.memory.write(A, 1)
        vm.begin_level(1)
        vm.begin_level(2)
        vm.im_store(2, A, 2)
        vm.commit_closed(2)
        vm.rollback(1)                    # parent rollback undoes child imst
        assert vm.memory.read(A) == 1

    def test_imst_open_publish(self, vm):
        vm.begin_level(1)
        vm.begin_level(2)
        vm.im_store(2, A, 2)
        vm.commit_to_memory(2)            # open commit: imst permanent
        vm.rollback(1)
        assert vm.memory.read(A) == 2

    def test_im_load_reads_memory(self, vm):
        vm.memory.write(A, 4)
        assert vm.im_load(A) == 4


class TestUndoLogSpecific:
    def make(self):
        config = functional_config(versioning="undo_log", detection="eager")
        memory = MemoryImage()
        manager = UndoLogVersioning(config, memory, Stats().scope("v"))
        return manager, memory

    def test_stores_hit_memory_in_place(self):
        manager, memory = self.make()
        manager.begin_level(1)
        manager.tx_store(1, A, 5)
        assert memory.read(A) == 5        # in place, pre-commit

    def test_log_length_bounded_by_distinct_words(self):
        manager, memory = self.make()
        manager.begin_level(1)
        for value in range(10):
            manager.tx_store(1, A, value)
        assert manager.log_length == 1

    def test_filo_restore_order_across_merge(self):
        manager, memory = self.make()
        memory.write(A, 1)
        manager.begin_level(1)
        manager.tx_store(1, A, 2)
        manager.begin_level(2)
        manager.tx_store(2, A, 3)
        manager.commit_closed(2)
        manager.rollback(1)
        assert memory.read(A) == 1        # oldest value wins

    def test_ancestor_fixup_search_counted(self):
        manager, memory = self.make()
        stats_before = manager._stats.get("undolog.ancestor_fixups")
        manager.begin_level(1)
        manager.tx_store(1, A, 10)
        manager.begin_level(2)
        manager.tx_store(2, A, 20)
        manager.commit_to_memory(2)
        assert manager._stats.get("undolog.ancestor_fixups") \
            == stats_before + 1


class TestFactory:
    def test_factory_picks_scheme(self):
        memory = MemoryImage()
        stats = Stats().scope("v")
        wb = make_version_manager(functional_config(), memory, stats)
        assert isinstance(wb, WriteBufferVersioning)
        ul = make_version_manager(
            functional_config(versioning="undo_log", detection="eager"),
            memory, stats)
        assert isinstance(ul, UndoLogVersioning)
