"""Unit coverage for the harness formatters (harness/report.py) and the
machine-readable exporters (harness/export.py)."""

import csv
import io
import json
import types


from repro.harness.export import (
    comparison_to_dict,
    dump_json,
    profile_to_dict,
    rows_to_csv,
    scaling_to_dicts,
)
from repro.harness.report import (
    format_bar_chart,
    format_figure5,
    format_scaling,
    format_table,
)


def _ns(**kwargs):
    return types.SimpleNamespace(**kwargs)


# ----------------------------------------------------------------------
# report.py
# ----------------------------------------------------------------------


def test_format_table_aligns_columns():
    text = format_table(["name", "cycles"],
                        [("short", 12), ("a-longer-name", 3456)],
                        title="Totals")
    lines = text.splitlines()
    assert lines[0] == "Totals"
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}
    # Every data row is padded to the same width as the header rule.
    assert len(lines[2]) == len(lines[1].rstrip()) or "cycles" in lines[1]
    assert "a-longer-name" in lines[4]
    # Cells are stringified, so numbers survive.
    assert "3456" in text


def test_format_table_without_title():
    text = format_table(["a"], [("x",)])
    assert text.splitlines()[0] == "a"


def test_format_figure5_rows_and_title():
    comparisons = [
        _ns(name="mp3d", improvement=1.23, total_speedup=4.5,
            flat_speedup=3.7),
        _ns(name="barnes", improvement=1.05, total_speedup=5.1,
            flat_speedup=4.9),
    ]
    text = format_figure5(comparisons)
    assert "Figure 5" in text
    assert "mp3d" in text and "barnes" in text
    assert "1.23x" in text
    assert "4.50" in text and "3.70" in text


def test_format_scaling_normalizes_to_first_point():
    points = [
        _ns(n=1, work_items=10, cycles=1000, throughput=0.01),
        _ns(n=4, work_items=40, cycles=1000, throughput=0.04),
    ]
    text = format_scaling(points, "I/O scaling", item_label="ops")
    assert "I/O scaling" in text
    assert "ops/kcycle" in text
    assert "1.00x" in text  # the base point vs itself
    assert "4.00x" in text  # perfect scaling at 4 threads


def test_format_bar_chart_scales_to_peak():
    text = format_bar_chart([("a", 2.0), ("b", 1.0)], width=10,
                            title="bars")
    lines = text.splitlines()
    assert lines[0] == "bars"
    bar_a = lines[1].split("|")[1].strip().split()[0]
    bar_b = lines[2].split("|")[1].strip().split()[0]
    assert len(bar_a) == 10  # peak fills the width
    assert len(bar_b) == 5
    assert "2.00" in lines[1] and "1.00" in lines[2]


def test_format_bar_chart_zero_values_do_not_divide_by_zero():
    text = format_bar_chart([("empty", 0.0)])
    # Every bar renders at least one glyph, even at zero.
    assert "#" in text


# ----------------------------------------------------------------------
# export.py
# ----------------------------------------------------------------------


def test_comparison_to_dict_round_trips_fields():
    comparison = _ns(name="mp3d", seq_cycles=100, flat_cycles=60,
                     nested_cycles=50, improvement=1.2,
                     total_speedup=2.0, flat_speedup=1.67)
    data = comparison_to_dict(comparison)
    assert data == {
        "name": "mp3d", "seq_cycles": 100, "flat_cycles": 60,
        "nested_cycles": 50, "improvement": 1.2, "total_speedup": 2.0,
        "flat_speedup": 1.67,
    }


def test_scaling_to_dicts_handles_both_point_shapes():
    scaling_point = _ns(n=2, cycles=500, work_items=20, throughput=0.04)
    speedup_point = _ns(n_cpus=8, cycles=300, speedup=3.3)
    out = scaling_to_dicts([scaling_point, speedup_point])
    assert out[0] == {"n": 2, "cycles": 500, "work_items": 20,
                      "throughput": 0.04}
    assert out[1] == {"n": 8, "cycles": 300, "speedup": 3.3}


def test_profile_to_dict_stringifies_level_keys():
    profile = _ns(name="probe", cycles=42,
                  rollbacks_by_level={1: 3, 2: 0})
    data = profile_to_dict(profile)
    assert data["name"] == "probe"
    assert data["rollbacks_by_level"] == {"1": 3, "2": 0}
    # JSON-safe end to end.
    json.loads(dump_json(data))


def test_dump_json_writes_file(tmp_path):
    path = tmp_path / "out.json"
    text = dump_json({"b": 1, "a": 2}, path=str(path))
    on_disk = path.read_text()
    assert on_disk == text + "\n"
    # sort_keys: stable output for diffing.
    assert text.index('"a"') < text.index('"b"')


def test_rows_to_csv_round_trips(tmp_path):
    path = tmp_path / "out.csv"
    text = rows_to_csv(["n", "cycles"], [(1, 100), (2, "with,comma")],
                       path=str(path))
    # csv emits \r\n line endings; compare bytes to dodge universal
    # newline translation.
    assert path.read_bytes().decode() == text
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["n", "cycles"]
    assert rows[2] == ["2", "with,comma"]


def test_dump_json_file_round_trips_nested_payload(tmp_path):
    payload = {"runs": [{"name": "a", "cells": [1, 2]},
                        {"name": "b", "cells": []}],
               "meta": {"seeds": 3, "ok": True, "note": None}}
    path = tmp_path / "nested.json"
    dump_json(payload, path=str(path))
    assert json.loads(path.read_text()) == payload


def test_rows_to_csv_survives_quotes_and_newlines(tmp_path):
    path = tmp_path / "tricky.csv"
    rows = [("he said \"hi\"", "two\nlines"), ("", "trailing,comma,")]
    rows_to_csv(["a", "b"], rows, path=str(path))
    with open(path, newline="") as handle:
        parsed = list(csv.reader(handle))
    assert parsed[0] == ["a", "b"]
    assert [tuple(r) for r in parsed[1:]] == rows
