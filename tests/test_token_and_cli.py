"""Tests: the legacy commit token (the simpler §6.1 implementation kept
for reference) and the command-line interface."""

import pytest

from repro.common.errors import IsaError
from repro.common.stats import Stats
from repro.htm.token import CommitToken


class TestCommitToken:
    def test_acquire_release(self):
        token = CommitToken(Stats())
        assert token.try_acquire(0)
        assert token.owner == 0
        token.release(0)
        assert token.owner is None

    def test_exclusive_between_cpus(self):
        token = CommitToken(Stats())
        assert token.try_acquire(0)
        assert not token.try_acquire(1)
        assert token.held_by_other(1)
        assert not token.held_by_other(0)
        token.release(0)
        assert token.try_acquire(1)

    def test_reentrant_per_cpu(self):
        token = CommitToken(Stats())
        assert token.try_acquire(0)
        assert token.try_acquire(0)       # re-enter (commit handlers)
        token.release(0)
        assert token.owner == 0           # still held once
        token.release(0)
        assert token.owner is None

    def test_wrong_owner_release_rejected(self):
        token = CommitToken(Stats())
        token.try_acquire(0)
        with pytest.raises(IsaError):
            token.release(1)

    def test_force_release_all(self):
        token = CommitToken(Stats())
        token.try_acquire(0)
        token.try_acquire(0)
        token.force_release_all(0)
        assert token.owner is None
        token.force_release_all(1)        # no-op for non-owner


class TestCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_overheads_command(self, capsys):
        assert self.run_cli(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "xbegin" in out and "6" in out

    def test_isa_command(self, capsys):
        assert self.run_cli(["isa"]) == 0
        out = capsys.readouterr().out
        assert "xvcurrent" in out
        assert "xrwsetclear" in out

    def test_profile_command(self, capsys):
        code = self.run_cli(
            ["profile", "swim", "--cpus", "2", "--scale", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "swim [nested]" in out and "swim [flat]" in out

    def test_io_command_small(self, capsys):
        code = self.run_cli(["io", "--max-threads", "2", "--scale", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "records" in out

    def test_condsync_command_small(self, capsys):
        code = self.run_cli(["condsync", "--max-pairs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "items" in out

    def test_figure5_small(self, capsys):
        code = self.run_cli(["figure5", "--cpus", "2", "--scale", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mp3d" in out and "SPECjbb2000-open" in out

    def test_trace_command(self, capsys):
        code = self.run_cli(
            ["trace", "swim", "--cpus", "2", "--scale", "0.25",
             "--kinds", "commit", "--limit", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "commit" in out and "events shown" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            self.run_cli(["profile", "minesweeper"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            self.run_cli([])

    def test_all_command_small(self, capsys):
        code = self.run_cli(
            ["all", "--cpus", "2", "--scale", "0.25",
             "--max-threads", "2", "--max-pairs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "instructions per transactional event",
                       "mp3d", "records", "items"):
            assert marker in out, marker
