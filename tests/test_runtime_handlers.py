"""Runtime tests: handler registration/dispatch, ordering, TCB stacks,
the resume path, and the published instruction overheads."""

import pytest

from repro.common.errors import IsaError, TxAborted
from repro.common.params import functional_config
from repro.runtime import overheads
from repro.runtime.core import RESUME, Runtime
from repro.sim.engine import Machine

SHARED = 0x8_0000
OTHER = 0x8_1000


def build(n_cpus=2, **over):
    machine = Machine(functional_config(n_cpus=n_cpus, **over))
    runtime = Runtime(machine)
    return machine, runtime


class TestCommitHandlers:
    def test_run_in_registration_order(self):
        machine, runtime = build(1)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def body(t):
            yield from runtime.register_commit_handler(t, handler, "a")
            yield from runtime.register_commit_handler(t, handler, "b")
            yield from runtime.register_commit_handler(t, handler, "c")

        def program(t):
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        assert log == ["a", "b", "c"]

    def test_run_between_validate_and_commit(self):
        """A commit handler observes speculative state but its effects via
        open nesting are immediately permanent."""
        machine, runtime = build(1)
        seen = []

        def handler(t):
            seen.append((yield t.load(SHARED)))   # speculative value
            yield t.alu()

        def body(t):
            yield t.store(SHARED, 42)
            yield from runtime.register_commit_handler(t, handler)

        def program(t):
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        assert seen == [42]

    def test_discarded_on_rollback(self):
        machine, runtime = build(2)
        ran = []

        def handler(t):
            ran.append("commit-handler")
            yield t.alu()

        def victim(t):
            attempts = []

            def body(t):
                attempts.append(1)
                value = yield t.load(SHARED)
                if len(attempts) == 1:
                    yield from runtime.register_commit_handler(t, handler)
                    yield t.alu(300)   # lose to the attacker
                return value

            yield from runtime.atomic(t, body)
            return len(attempts)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 5)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == 2       # one retry
        assert ran == []                        # first registration dropped

    def test_not_run_by_closed_commit_but_by_outer(self):
        machine, runtime = build(1)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def inner(t):
            yield from runtime.register_commit_handler(t, handler, "inner")

        def outer(t):
            yield from runtime.atomic(t, inner)   # closed nested
            log.append("after-inner-commit")
            yield from runtime.register_commit_handler(t, handler, "outer")

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        # the inner handler is deferred to the outer commit (merge, §4.6)
        assert log == ["after-inner-commit", "inner", "outer"]

    def test_open_commit_runs_own_handlers_immediately(self):
        machine, runtime = build(1)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def open_body(t):
            yield from runtime.register_commit_handler(t, handler, "open")

        def outer(t):
            yield from runtime.atomic_open(t, open_body)
            log.append("after-open-commit")

        def program(t):
            yield from runtime.atomic(t, outer)

        runtime.spawn(program)
        machine.run()
        assert log == ["open", "after-open-commit"]

    def test_handler_args_travel_through_simulated_stack(self):
        machine, runtime = build(1)
        got = []

        def handler(t, a, b, c):
            got.append((a, b, c))
            yield t.alu()

        def body(t):
            yield from runtime.register_commit_handler(t, handler, 1, 2, 3)

        def program(t):
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        assert got == [(1, 2, 3)]

    def test_commit_handler_registering_another(self):
        machine, runtime = build(1)
        log = []

        def second(t):
            log.append("second")
            yield t.alu()

        def first(t):
            log.append("first")
            yield from runtime.register_commit_handler(t, second)

        def body(t):
            yield from runtime.register_commit_handler(t, first)

        def program(t):
            yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        assert log == ["first", "second"]


class TestViolationHandlers:
    def test_reverse_order_and_compensation(self):
        machine, runtime = build(2)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, handler, "first-registered")
                    yield from runtime.register_violation_handler(
                        t, handler, "second-registered")
                    yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert log == ["second-registered", "first-registered"]

    def test_resume_ignores_violation(self):
        """A handler returning RESUME continues the transaction (§4.3)."""
        machine, runtime = build(2)

        def ignore(t):
            yield t.alu()
            return RESUME

        def victim(t):
            def body(t):
                yield from runtime.register_violation_handler(t, ignore)
                before = yield t.load(SHARED)
                yield t.alu(300)
                after = yield t.load(SHARED)
                return (before, after)

            result = yield from runtime.atomic(t, body)
            return result

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 9)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        # Never restarted: the first read keeps its pre-conflict value,
        # while the later read sees the committed update — the mixed
        # snapshot that makes "ignore violation" a sharp tool (§4.3).
        assert machine.results()[0] == (0, 9)
        assert machine.stats.get("cpu0.htm.handler_resumes") >= 1

    def test_xvaddr_visible_to_handler(self):
        machine, runtime = build(2)
        captured = []

        def handler(t):
            captured.append(t.isa.xvaddr)
            yield t.alu()

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(t, handler)
                    yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        line = SHARED - SHARED % machine.config.line_size
        assert captured == [line]

    def test_handler_open_nesting_for_shared_state(self):
        """A violation handler updates shared state via an open-nested
        transaction that survives the rollback (compensation, §4.3)."""
        machine, runtime = build(2)

        def compensate(t):
            def bump(t):
                value = yield t.load(OTHER)
                yield t.store(OTHER, value + 1)

            yield from runtime.atomic_open(t, bump)

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, compensate)
                    yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert machine.memory.read(OTHER) == 1

    def test_multi_level_rollback_runs_all_levels_handlers(self):
        """A conflict at the outer level runs the handlers of every level
        being rolled back, innermost first (§4.6)."""
        machine, runtime = build(2)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def victim(t):
            rounds = []

            def inner(t):
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, handler, "inner-handler")
                    yield t.alu(300)   # violated here, in the inner tx

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)   # outer-level read
                if len(rounds) == 1:
                    yield from runtime.register_violation_handler(
                        t, handler, "outer-handler")
                yield from runtime.atomic(t, inner)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(80)

            def body(t):
                yield t.store(SHARED, 1)   # hits the victim's OUTER read

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert log == ["inner-handler", "outer-handler"]


class TestAbortHandlers:
    def test_abort_handler_runs_then_txaborted(self):
        machine, runtime = build(1)
        log = []

        def handler(t, tag):
            log.append(tag)
            yield t.alu()

        def body(t):
            yield from runtime.register_abort_handler(t, handler, "cleanup")
            yield t.store(SHARED, 1)
            yield from runtime.abort(t, code="bail")

        def program(t):
            try:
                yield from runtime.atomic(t, body)
            except TxAborted as aborted:
                return ("aborted", aborted.code)

        runtime.spawn(program)
        machine.run()
        assert log == ["cleanup"]
        assert machine.results()[0] == ("aborted", "bail")
        assert machine.memory.read(SHARED) == 0

    def test_abort_policy_restart(self):
        machine, runtime = build(1)
        rounds = []

        def body(t):
            rounds.append(1)
            yield t.alu(5)
            if len(rounds) < 3:
                yield from runtime.abort(t, code="again")
            return "finished"

        def program(t):
            result = yield from runtime.atomic(
                t, body, abort_policy=lambda code: "restart")
            return result

        runtime.spawn(program)
        machine.run()
        assert machine.results()[0] == "finished"
        assert len(rounds) == 3

    def test_abort_handlers_not_run_on_violation(self):
        """Abort handlers trigger only on xabort, not on conflicts."""
        machine, runtime = build(2)
        log = []

        def ah(t):
            log.append("abort-handler")
            yield t.alu()

        def victim(t):
            rounds = []

            def body(t):
                rounds.append(1)
                value = yield t.load(SHARED)
                if len(rounds) == 1:
                    yield from runtime.register_abort_handler(t, ah)
                    yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        assert log == []


class TestOverheads:
    """The Section 7 published instruction counts, measured live."""

    def test_all_published_counts(self):
        machine, runtime = build(1)
        counts = {}

        def noop_handler(t):
            yield t.alu()

        def program(t):
            start = t.instructions
            yield from runtime.begin_tx(t)
            counts["xbegin"] = t.instructions - start
            start = t.instructions
            yield from runtime.commit_tx(t)
            counts["commit"] = t.instructions - start
            yield from runtime.begin_tx(t)
            start = t.instructions
            yield from runtime.register_commit_handler(t, noop_handler)
            counts["register"] = t.instructions - start
            start = t.instructions
            yield from runtime.register_violation_handler(
                t, noop_handler, "arg1", "arg2")
            counts["register2args"] = t.instructions - start
            yield from runtime.commit_tx(t)

        runtime.spawn(program)
        machine.run()
        assert counts["xbegin"] == overheads.XBEGIN_INSTRUCTIONS
        assert counts["register"] == overheads.REGISTER_HANDLER_INSTRUCTIONS
        assert counts["register2args"] == (
            overheads.REGISTER_HANDLER_INSTRUCTIONS
            + 2 * overheads.REGISTER_ARG_INSTRUCTIONS)

    def test_rollback_without_handlers_is_six_instructions(self):
        machine, runtime = build(2)

        def victim(t):
            def body(t):
                value = yield t.load(SHARED)
                yield t.alu(300)
                return value

            yield from runtime.atomic(t, body)

        def attacker(t):
            yield t.alu(50)

            def body(t):
                yield t.store(SHARED, 1)

            yield from runtime.atomic(t, body)

        runtime.spawn(victim, cpu_id=0)
        runtime.spawn(attacker, cpu_id=1)
        machine.run()
        dispatches = machine.stats.get("cpu0.htm.dispatches_violation")
        handler_instr = machine.stats.get("cpu0.handler_instructions")
        assert dispatches == 1
        assert handler_instr == overheads.ROLLBACK_NO_HANDLER_INSTRUCTIONS

    def test_register_outside_tx_rejected(self):
        machine, runtime = build(1)

        def handler(t):
            yield t.alu()

        def program(t):
            yield from runtime.register_commit_handler(t, handler)

        runtime.spawn(program)
        with pytest.raises(IsaError):
            machine.run()
