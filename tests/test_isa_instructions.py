"""ISA-level tests: every Table 2 instruction, raw (no runtime).

These drive the hardware directly with op objects and the built-in
default dispatchers, checking the architectural semantics of each
instruction in isolation.
"""

import pytest

from repro.common.errors import IsaError, TxRollback
from repro.common.params import functional_config
from repro.sim import ops as O
from repro.sim.engine import Machine

A = 0x2_0000
B = 0x2_0100
C = 0x2_0200


def run_one(program, n_cpus=1, config=None):
    machine = Machine(config or functional_config(n_cpus=n_cpus))
    machine.add_thread(program)
    machine.run()
    return machine


class TestXBeginCommit:
    def test_basic_commit_publishes(self):
        def program(t):
            yield O.XBegin()
            yield O.Store(A, 7)
            yield O.XValidate()
            yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 7

    def test_xbegin_returns_level(self):
        def program(t):
            level1 = yield O.XBegin()
            level2 = yield O.XBegin()
            yield O.XValidate()
            yield O.XCommit()
            yield O.XValidate()
            yield O.XCommit()
            return (level1, level2)

        machine = run_one(program)
        assert machine.results()[0] == (1, 2)

    def test_stores_invisible_until_commit(self):
        seen = []

        def writer(t):
            yield O.XBegin()
            yield O.Store(A, 9)
            yield O.Alu(100)
            yield O.XValidate()
            yield O.XCommit()

        def reader(t):
            yield O.Alu(50)
            seen.append((yield O.Load(A)))   # mid-transaction: old value
            yield O.Alu(100)
            seen.append((yield O.Load(A)))   # after commit: new value

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(writer, cpu_id=0)
        machine.add_thread(reader, cpu_id=1)
        machine.run()
        assert seen == [0, 9]

    def test_commit_outside_tx_is_isa_error(self):
        def program(t):
            yield O.XCommit()

        with pytest.raises(IsaError):
            run_one(program)

    def test_transaction_reads_own_writes(self):
        def program(t):
            yield O.XBegin()
            yield O.Store(A, 1)
            first = yield O.Load(A)
            yield O.Store(A, first + 1)
            second = yield O.Load(A)
            yield O.XValidate()
            yield O.XCommit()
            return (first, second)

        machine = run_one(program)
        assert machine.results()[0] == (1, 2)
        assert machine.memory.read(A) == 2


class TestTwoPhaseCommit:
    def test_code_between_validate_and_commit_runs_speculatively(self):
        observed = []

        def program(t):
            yield O.XBegin()
            yield O.Store(A, 5)
            yield O.XValidate()
            observed.append((yield O.Load(A)))  # speculative state visible
            observed.append(True)
            yield O.XCommit()

        machine = run_one(program)
        assert observed == [5, True]
        assert machine.memory.read(A) == 5

    def test_validated_transaction_never_loses(self):
        """Once validated, a transaction cannot be violated by another
        commit; the other committer stalls in xvalidate instead."""
        order = []

        def first(t):
            yield O.XBegin()
            yield O.Store(A, 1)
            yield O.XValidate()
            yield O.Alu(300)           # long commit-handler phase
            yield O.XCommit()
            order.append("first")

        def second(t):
            yield O.Alu(20)
            yield O.XBegin()
            try:
                value = yield O.Load(A)    # conflicts with first's write
                yield O.XValidate()
                yield O.XCommit()
                order.append(("second", value))
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()
                order.append("second-rolled-back")

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(first, cpu_id=0)
        machine.add_thread(second, cpu_id=1)
        machine.run()
        assert order[0] == "first"

    def test_abort_between_validate_and_commit(self):
        """Voluntary aborts remain possible after xvalidate (§4.1)."""
        def program(t):
            yield O.XBegin()
            try:
                yield O.Store(A, 42)
                yield O.XValidate()
                yield O.XAbort("changed-my-mind")
            except TxRollback as rollback:
                assert rollback.code == "changed-my-mind"
                yield O.XValidate()
                yield O.XCommit()
                return "aborted"

        machine = run_one(program)
        assert machine.results()[0] == "aborted"
        assert machine.memory.read(A) == 0


class TestClosedNesting:
    def test_child_state_merges_into_parent(self):
        def program(t):
            yield O.XBegin()
            yield O.Store(A, 1)
            yield O.XBegin()
            yield O.Store(B, 2)
            yield O.XValidate()
            yield O.XCommit()            # closed commit: nothing escapes
            mid = (yield O.Load(B))
            assert mid == 2              # parent sees child's write
            yield O.XValidate()
            yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 1
        assert machine.memory.read(B) == 2

    def test_child_write_invisible_before_outer_commit(self):
        probe = []

        def nested(t):
            yield O.XBegin()
            yield O.XBegin()
            yield O.Store(B, 5)
            yield O.XValidate()
            yield O.XCommit()
            yield O.Alu(200)
            yield O.XValidate()
            yield O.XCommit()

        def reader(t):
            yield O.Alu(100)
            probe.append((yield O.Load(B)))

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(nested, cpu_id=0)
        machine.add_thread(reader, cpu_id=1)
        machine.run()
        assert probe == [0]
        assert machine.memory.read(B) == 5

    def test_child_sees_ancestor_state(self):
        def program(t):
            yield O.XBegin()
            yield O.Store(A, 11)
            yield O.XBegin()
            value = yield O.Load(A)
            yield O.XValidate()
            yield O.XCommit()
            yield O.XValidate()
            yield O.XCommit()
            return value

        machine = run_one(program)
        assert machine.results()[0] == 11

    def test_independent_child_rollback(self):
        """A conflict hitting only the child rolls back only the child."""
        attempts = []

        def victim(t):
            yield O.XBegin()
            yield O.Store(A, 1)          # parent work
            yield O.XBegin()
            while True:
                try:
                    value = yield O.Load(C)
                    yield O.Alu(120)
                    yield O.Store(C, value + 1)
                    yield O.XValidate()
                    yield O.XCommit()
                    break
                except TxRollback as rollback:
                    attempts.append(rollback.level)
                    continue
            yield O.XValidate()
            yield O.XCommit()

        def attacker(t):
            yield O.Alu(30)
            yield O.XBegin()
            yield O.Store(C, 100)
            yield O.XValidate()
            yield O.XCommit()

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(victim, cpu_id=0)
        machine.add_thread(attacker, cpu_id=1)
        machine.run()
        assert attempts == [2]           # only the inner level restarted
        assert machine.memory.read(A) == 1
        assert machine.memory.read(C) == 101

    def test_hardware_nesting_limit(self):
        from repro.common.errors import CapacityAbort

        config = functional_config(n_cpus=1, max_nesting=2)

        def program(t):
            yield O.XBegin()
            try:
                yield O.XBegin()
                yield O.XBegin()         # exceeds the limit
            except CapacityAbort:
                # the engine rolled everything back to a fresh level 1
                yield O.XValidate()
                yield O.XCommit()
                return "overflowed"

        machine = run_one(program, config=config)
        assert machine.results()[0] == "overflowed"


class TestOpenNesting:
    def test_open_commit_immediately_visible(self):
        probe = []

        def opener(t):
            yield O.XBegin()
            yield O.XBegin(open=True)
            yield O.Store(B, 77)
            yield O.XValidate()
            yield O.XCommit()            # open commit: publishes now
            yield O.Alu(200)
            yield O.XValidate()
            yield O.XCommit()

        def reader(t):
            yield O.Alu(100)
            probe.append((yield O.Load(B)))

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(opener, cpu_id=0)
        machine.add_thread(reader, cpu_id=1)
        machine.run()
        assert probe == [77]

    def test_open_commit_survives_parent_abort(self):
        def program(t):
            yield O.XBegin()
            try:
                yield O.Store(A, 1)
                yield O.XBegin(open=True)
                yield O.Store(B, 2)
                yield O.XValidate()
                yield O.XCommit()
                yield O.XAbort()
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 0   # parent rolled back
        assert machine.memory.read(B) == 2   # open child survived

    def test_open_commit_updates_parent_data_keeps_sets(self):
        """Paper §4.5: an open commit updates overlapping parent data but
        does not remove addresses from the parent's read-/write-set."""
        def program(t):
            yield O.XBegin()
            yield O.Store(A, 10)         # parent speculative write
            yield O.XBegin(open=True)
            yield O.Store(A, 20)
            yield O.XValidate()
            yield O.XCommit()
            value = yield O.Load(A)      # parent must see the open value
            yield O.XValidate()
            yield O.XCommit()
            return value

        machine = run_one(program)
        assert machine.results()[0] == 20
        assert machine.memory.read(A) == 20

    def test_open_commit_does_not_violate_own_ancestors(self):
        """The parent reads A; the open child writes A and commits; the
        parent must NOT be violated by its own child (§4.5)."""
        def program(t):
            yield O.XBegin()
            before = yield O.Load(A)
            yield O.XBegin(open=True)
            yield O.Store(A, 5)
            yield O.XValidate()
            yield O.XCommit()
            yield O.Alu(10)              # a violation would fire here
            yield O.XValidate()
            yield O.XCommit()
            return before

        machine = run_one(program)
        assert machine.results()[0] == 0
        assert machine.stats.get("cpu0.htm.violations_received") == 0

    def test_open_commit_violates_other_cpus(self):
        hits = []

        def victim(t):
            yield O.XBegin()
            try:
                yield O.Load(C)
                yield O.Alu(300)
                yield O.XValidate()
                yield O.XCommit()
            except TxRollback as rollback:
                hits.append(rollback.reason)
                yield O.XValidate()
                yield O.XCommit()

        def opener(t):
            yield O.Alu(50)
            yield O.XBegin()
            yield O.XBegin(open=True)
            yield O.Store(C, 1)
            yield O.XValidate()
            yield O.XCommit()            # violates the victim immediately
            yield O.XValidate()
            yield O.XCommit()

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(victim, cpu_id=0)
        machine.add_thread(opener, cpu_id=1)
        machine.run()
        assert hits == ["violation"]


class TestImmediateAccesses:
    def test_imst_visible_immediately(self):
        def program(t):
            yield O.XBegin()
            yield O.ImStore(A, 3)
            value = yield O.ImLoad(A)
            yield O.XValidate()
            yield O.XCommit()
            return value

        machine = run_one(program)
        assert machine.results()[0] == 3

    def test_imst_undone_on_rollback(self):
        def program(t):
            yield O.XBegin()
            try:
                yield O.ImStore(A, 3)
                yield O.XAbort()
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 0

    def test_imstid_survives_rollback(self):
        def program(t):
            yield O.XBegin()
            try:
                yield O.ImStoreId(A, 3)
                yield O.XAbort()
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 3

    def test_imld_does_not_join_read_set(self):
        """An imld'd address must not attract violations."""
        def victim(t):
            yield O.XBegin()
            yield O.ImLoad(C)
            yield O.Alu(300)
            yield O.XValidate()
            yield O.XCommit()
            return "clean"

        def attacker(t):
            yield O.Alu(50)
            yield O.XBegin()
            yield O.Store(C, 9)
            yield O.XValidate()
            yield O.XCommit()

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(victim, cpu_id=0)
        machine.add_thread(attacker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "clean"
        assert machine.stats.get("cpu0.htm.violations_received") == 0

    def test_imst_undo_merges_with_closed_commit(self):
        """imst inside a committed child is undone if the parent aborts."""
        def program(t):
            yield O.XBegin()
            try:
                yield O.XBegin()
                yield O.ImStore(A, 5)
                yield O.XValidate()
                yield O.XCommit()        # closed commit
                yield O.XAbort()         # parent aborts
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 0

    def test_imst_permanent_after_open_commit(self):
        def program(t):
            yield O.XBegin()
            try:
                yield O.XBegin(open=True)
                yield O.ImStore(A, 5)
                yield O.XValidate()
                yield O.XCommit()        # open commit publishes
                yield O.XAbort()
            except TxRollback:
                yield O.XValidate()
                yield O.XCommit()

        machine = run_one(program)
        assert machine.memory.read(A) == 5


class TestRelease:
    def test_release_drops_read_set_entry(self):
        def victim(t):
            yield O.XBegin()
            yield O.Load(C)
            yield O.Release(C)
            yield O.Alu(300)
            yield O.XValidate()
            yield O.XCommit()
            return "unharmed"

        def attacker(t):
            yield O.Alu(50)
            yield O.XBegin()
            yield O.Store(C, 1)
            yield O.XValidate()
            yield O.XCommit()

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(victim, cpu_id=0)
        machine.add_thread(attacker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "unharmed"

    def test_release_returns_presence(self):
        def program(t):
            yield O.XBegin()
            yield O.Load(C)
            hit = yield O.Release(C)
            miss = yield O.Release(B)
            yield O.XValidate()
            yield O.XCommit()
            return (hit, miss)

        machine = run_one(program)
        assert machine.results()[0] == (True, False)

    def test_release_line_granularity_caveat(self):
        """Paper §4.7: with line-granularity tracking, releasing one word
        releases the whole line — the documented hazard."""
        line_buddy = C + 4   # same 32-byte line as C

        def victim(t):
            yield O.XBegin()
            yield O.Load(line_buddy)
            yield O.Release(C)           # releases the line, buddy too
            yield O.Alu(300)
            yield O.XValidate()
            yield O.XCommit()
            return "missed-conflict"

        def attacker(t):
            yield O.Alu(50)
            yield O.XBegin()
            yield O.Store(line_buddy, 1)
            yield O.XValidate()
            yield O.XCommit()

        machine = Machine(functional_config(n_cpus=2))
        machine.add_thread(victim, cpu_id=0)
        machine.add_thread(attacker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "missed-conflict"


class TestWordGranularity:
    def test_word_tracking_avoids_false_sharing(self):
        config = functional_config(n_cpus=2, granularity="word")
        word_a = C
        word_b = C + 4   # same line, different word

        def victim(t):
            yield O.XBegin()
            yield O.Load(word_a)
            yield O.Alu(300)
            yield O.XValidate()
            yield O.XCommit()
            return "no-conflict"

        def attacker(t):
            yield O.Alu(50)
            yield O.XBegin()
            yield O.Store(word_b, 1)
            yield O.XValidate()
            yield O.XCommit()

        machine = Machine(config)
        machine.add_thread(victim, cpu_id=0)
        machine.add_thread(attacker, cpu_id=1)
        machine.run()
        assert machine.results()[0] == "no-conflict"
        assert machine.stats.get("cpu0.htm.violations_received") == 0
