"""The snapshot/restore layer (repro.sim.snapshot).

The contract under test is bit-for-bit resumption: capture a machine
mid-run, restore it onto another (fresh or reused) machine, run both to
completion, and every observable — cycles, the stats tree, the memory
image, per-CPU results — must be identical.  A pinned golden-cycle
value guards against the capture itself perturbing the run.
"""

import pytest

from repro.check.fuzz import build_config
from repro.check.programs import make_program
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import (
    ControlledPolicy,
    DeterministicPolicy,
    RandomPolicy,
)
from repro.sim.snapshot import SnapshotError, capture, reset_machine

CONFIG = "lazy-wb-assoc"


def _policy(spec):
    kind, seed = spec
    if kind == "det":
        return DeterministicPolicy()
    if kind == "random":
        return RandomPolicy(seed=seed)
    return ControlledPolicy()


def _run(program_name, config, policy, snapshot_at=None,
         machine=None):
    """One full run; returns (machine, observables, snapshot or None).

    ``snapshot_at`` captures via the engine's checkpoint hook at that
    step count, exactly as the explore layer deposits checkpoints.
    ``machine`` restores the given (machine, snapshot) pair first and
    resumes instead of running from cycle 0.
    """
    captured = []
    if machine is not None:
        machine, snapshot = machine
        program = machine.restore(snapshot, _setup_fn(program_name))
    else:
        machine = Machine(config, policy=policy)
        machine.enable_journal()
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        program = make_program(program_name, seed=1)
        program.setup(machine, runtime, arena)
        if snapshot_at is not None:
            def hook(m, n_steps):
                if n_steps == snapshot_at and not captured:
                    captured.append(m.snapshot())
            machine.checkpoint_hook = hook
    machine.run(max_cycles=program.max_cycles)
    observables = (
        machine.now,
        machine.stats.snapshot_state(),
        machine.memory.snapshot(),
        machine.results(),
    )
    return machine, observables, (captured[0] if captured else None)


def _setup_fn(program_name):
    def setup(machine):
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        program = make_program(program_name, seed=1)
        program.setup(machine, runtime, arena)
        return program
    return setup


def _golden_steps(program_name, config, policy_spec):
    machine, golden, _ = _run(program_name, config, _policy(policy_spec))
    return golden, golden[1]["engine.steps"]


LITMUS = ("litmus-sb", "litmus-mp", "litmus-inc")


@pytest.mark.parametrize("program_name", LITMUS)
def test_restore_resume_is_bit_for_bit(program_name):
    config = build_config(CONFIG, make_program(program_name, seed=1))
    golden, n_steps = _golden_steps(program_name, config, ("det", 0))
    assert n_steps > 4
    snapshot_at = n_steps // 2

    _, straight, snapshot = _run(
        program_name, config, DeterministicPolicy(),
        snapshot_at=snapshot_at)
    # The capture itself must not perturb the run.
    assert straight == golden
    assert snapshot is not None
    assert snapshot.steps() == snapshot_at

    # Restore onto a brand-new machine.
    fresh = Machine(config, policy=DeterministicPolicy())
    _, resumed, _ = _run(program_name, config, None,
                         machine=(fresh, snapshot))
    assert resumed == golden


def test_restore_onto_reused_machine():
    """A pooled machine — dirty from a completed run — restores clean."""
    config = build_config(CONFIG, make_program("litmus-sb", seed=1))
    golden, n_steps = _golden_steps("litmus-sb", config, ("det", 0))
    _, _, snapshot = _run("litmus-sb", config, DeterministicPolicy(),
                          snapshot_at=n_steps // 2)
    dirty, first, _ = _run("litmus-mp", config, DeterministicPolicy())
    assert first != golden
    dirty.policy = DeterministicPolicy()
    _, resumed, _ = _run("litmus-sb", config, None,
                         machine=(dirty, snapshot))
    assert resumed == golden


def test_restore_is_repeatable():
    """One snapshot restores any number of times without decay."""
    config = build_config(CONFIG, make_program("litmus-inc", seed=1))
    golden, n_steps = _golden_steps("litmus-inc", config, ("det", 0))
    _, _, snapshot = _run("litmus-inc", config, DeterministicPolicy(),
                          snapshot_at=max(2, n_steps // 3))
    machine = Machine(config, policy=DeterministicPolicy())
    for _ in range(3):
        machine.policy = DeterministicPolicy()
        _, resumed, _ = _run("litmus-inc", config, None,
                             machine=(machine, snapshot))
        assert resumed == golden


def test_pinned_golden_cycles():
    """Straight-line and resumed litmus-sb agree on pinned cycles.

    The literal pins the deterministic schedule: if a snapshot capture
    or a restore ever shifts simulated time, this fails with the exact
    drift instead of two self-consistent wrong numbers.
    """
    config = build_config(CONFIG, make_program("litmus-sb", seed=1))
    golden, n_steps = _golden_steps("litmus-sb", config, ("det", 0))
    _, _, snapshot = _run("litmus-sb", config, DeterministicPolicy(),
                          snapshot_at=n_steps // 2)
    fresh = Machine(config, policy=DeterministicPolicy())
    _, resumed, _ = _run("litmus-sb", config, None,
                         machine=(fresh, snapshot))
    assert golden[0] == resumed[0] == PINNED_LITMUS_SB_CYCLES


#: The deterministic litmus-sb run under lazy-wb-assoc.  Update only
#: with a semantics change that moves every schedule the same way.
PINNED_LITMUS_SB_CYCLES = 33


try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        program_name=st.sampled_from(
            ("litmus-sb", "litmus-mp", "litmus-inc", "litmus-lb",
             "counter")),
        config_name=st.sampled_from(
            ("lazy-wb-assoc", "eager-wb", "lazy-timing-simple")),
        policy_spec=st.sampled_from(
            (("det", 0), ("random", 1), ("random", 7))),
        frac=st.floats(min_value=0.0, max_value=1.0),
        seed=st.sampled_from((1, 3)),
    )
    def test_property_restore_resume_equals_straight_line(
            program_name, config_name, policy_spec, frac, seed):
        """Any (program, config, policy, capture point, seed): the resumed
        run is indistinguishable from the straight-line one."""
        def setup_fn(machine):
            runtime = Runtime(machine)
            arena = SharedArena(machine)
            program = make_program(program_name, seed=seed)
            program.setup(machine, runtime, arena)
            return program

        config = build_config(config_name,
                              make_program(program_name, seed=seed))

        def straight_line(snapshot_at=None):
            machine = Machine(config, policy=_policy(policy_spec))
            machine.enable_journal()
            program = setup_fn(machine)
            captured = []
            if snapshot_at is not None:
                def hook(m, n_steps):
                    if n_steps == snapshot_at and not captured:
                        captured.append(m.snapshot())
                machine.checkpoint_hook = hook
            machine.run(max_cycles=program.max_cycles)
            return (
                (machine.now, machine.stats.snapshot_state(),
                 machine.memory.snapshot(), machine.results()),
                captured[0] if captured else None,
            )

        golden, _ = straight_line()
        n_steps = golden[1]["engine.steps"]
        snapshot_at = 1 + int(frac * max(0, n_steps - 2))
        observed, snapshot = straight_line(snapshot_at)
        assert observed == golden
        assert snapshot is not None

        fresh = Machine(config, policy=_policy(policy_spec))
        program = fresh.restore(snapshot, setup_fn)
        fresh.run(max_cycles=program.max_cycles)
        resumed = (fresh.now, fresh.stats.snapshot_state(),
                   fresh.memory.snapshot(), fresh.results())
        assert resumed == golden


def test_snapshot_requires_journal():
    config = build_config(CONFIG, make_program("litmus-sb", seed=1))
    machine = Machine(config, policy=DeterministicPolicy())
    with pytest.raises(SnapshotError):
        capture(machine)


def test_reset_machine_clears_control_plane():
    config = build_config(CONFIG, make_program("litmus-sb", seed=1))
    machine, _, _ = _run("litmus-sb", config, DeterministicPolicy())
    reset_machine(machine)
    assert machine.now == 0
    assert machine.results() == {cpu.cpu_id: None
                                 for cpu in machine.cpus}
    assert all(not cpu.frames for cpu in machine.cpus)
    assert machine.stats.snapshot_state() == {}
    assert machine.memory.snapshot() == {}
