"""Mutation self-tests: the conformance differ has teeth.

Each case switches on one deliberate semantic mutation inside the
*reference executor* (a test-only hook, :func:`repro.spec.model.mutated`)
and asserts the differential replay flags the resulting disagreement.
A mutation that sailed through would mean a whole class of simulator
bug — the same class the mutation models — could never be caught:

* ``torn-commit``       — an outer publish silently drops its last
                          buffered word (a half-applied commit).
* ``dropped-compensation`` — an abort skips the §6b.6 violation-handler
                          walk (compensation never runs).
* ``stale-read``        — a transactional load bypasses the write
                          buffer chain (lost read-after-write).
* ``skipped-nested-rollback`` — a closed nested commit escapes its
                          parent's rollback scope by writing straight
                          to memory.
"""

import pytest

from repro.check.fuzz import run_case
from repro.spec.model import ACTIVE_MUTATIONS, MUTATION_KINDS, mutated

#: (mutation, program that exposes it).  bank re-reads balances it has
#: already overwritten inside the transfer transaction (stale-read);
#: nestedopen commits a closed child under an aborting parent
#: (skipped-nested-rollback); compensation arms §6b.6 handlers
#: (dropped-compensation); any multi-word commit exposes torn-commit.
CASES = [
    ("torn-commit", "bank"),
    ("dropped-compensation", "compensation"),
    ("stale-read", "bank"),
    ("skipped-nested-rollback", "nestedopen"),
]


def _conformance(result):
    return [v for v in result.violations if v.oracle == "conformance"]


@pytest.mark.parametrize("mutation,program", CASES,
                         ids=[m for m, _ in CASES])
def test_mutation_is_caught(mutation, program):
    with mutated(mutation):
        result = run_case(program, "lazy-wb-assoc", "det", 1)
    assert not result.skipped
    assert _conformance(result), (
        f"the {mutation} mutation produced no spec disagreement on "
        f"{program}: {result}")


@pytest.mark.parametrize("mutation,program", CASES,
                         ids=[m for m, _ in CASES])
def test_mutation_control_is_clean(mutation, program):
    """The same cell without the mutation is conformant — so the catch
    above is attributable to the mutation, not the cell."""
    result = run_case(program, "lazy-wb-assoc", "det", 1)
    assert not result.skipped
    assert not result.violations, str(result)


def test_every_mutation_kind_is_exercised():
    assert {m for m, _ in CASES} == set(MUTATION_KINDS)


def test_mutated_is_scoped():
    with mutated("torn-commit"):
        assert "torn-commit" in ACTIVE_MUTATIONS
    assert "torn-commit" not in ACTIVE_MUTATIONS


def test_mutated_rejects_unknown_kind():
    with pytest.raises(ValueError):
        with mutated("eats-homework"):
            pass
