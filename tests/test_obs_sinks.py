"""Trace sinks: bounded rings, JSONL streaming, Chrome export, tee.

The tracer's sinks are the observability layer's output stage, so each
one pins its contract here: rings count overflow instead of swallowing
it (the old ``Tracer(limit=...)`` silently truncated), the JSONL stream
round-trips losslessly, and the Chrome exporter produces a structurally
valid trace-event file — parseable JSON, per-track monotone timestamps,
balanced begin/end spans — that Perfetto will actually load.
"""

import json

import pytest

from repro.check.fuzz import build_config
from repro.check.programs import make_program
from repro.mem.layout import SharedArena
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    RingSink,
    TeeSink,
    load_jsonl,
)
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import make_policy
from repro.sim.trace import TraceEvent, Tracer


def _event(cycle, kind="commit", cpu=0, **detail):
    return TraceEvent(cycle=cycle, kind=kind, cpu=cpu, detail=detail)


def _run_traced(program_name, config_name, sink, seed=1):
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    machine = Machine(config, policy=make_policy("det", seed=seed))
    tracer = Tracer(machine, sink=sink)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    program.setup(machine, runtime, arena)
    machine.run(max_cycles=program.max_cycles)
    program.verify(machine)
    tracer.detach()
    return tracer


class TestRingSink:
    def test_head_mode_keeps_first_events_and_counts_drops(self):
        ring = RingSink(3, mode="head")
        for cycle in range(10):
            ring.emit(_event(cycle))
        assert [e.cycle for e in ring.events] == [0, 1, 2]
        assert ring.dropped == 7

    def test_tail_mode_keeps_last_events_and_counts_drops(self):
        ring = RingSink(3, mode="tail")
        for cycle in range(10):
            ring.emit(_event(cycle))
        assert [e.cycle for e in ring.events] == [7, 8, 9]
        assert ring.dropped == 7

    def test_no_drops_below_capacity(self):
        for mode in ("head", "tail"):
            ring = RingSink(5, mode=mode)
            ring.emit(_event(1))
            assert ring.dropped == 0
            assert len(ring.events) == 1

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            RingSink(10, mode="middle")
        with pytest.raises(ValueError):
            RingSink(-1)

    def test_tracer_surfaces_dropped_count(self):
        """Regression: a tracer past its limit used to truncate
        silently; now the overflow is counted and reported."""
        tracer = _run_traced("counter", "lazy-wb-assoc",
                             sink=RingSink(3, mode="head"))
        assert len(tracer.events) == 3
        assert tracer.dropped > 0
        note = tracer.format().splitlines()[-1]
        assert f"{tracer.dropped} more events dropped" in note

    def test_tracer_default_sink_reports_zero_dropped(self):
        tracer = _run_traced("counter", "lazy-wb-assoc",
                             sink=RingSink(100_000, mode="head"))
        assert tracer.dropped == 0
        assert "dropped" not in tracer.format()


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        events = [
            _event(5, "begin", 1, level=1, open=False),
            _event(9, "violation", 2, mask=3, addr=4096, source=0),
            _event(12, "commit", 1, what="outer", words=2),
        ]
        for event in events:
            sink.emit(event)
        sink.close()
        assert sink.n_emitted == 3
        loaded = load_jsonl(str(path))
        assert loaded == events

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        for cycle in range(4):
            sink.emit(_event(cycle))
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"cycle", "kind", "cpu", "detail"}

    def test_streams_whole_run_without_ring_limit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(str(path))
        tracer = _run_traced("counter", "lazy-wb-assoc", sink=sink)
        sink.close()
        # Write-only sink: nothing buffered, nothing dropped...
        assert tracer.events == []
        assert tracer.dropped == 0
        # ...but every event is on disk.
        assert len(load_jsonl(str(path))) == sink.n_emitted > 0


class TestTeeSink:
    def test_fans_out_to_all_sinks(self, tmp_path):
        ring = RingSink(100)
        jsonl = JsonlSink(str(tmp_path / "tee.jsonl"))
        tee = TeeSink(ring, jsonl)
        for cycle in range(5):
            tee.emit(_event(cycle))
        tee.close()
        assert len(ring.events) == 5
        assert load_jsonl(str(tmp_path / "tee.jsonl")) == ring.events

    def test_exposes_first_buffer_and_sums_dropped(self):
        first = RingSink(2, mode="head")
        second = RingSink(3, mode="tail")
        tee = TeeSink(first, second)
        for cycle in range(10):
            tee.emit(_event(cycle))
        assert [e.cycle for e in tee.events] == [0, 1]
        assert tee.dropped == 8 + 7


class TestChromeTraceSink:
    def _chrome_run(self, program="counter", config="eager-wb"):
        sink = ChromeTraceSink()
        _run_traced(program, config, sink=sink)
        return sink.trace_dict()

    def test_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path))
        _run_traced("counter", "eager-wb", sink=sink)
        sink.close()
        with open(path) as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"

    def test_per_track_timestamps_are_monotone(self):
        trace = self._chrome_run()
        last = {}
        for entry in trace["traceEvents"]:
            if entry["ph"] == "M":
                continue
            tid = entry["tid"]
            assert entry["ts"] >= last.get(tid, 0), entry
            last[tid] = entry["ts"]

    def test_spans_are_balanced_per_track(self):
        trace = self._chrome_run()
        depth = {}
        for entry in trace["traceEvents"]:
            if entry["ph"] == "B":
                depth[entry["tid"]] = depth.get(entry["tid"], 0) + 1
            elif entry["ph"] == "E":
                depth[entry["tid"]] = depth.get(entry["tid"], 0) - 1
                assert depth[entry["tid"]] >= 0, (
                    f"E without matching B on track {entry['tid']}")
        assert all(n == 0 for n in depth.values()), depth

    def test_rollbacks_show_up_as_retry_spans(self):
        trace = self._chrome_run()
        names = [entry.get("name") for entry in trace["traceEvents"]]
        assert "rollback" in names
        assert any(name and "(retry)" in name for name in names)

    def test_every_cpu_track_is_named(self):
        trace = self._chrome_run()
        named = {entry["tid"] for entry in trace["traceEvents"]
                 if entry["ph"] == "M" and entry["name"] == "thread_name"}
        used = {entry["tid"] for entry in trace["traceEvents"]
                if entry["ph"] != "M"}
        assert used <= named
