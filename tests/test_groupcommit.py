"""Group commit tests (paper §4.1's coordination window)."""

import pytest

from repro.common.errors import ReproError
from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.runtime.groupcommit import CommitGroup
from repro.sim.engine import Machine

BASE = 0x1A_0000


def build(n_cpus=4):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    return machine, runtime, arena


class TestCommitGroup:
    def test_members_commit_together(self):
        machine, runtime, arena = build(3)
        group = CommitGroup(runtime, arena, members=2)
        snapshots = []

        def member(t, index, delay):
            def body(t):
                yield t.alu(delay)
                yield t.store(BASE + index * 0x100, index + 1)

            yield from group.atomic(t, body)
            return "committed"

        def observer(t):
            # Sample the two cells until both runs end; record pairs.
            for _ in range(60):
                a = yield t.load(BASE)
                b = yield t.load(BASE + 0x100)
                snapshots.append((a, b))
                yield t.alu(20)

        runtime.spawn(member, 0, 50, cpu_id=0)
        runtime.spawn(member, 1, 900, cpu_id=1)   # very unequal lengths
        runtime.spawn(observer, cpu_id=2)
        machine.run(max_cycles=5_000_000)
        assert machine.results()[0] == "committed"
        assert machine.results()[1] == "committed"
        # Atomic as a set: no observer snapshot shows one member's write
        # without the other's (modulo the tiny commit-broadcast skew of
        # two back-to-back commits, absent in this functional model).
        assert (1, 2) in snapshots or snapshots[-1] == (1, 2)
        assert all(pair in ((0, 0), (1, 2)) for pair in snapshots)

    def test_early_member_waits_in_commit_window(self):
        machine, runtime, arena = build(2)
        group = CommitGroup(runtime, arena, members=2)

        def member(t, index, delay):
            def body(t):
                yield t.alu(delay)
                yield t.store(BASE + index * 0x100, 1)

            yield from group.atomic(t, body)

        runtime.spawn(member, 0, 10, cpu_id=0)
        runtime.spawn(member, 1, 700, cpu_id=1)
        machine.run(max_cycles=5_000_000)
        # the fast member finished only after the slow one validated
        assert machine.now >= 700
        assert machine.stats.total("groupcommit.arrivals") == 2

    def test_group_reusable(self):
        machine, runtime, arena = build(2)
        group = CommitGroup(runtime, arena, members=2)

        def member(t, index):
            for round_ in range(3):
                def body(t, round_=round_):
                    addr = BASE + index * 0x100 + round_ * 32
                    yield t.store(addr, round_ + 1)

                yield from group.atomic(t, body)
            return "ok"

        runtime.spawn(member, 0, cpu_id=0)
        runtime.spawn(member, 1, cpu_id=1)
        machine.run(max_cycles=5_000_000)
        assert machine.results()[0] == "ok"
        assert machine.results()[1] == "ok"
        for index in range(2):
            for round_ in range(3):
                assert machine.memory.read(
                    BASE + index * 0x100 + round_ * 32) == round_ + 1

    def test_conflicting_members_detected(self):
        """Two members touching the same line can never both validate;
        the rendezvous must fail loudly instead of deadlocking."""
        machine, runtime, arena = build(2)
        group = CommitGroup(runtime, arena, members=2)
        group.POLL_LIMIT = 50

        def member(t, value):
            def body(t):
                current = yield t.load(BASE)
                yield t.store(BASE, current + value)

            yield from group.atomic(t, body)

        runtime.spawn(member, 1, cpu_id=0)
        runtime.spawn(member, 2, cpu_id=1)
        with pytest.raises(ReproError):
            machine.run(max_cycles=5_000_000)

    def test_bad_member_count_rejected(self):
        machine, runtime, arena = build(2)
        with pytest.raises(ReproError):
            CommitGroup(runtime, arena, members=0)

    def test_single_member_group_trivial(self):
        machine, runtime, arena = build(1)
        group = CommitGroup(runtime, arena, members=1)

        def member(t):
            def body(t):
                yield t.store(BASE, 7)

            yield from group.atomic(t, body)
            return "solo"

        runtime.spawn(member, cpu_id=0)
        machine.run(max_cycles=1_000_000)
        assert machine.results()[0] == "solo"
        assert machine.memory.read(BASE) == 7
