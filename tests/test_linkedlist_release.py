"""Linked list + the early-release traversal pattern (paper §4.7)."""

import pytest

from repro.common.errors import MemoryError_
from repro.common.params import functional_config
from repro.mem.layout import SharedArena
from repro.mem.linkedlist import LinkedList
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


def build(n_cpus=2, nodes=64):
    machine = Machine(functional_config(n_cpus=n_cpus))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    lst = LinkedList(arena, capacity_nodes=nodes)
    return machine, runtime, arena, lst


def populate(runtime, lst, values):
    def loader(t):
        for value in values:
            def body(t, value=value):
                yield from lst.push_front(t, value)

            yield from runtime.atomic(t, body)

    return loader


class TestLinkedList:
    def test_push_and_walk(self):
        machine, runtime, _, lst = build(1)
        runtime.spawn(populate(runtime, lst, [1, 2, 3]), cpu_id=0)
        machine.run()
        assert lst.values_host(machine.memory) == [3, 2, 1]

    def test_traverse_sum(self):
        machine, runtime, _, lst = build(1)

        def program(t):
            yield from populate(runtime, lst, list(range(1, 11)))(t)

            def walk(t):
                total = yield from lst.traverse_sum(t)
                return total

            total = yield from runtime.atomic(t, walk)
            return total

        runtime.spawn(program, cpu_id=0)
        machine.run()
        assert machine.results()[0] == 55

    def test_find_and_set(self):
        machine, runtime, _, lst = build(1)

        def program(t):
            yield from populate(runtime, lst, [10, 20, 30])(t)

            def update(t):
                node = yield from lst.find_node(t, 20)
                assert node
                yield from lst.set_value(t, node, 21)

            yield from runtime.atomic(t, update)

        runtime.spawn(program, cpu_id=0)
        machine.run()
        assert lst.values_host(machine.memory) == [30, 21, 10]

    def test_pool_exhaustion(self):
        machine, runtime, _, lst = build(1, nodes=2)
        runtime.spawn(populate(runtime, lst, [1, 2, 3]), cpu_id=0)
        with pytest.raises(MemoryError_):
            machine.run()


class TestEarlyReleaseTraversal:
    def run_scenario(self, early_release):
        """A slow reader walks 20 nodes while a writer mutates the
        *front* of the list (the prefix the reader passed first)."""
        machine, runtime, _, lst = build(2)
        attempts = []

        def reader(t):
            yield from populate(runtime, lst, list(range(1, 21)))(t)

            def walk(t):
                attempts.append(1)
                total = 0
                previous = None
                node = yield t.load(lst.head_addr)
                if early_release:
                    yield t.release(lst.head_addr)
                while node:
                    value = yield t.load(node)
                    nxt = yield t.load(node + 4)
                    total += value
                    yield t.alu(40)          # slow walk
                    if early_release and previous is not None:
                        yield t.release(previous)
                    previous = node
                    node = nxt
                if early_release and previous is not None:
                    yield t.release(previous)
                return total

            total = yield from runtime.atomic(t, walk)
            return total

        def writer(t):
            yield t.alu(700)   # reader is mid-walk, past the front

            def mutate(t):
                # the head node holds value 20 (pushed last)
                node = yield from lst.find_node(t, 20)
                if node:
                    yield from lst.set_value(t, node, 120)

            yield from runtime.atomic(t, mutate)

        runtime.spawn(reader, cpu_id=0)
        runtime.spawn(writer, cpu_id=1)
        machine.run(max_cycles=10_000_000)
        return machine, attempts

    def test_tracked_walk_is_violated_by_prefix_writer(self):
        machine, attempts = self.run_scenario(early_release=False)
        assert len(attempts) >= 2                  # restarted
        # atomic walk: the retry saw the mutated value
        assert machine.results()[0] == sum(range(1, 20)) + 120

    def test_released_walk_coexists_with_prefix_writer(self):
        machine, attempts = self.run_scenario(early_release=True)
        assert len(attempts) == 1                  # never violated
        # the documented price: the walk is not atomic — it summed the
        # value that existed when it passed the front
        assert machine.results()[0] == sum(range(1, 21))
        assert machine.stats.total("htm.releases") >= 20
