"""Unit tests: the multi-tracking and associativity nesting schemes
(paper Figure 4), including capacity behaviour and functional equivalence.
"""

import pytest

from repro.common.errors import CapacityAbort, TxRollback
from repro.common.params import functional_config
from repro.common.stats import Stats
from repro.htm.nesting import (
    AssociativityScheme,
    MultiTrackingScheme,
    NestingSchemeBase,
    make_nesting_scheme,
)

READ = NestingSchemeBase.READ
WRITE = NestingSchemeBase.WRITE


def tiny_config(scheme, sets=2, assoc=2):
    """A cache with sets*assoc line slots, to force overflow in tests."""
    line = 32
    return functional_config(
        nesting_scheme=scheme,
        l2_size=sets * assoc * line,
        l2_assoc=assoc,
        l1_size=sets * assoc * line,
        l1_assoc=assoc,
    )


@pytest.fixture(params=["multi_tracking", "associativity"])
def scheme(request):
    config = tiny_config(request.param, sets=4, assoc=4)
    return make_nesting_scheme(config, Stats().scope("s"))


class TestCommonBehaviour:
    def test_track_and_clear(self, scheme):
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(1, 0x1020, WRITE)
        assert scheme.footprint() == 2
        scheme.rollback(1)
        assert scheme.footprint() == 0

    def test_closed_commit_merges(self, scheme):
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(2, 0x2000, WRITE)
        scheme.commit_closed(2)
        # level-2 state is now level-1 state; rollback(2) clears nothing
        scheme.rollback(2)
        assert scheme.footprint() == 2
        scheme.rollback(1)
        assert scheme.footprint() == 0

    def test_open_commit_clears_level_only(self, scheme):
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(2, 0x2000, WRITE)
        scheme.commit_open(2)
        assert scheme.footprint() == 1
        scheme.rollback(1)
        assert scheme.footprint() == 0

    def test_rollback_gang_clears_deeper_levels(self, scheme):
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(2, 0x2000, READ)
        scheme.note_access(3, 0x3000, WRITE)
        scheme.rollback(2)
        assert scheme.footprint() == 1

    def test_same_line_same_level_idempotent(self, scheme):
        for _ in range(5):
            scheme.note_access(1, 0x1000, READ)
            scheme.note_access(1, 0x1004, WRITE)  # same line
        assert scheme.footprint() == 1


class TestCapacityDifferences:
    def test_multitracking_shares_line_across_levels(self):
        """One line accessed at many levels costs one slot (Fig. 4a)."""
        config = tiny_config("multi_tracking", sets=1, assoc=1)
        scheme = MultiTrackingScheme(config, Stats().scope("s"))
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(2, 0x1000, WRITE)
        scheme.note_access(3, 0x1000, READ)
        assert scheme.footprint() == 1

    def test_associativity_replicates_per_level(self):
        """The same line at k levels costs k ways (Fig. 4b)."""
        config = tiny_config("associativity", sets=1, assoc=2)
        scheme = AssociativityScheme(config, Stats().scope("s"))
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(2, 0x1000, WRITE)   # second way
        with pytest.raises(CapacityAbort):
            scheme.note_access(3, 0x1000, READ)

    def test_multitracking_set_overflow(self):
        config = tiny_config("multi_tracking", sets=1, assoc=2)
        scheme = MultiTrackingScheme(config, Stats().scope("s"))
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(1, 0x1020, READ)
        with pytest.raises(CapacityAbort):
            scheme.note_access(1, 0x1040, READ)

    def test_associativity_set_overflow(self):
        config = tiny_config("associativity", sets=1, assoc=2)
        scheme = AssociativityScheme(config, Stats().scope("s"))
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(1, 0x1020, READ)
        with pytest.raises(CapacityAbort):
            scheme.note_access(1, 0x1040, WRITE)

    def test_commit_closed_frees_associativity_ways(self):
        config = tiny_config("associativity", sets=1, assoc=2)
        scheme = AssociativityScheme(config, Stats().scope("s"))
        scheme.note_access(1, 0x1000, READ)
        scheme.note_access(2, 0x1000, READ)    # both ways used
        scheme.commit_closed(2)                # merges into one way
        scheme.note_access(1, 0x1020, READ)    # fits again


class TestFunctionalEquivalence:
    """The two schemes must produce identical *results* on the same
    program — only capacity/occupancy may differ (paper §6.3.3)."""

    @pytest.mark.parametrize("n_cpus", [2, 4])
    def test_same_final_memory(self, n_cpus):
        from repro.sim.engine import Machine
        from repro.runtime.core import Runtime

        def build(scheme):
            machine = Machine(functional_config(
                n_cpus=n_cpus, nesting_scheme=scheme))
            runtime = Runtime(machine)
            shared = 0x5_0000

            def body(t):
                value = yield t.load(shared)
                yield t.alu(15)
                yield t.store(shared, value + 1)

            def inner(t):
                value = yield t.load(shared + 0x100)
                yield t.store(shared + 0x100, value + 2)

            def outer(t):
                yield from body(t)
                yield from runtime.atomic(t, inner)

            def program(t):
                for _ in range(3):
                    yield from runtime.atomic(t, outer)

            for _ in range(n_cpus):
                runtime.spawn(program)
            machine.run()
            return (machine.memory.read(shared),
                    machine.memory.read(shared + 0x100))

        assert build("multi_tracking") == build("associativity")

    def test_capacity_abort_surfaces_to_program(self):
        """A transaction too big for the hardware raises CapacityAbort
        through the atomic wrapper (virtualization hook)."""
        from repro.sim.engine import Machine
        from repro.runtime.core import Runtime

        config = tiny_config("associativity", sets=2, assoc=2)
        machine = Machine(config)
        runtime = Runtime(machine)
        caught = []

        def big(t):
            for i in range(64):
                yield t.store(0x6_0000 + i * 32, i)

        def program(t):
            try:
                yield from runtime.atomic(t, big)
            except TxRollback as rollback:
                # the wrapper already terminated the hardware transaction
                caught.append(rollback.reason)
                yield t.alu(1)

        runtime.spawn(program)
        machine.run()
        assert "capacity" in caught
