"""MSI coherence model and double-buffered commit (§6.3.3)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import paper_config
from repro.common.stats import Stats
from repro.memsys.coherence import MsiMemory
from repro.memsys.hierarchy import make_memory_model
from repro.runtime.core import Runtime
from repro.sim.engine import Machine

BASE = 0x16_0000


class TestMsiModel:
    def make(self, n_cpus=2):
        return MsiMemory(paper_config(n_cpus=n_cpus, coherence="msi"),
                         Stats())

    def test_factory_selects_msi(self):
        model = make_memory_model(
            paper_config(coherence="msi"), Stats())
        assert isinstance(model, MsiMemory)
        with pytest.raises(ConfigError):
            paper_config(coherence="mesifo")

    def test_read_then_hit(self):
        mem = self.make()
        cold = mem.access(0, BASE, False, 0)
        warm = mem.access(0, BASE, False, 500)
        assert cold >= 100
        assert warm == 1

    def test_cache_to_cache_cheaper_than_memory(self):
        config = paper_config(n_cpus=2, coherence="msi")
        mem = MsiMemory(config, Stats())
        mem.access(0, BASE, True, 0)            # cpu0 takes M
        transfer = mem.access(1, BASE, False, 500)  # served by owner
        assert transfer < config.mem_latency

    def test_owner_downgrades_on_remote_read(self):
        mem = self.make()
        mem.access(0, BASE, True, 0)
        mem.access(1, BASE, False, 500)
        line = BASE - BASE % 32
        assert mem._holders(line)[0] == "S"
        assert mem._holders(line)[1] == "S"

    def test_write_invalidates_sharers(self):
        mem = self.make(n_cpus=3)
        for cpu in range(3):
            mem.access(cpu, BASE, False, cpu * 10)
        mem.access(0, BASE, True, 500)           # upgrade
        line = BASE - BASE % 32
        assert mem._holders(line) == {0: "M"}
        assert not mem.l1[1].contains(BASE)
        assert not mem.l1[2].contains(BASE)

    def test_upgrade_cheaper_than_miss(self):
        config = paper_config(n_cpus=2, coherence="msi")
        mem = MsiMemory(config, Stats())
        mem.access(0, BASE, False, 0)            # S
        upgrade = mem.access(0, BASE, True, 500)
        assert upgrade < config.mem_latency

    def test_dirty_eviction_writes_back(self):
        config = paper_config(n_cpus=1, coherence="msi")
        stats = Stats()
        mem = MsiMemory(config, stats)
        mem.access(0, BASE, True, 0)
        # Evict BASE from L2 by filling its set with same-index lines.
        set_span = config.l2_sets * config.line_size
        for i in range(1, config.l2_assoc + 1):
            mem.access(0, BASE + i * set_span, False, i * 200)
        assert stats.get("msi.writebacks") >= 1

    def test_commit_broadcast_claims_ownership(self):
        mem = self.make()
        mem.access(1, BASE, False, 0)            # cpu1 shares the line
        mem.access(0, BASE, False, 10)
        mem.commit_broadcast(0, {BASE}, 100)
        line = BASE - BASE % 32
        assert mem._holders(line) == {0: "M"}


class TestMsiEndToEnd:
    @pytest.mark.parametrize("overrides", [
        dict(coherence="msi"),
        dict(coherence="msi", detection="eager", versioning="undo_log"),
    ])
    def test_functional_equivalence_with_simple_model(self, overrides):
        def run(extra):
            machine = Machine(paper_config(n_cpus=4, **extra))
            runtime = Runtime(machine)

            def program(t):
                for _ in range(4):
                    def body(t):
                        value = yield t.load(BASE)
                        yield t.alu(25)
                        yield t.store(BASE, value + 1)

                    yield from runtime.atomic(t, body)

            for cpu in range(4):
                runtime.spawn(program, cpu_id=cpu)
            machine.run()
            return machine.memory.read(BASE)

        assert run({}) == run(overrides) == 16

    def test_workload_invariants_hold_under_msi(self):
        from repro.workloads import Mp3dKernel

        workload = Mp3dKernel(n_threads=4, scale=0.5)
        machine = workload.run(paper_config(n_cpus=4, coherence="msi"))
        assert machine.stats.get("msi.memory_reads") > 0


class TestDoubleBuffering:
    def build_committer(self, double_buffering):
        machine = Machine(paper_config(
            n_cpus=1, double_buffering=double_buffering))
        runtime = Runtime(machine)

        def program(t):
            for round_ in range(6):
                def body(t, round_=round_):
                    for i in range(12):
                        yield t.store(BASE + (round_ * 12 + i) * 32, i)
                    yield t.alu(30)

                yield from runtime.atomic(t, body)

        runtime.spawn(program)
        machine.run()
        return machine

    def test_hides_commit_latency(self):
        plain = self.build_committer(False)
        buffered = self.build_committer(True)
        assert buffered.now < plain.now
        assert buffered.stats.total("htm.hidden_commit_cycles") > 0
        # same work committed either way
        assert plain.memory.snapshot() == buffered.memory.snapshot()

    def test_bus_still_occupied(self):
        """Hidden from the committer, not from the machine: the broadcast
        still occupies the bus for everyone else."""
        buffered = self.build_committer(True)
        assert buffered.stats.get("bus.busy_cycles") > 0

    def test_semantics_preserved_under_contention(self):
        machine = Machine(paper_config(n_cpus=4, double_buffering=True))
        runtime = Runtime(machine)

        def program(t):
            for _ in range(5):
                def body(t):
                    value = yield t.load(BASE)
                    yield t.alu(20)
                    yield t.store(BASE, value + 1)

                yield from runtime.atomic(t, body)

        for cpu in range(4):
            runtime.spawn(program, cpu_id=cpu)
        machine.run()
        assert machine.memory.read(BASE) == 20
