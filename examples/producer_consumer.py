#!/usr/bin/env python
"""Conditional synchronization without notify (paper §5, Figure 3).

A producer and a consumer share a single-slot mailbox.  Neither ever
calls notify: a thread that must wait registers a *watch* on the flag via
an open-nested transaction and *retries* (parking its CPU).  A dedicated
scheduler thread keeps every watched address in its read-set; when the
other side's commit writes the flag, conflict detection fires the
scheduler's violation handler, which wakes exactly the right thread.

Run:  python examples/producer_consumer.py
"""

from repro import Machine, Runtime, paper_config
from repro.mem import SharedArena
from repro.runtime.condsync import CondScheduler

N_ITEMS = 12


def main():
    machine = Machine(paper_config(n_cpus=4))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    cond = CondScheduler(runtime, arena)

    available = arena.alloc_word(0, isolate=True)
    mailbox = arena.alloc_word(0, isolate=True)

    def producer(t):
        for item in range(1, N_ITEMS + 1):
            def body(t, item=item):
                full = yield t.load(available)
                if full:                       # consumer hasn't taken it
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, available)
                    yield from cond.retry(t)   # sleep until it changes
                yield t.store(mailbox, item)
                yield t.store(available, 1)
            yield from cond.atomic(t, body)
            yield t.alu(300)                   # produce the next item
        yield from cond.cancel_watches(t)
        return "producer-done"

    def consumer(t):
        received = []
        for _ in range(N_ITEMS):
            def body(t):
                full = yield t.load(available)
                if not full:                   # nothing to take yet
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, available)
                    yield from cond.retry(t)
                item = yield t.load(mailbox)
                yield t.store(available, 0)
                return item
            received.append((yield from cond.atomic(t, body)))
            yield t.alu(500)                   # consume slowly
        yield from cond.cancel_watches(t)
        return received

    cond.spawn_scheduler(cpu_id=0)             # the Figure 3 scheduler
    runtime.spawn(producer, cpu_id=1)
    runtime.spawn(consumer, cpu_id=2)
    cycles = machine.run(max_cycles=50_000_000)

    received = machine.results()[2]
    print(f"simulated {cycles} cycles")
    print(f"consumer received: {received}")
    print(f"parks: {machine.stats.total('rt.parks')}, "
          f"wakeups: {machine.stats.total('condsync.wakeups')}, "
          f"watches registered: {machine.stats.total('condsync.watches')}")
    assert received == list(range(1, N_ITEMS + 1))
    print("OK: in-order, exactly-once hand-off with no notify statements")


if __name__ == "__main__":
    main()
