#!/usr/bin/env python
"""Quickstart: transactional bank transfers on the simulated HTM machine.

Four CPUs move money between accounts under heavy contention.  The atomic
blocks conflict, violate, roll back, and retry — and the balance sheet
still always adds up, which is the whole point of transactional memory.

Run:  python examples/quickstart.py
"""

from repro import Machine, Runtime, paper_config
from repro.mem import SharedArena, WordArray

N_ACCOUNTS = 8
N_CPUS = 4
TRANSFERS_PER_CPU = 16
INITIAL_BALANCE = 100


def main():
    machine = Machine(paper_config(n_cpus=N_CPUS))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    accounts = WordArray(arena, N_ACCOUNTS,
                         initial=[INITIAL_BALANCE] * N_ACCOUNTS)

    import random
    rng = random.Random(42)
    plans = [
        [(rng.randrange(N_ACCOUNTS), rng.randrange(N_ACCOUNTS),
          rng.randrange(1, 20)) for _ in range(TRANSFERS_PER_CPU)]
        for _ in range(N_CPUS)
    ]

    def transfer(t, src, dst, amount):
        """One atomic transfer: the body re-executes if violated."""
        balance = yield from accounts.get(t, src)
        yield t.alu(10)                      # fee calculation, say
        yield from accounts.set(t, src, balance - amount)
        balance = yield from accounts.get(t, dst)
        yield from accounts.set(t, dst, balance + amount)

    def teller(t, plan):
        for src, dst, amount in plan:
            yield from runtime.atomic(t, transfer, src, dst, amount)
        return "done"

    for cpu, plan in enumerate(plans):
        runtime.spawn(teller, plan, cpu_id=cpu)

    cycles = machine.run()

    balances = [machine.memory.read(accounts.addr(i))
                for i in range(N_ACCOUNTS)]
    total = sum(balances)
    print(f"simulated {cycles} cycles on {N_CPUS} CPUs")
    print(f"final balances: {balances}")
    print(f"total: {total} (expected {N_ACCOUNTS * INITIAL_BALANCE})")
    print(f"commits: {machine.stats.total('htm.commits_outer')}, "
          f"violations: {machine.stats.total('htm.violations_received')}, "
          f"retries: {machine.stats.total('rt.retries')}")
    assert total == N_ACCOUNTS * INITIAL_BALANCE, "money leaked!"
    print("OK: conservation of money held under contention")


if __name__ == "__main__":
    main()
