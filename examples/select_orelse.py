#!/usr/bin/env python
"""Composable blocking: orElse over two queues (paper §5).

A consumer takes from whichever of two queues has data, using the
Transactional-Haskell ``orElse`` built on closed nesting + watch/retry:
each alternative runs as a closed-nested transaction; one that would
block rolls back alone; if both would block, the consumer sleeps until
either queue's tail moves.  No locks, no condition variables, no notify.

Run:  python examples/select_orelse.py
"""

from repro import Machine, Runtime, paper_config
from repro.mem import BoundedQueue, SharedArena
from repro.runtime.condsync import CondScheduler
from repro.runtime.constructs import RETRY, or_else

ITEMS_PER_PRODUCER = 6


def main():
    machine = Machine(paper_config(n_cpus=4))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    cond = CondScheduler(runtime, arena)
    queues = [BoundedQueue(arena, 4) for _ in range(2)]

    def producer(t, index, delay, base):
        yield t.alu(delay)
        for i in range(ITEMS_PER_PRODUCER):
            def fill(t, i=i):
                yield from queues[index].enqueue(t, [base + i])

            yield from runtime.atomic(t, fill)
            yield t.alu(700)
        return f"producer-{index}-done"

    def taker(index):
        def body(t):
            item = yield from queues[index].try_dequeue(t)
            return (index, item[0]) if item is not None else RETRY
        return body

    def consumer(t):
        received = []
        for _ in range(2 * ITEMS_PER_PRODUCER):
            source, value = yield from or_else(cond, t, [
                (taker(0), [queues[0].tail_addr]),
                (taker(1), [queues[1].tail_addr]),
            ])
            received.append((source, value))
        yield from cond.cancel_watches(t)
        return received

    cond.spawn_scheduler(cpu_id=0)
    runtime.spawn(consumer, cpu_id=1)
    runtime.spawn(producer, 0, 500, 100, cpu_id=2)
    runtime.spawn(producer, 1, 1200, 200, cpu_id=3)
    cycles = machine.run(max_cycles=50_000_000)

    received = machine.results()[1]
    from_q0 = sorted(v for s, v in received if s == 0)
    from_q1 = sorted(v for s, v in received if s == 1)
    print(f"simulated {cycles} cycles")
    print(f"received ({len(received)} items): {received}")
    print(f"parks: {machine.stats.total('rt.parks')}, "
          f"wakeups: {machine.stats.total('condsync.wakeups')}")
    assert from_q0 == [100 + i for i in range(ITEMS_PER_PRODUCER)]
    assert from_q1 == [200 + i for i in range(ITEMS_PER_PRODUCER)]
    print("OK: selected from both sources, exactly once each, "
          "blocking only when both were empty")


if __name__ == "__main__":
    main()
