#!/usr/bin/env python
"""System calls and I/O inside transactions (paper §5, §7.2).

* Output: buffered in thread-private memory, written by a *commit
  handler* between xvalidate and xcommit — a violated transaction's
  output simply evaporates with its buffer.
* Input: performed immediately inside an *open-nested* transaction, with
  violation/abort handlers that restore the file position (compensation)
  if the surrounding transaction rolls back.

Four workers read requests from a shared input file, process them
transactionally (with real conflicts on a shared tally), and append
responses to a shared log.  Every request is consumed exactly once and
every response is logged exactly once — under violations and retries.

Run:  python examples/transactional_io.py
"""

import random

from repro import Machine, Runtime, paper_config
from repro.mem import SharedArena, WordArray
from repro.runtime.txio import SimFile, TxIo

N_CPUS = 4
N_REQUESTS = 32


def main():
    machine = Machine(paper_config(n_cpus=N_CPUS))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    io = TxIo(runtime)

    requests = SimFile(arena, "requests",
                       initial=[100 + i for i in range(N_REQUESTS)])
    responses = SimFile(arena, "responses")
    tally = WordArray(arena, 1)

    def worker(t, wid):
        rng = random.Random(wid)
        handled = 0
        while True:
            def body(t):
                # closed-mode read: concurrent workers partition one
                # stream exactly-once (see TxIo.read's docstring)
                items = yield from io.read(t, requests, 1,
                                           open_nested=False)
                if not items:
                    return None
                request = items[0]
                yield t.alu(80)                       # process it
                yield from tally.add(t, 0, 1)          # contended counter
                yield from io.write(t, responses,
                                    [request * 10 + wid])
                return request

            request = yield from runtime.atomic(t, body)
            if request is None:
                break
            handled += 1
            yield t.alu(50 + rng.randrange(200))   # think time
        return handled

    for cpu in range(N_CPUS):
        runtime.spawn(worker, cpu, cpu_id=cpu)
    cycles = machine.run()

    handled = sum(machine.results().values())
    processed = sorted(r // 10 for r in responses.data)
    print(f"simulated {cycles} cycles on {N_CPUS} CPUs")
    print(f"requests handled: {handled} "
          f"(per worker: {machine.results()})")
    print(f"responses logged: {len(responses.data)}")
    print(f"violations: {machine.stats.total('htm.violations_received')}, "
          f"read compensations: {machine.stats.total('txio.compensations')}")
    assert handled == N_REQUESTS
    assert processed == sorted(100 + i for i in range(N_REQUESTS))
    assert machine.memory.read(tally.addr(0)) == N_REQUESTS
    print("OK: exactly-once input and output under conflicts")


if __name__ == "__main__":
    main()
