#!/usr/bin/env python
"""The SPECjbb2000-style warehouse, three ways (paper §7.1).

Runs the warehouse workload (customer/stock/order B-trees plus a global
order-ID counter) on 8 CPUs under three machines:

* **flat** — a conventional HTM that flattens all nesting;
* **closed** — B-tree operations as closed-nested transactions;
* **open** — additionally, order-ID generation as an open-nested
  transaction (IDs must be unique, not sequential, so no compensation is
  needed).

Prints the three cycle counts and the speedups, mirroring the paper's
headline result (closed and open nesting beat flattening, open beats
closed).

Run:  python examples/warehouse.py
"""

from repro.common.params import paper_config
from repro.workloads import JbbWorkload

N_CPUS = 8


def run(variant, flatten):
    workload = JbbWorkload(n_threads=N_CPUS, variant=variant)
    machine = workload.run(paper_config(n_cpus=N_CPUS, flatten=flatten))
    return workload, machine


def main():
    seq = JbbWorkload(n_threads=1).run(paper_config(n_cpus=1))
    seq_cycles = seq.stats.get("cycles")

    _, flat = run("closed", flatten=True)
    _, closed = run("closed", flatten=False)
    open_w, open_ = run("open", flatten=False)

    flat_cycles = flat.stats.get("cycles")
    closed_cycles = closed.stats.get("cycles")
    open_cycles = open_.stats.get("cycles")

    print(f"warehouse: {N_CPUS} CPUs, "
          f"{open_w._expected_orders} new orders in the mix\n")
    print(f"{'sequential (1 CPU)':>24}: {seq_cycles:8d} cycles")
    print(f"{'flat (conventional HTM)':>24}: {flat_cycles:8d} cycles "
          f"({seq_cycles / flat_cycles:.2f}x vs sequential)")
    print(f"{'closed nesting':>24}: {closed_cycles:8d} cycles "
          f"({flat_cycles / closed_cycles:.2f}x vs flat, "
          f"{seq_cycles / closed_cycles:.2f}x total)")
    print(f"{'open nesting':>24}: {open_cycles:8d} cycles "
          f"({flat_cycles / open_cycles:.2f}x vs flat, "
          f"{seq_cycles / open_cycles:.2f}x total)")

    burned = (open_.memory.read(open_w.order_id_addr) - 1
              - open_w._expected_orders)
    print(f"\norder IDs burned by open-nested retries: {burned} "
          "(unique, not sequential — no compensation needed)")
    assert flat_cycles / closed_cycles > 1.0
    assert flat_cycles / open_cycles > flat_cycles / closed_cycles
    print("OK: closed beats flat; open beats closed "
          "(the paper's SPECjbb2000 result)")


if __name__ == "__main__":
    main()
