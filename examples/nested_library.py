#!/usr/bin/env python
"""Composable software: closed-nested B-tree library calls (paper §3/§4.5).

A user transaction calls into a B-tree "library" whose operations are
themselves atomic blocks.  On a conventional HTM the inner transactions
are flattened, so a conflict inside one tiny tree operation rolls back
the user's whole transaction.  With real closed nesting, only the inner
operation retries.

This example runs the same program both ways and prints the difference —
a miniature of the paper's Figure 5 experiment.

Run:  python examples/nested_library.py
"""

import random

from repro import Machine, Runtime, paper_config
from repro.mem import BTree, SharedArena
from repro.mem.hostexec import host

N_CPUS = 8
OPS_PER_CPU = 8


def build_and_run(flatten):
    machine = Machine(paper_config(n_cpus=N_CPUS, flatten=flatten))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    index = BTree(arena, capacity_nodes=256)
    for key in range(1, 65):
        host(index.insert, machine.memory, key, 0)
    next_key = arena.alloc_word(1000, isolate=True)

    rng = random.Random(9)
    plans = [
        [rng.randrange(1, 65) for _ in range(OPS_PER_CPU)]
        for _ in range(N_CPUS)
    ]

    def library_update(t, key):
        """The 'library call': an atomic tree update."""
        yield from index.update(t, key, 1)

    def library_append(t):
        """Another library call: insert at the hot right edge."""
        key = yield t.load(next_key)
        yield t.store(next_key, key + 1)
        yield from index.insert(t, key, key)

    def user_operation(t, key):
        """The user's transaction: private compute plus two library
        calls.  The library calls are closed-nested atomic blocks."""
        yield t.alu(600)                       # business logic
        yield from runtime.atomic(t, library_update, key)
        yield t.alu(200)
        yield from runtime.atomic(t, library_append)

    def program(t, plan):
        for key in plan:
            yield from runtime.atomic(t, user_operation, key)

    for cpu, plan in enumerate(plans):
        runtime.spawn(program, plan, cpu_id=cpu)
    cycles = machine.run()

    return cycles, machine


def main():
    flat_cycles, flat_machine = build_and_run(flatten=True)
    nested_cycles, nested_machine = build_and_run(flatten=False)

    def report(label, cycles, machine):
        print(f"{label:>8}: {cycles:7d} cycles, "
              f"full-restarts={machine.stats.total('htm.rollbacks_to_level1'):3d}, "
              f"inner-restarts={machine.stats.total('htm.rollbacks_to_level2'):3d}")

    print(f"{N_CPUS} CPUs, {OPS_PER_CPU} user operations each, "
          "two B-tree library calls per operation\n")
    report("flat", flat_cycles, flat_machine)
    report("nested", nested_cycles, nested_machine)
    print(f"\nnesting vs flattening: {flat_cycles / nested_cycles:.2f}x")
    print("with nesting, conflicts inside the library roll back only the")
    print("library call — the user transaction's work survives.")


if __name__ == "__main__":
    main()
