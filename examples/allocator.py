#!/usr/bin/env python
"""Transactional memory allocation with compensation (paper §5).

malloc inside a transaction runs as an open-nested transaction — the
allocator's free-list and brk updates commit immediately, so parallel
allocations never conflict through allocator metadata.  For an unmanaged
language, a violation/abort handler frees the block if the user
transaction rolls back; free() inside a transaction is deferred to a
commit handler (the block must survive a rollback).

This example aborts half its transactions on purpose and shows the heap
balancing to exactly the committed allocations.

Run:  python examples/allocator.py
"""

from repro import Machine, Runtime, TxAborted, paper_config
from repro.mem import SharedArena, SharedHeap
from repro.runtime.alloc import TxAlloc

N_CPUS = 4
ROUNDS = 6


def main():
    machine = Machine(paper_config(n_cpus=N_CPUS))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    heap = SharedHeap(arena, 16384)
    alloc = TxAlloc(runtime, heap)

    def worker(t, wid):
        kept = []
        for round_ in range(ROUNDS):
            abort_this_one = (round_ % 2 == 1)

            def body(t, abort_this_one=abort_this_one):
                addr = yield from alloc.malloc(t, 16)
                yield t.store(addr, wid)        # use the block
                if abort_this_one:
                    yield from runtime.abort(t, code="changed-my-mind")
                return addr

            try:
                kept.append((yield from runtime.atomic(t, body)))
            except TxAborted:
                pass                             # compensation freed it
        return kept

    for cpu in range(N_CPUS):
        runtime.spawn(worker, cpu, cpu_id=cpu)
    cycles = machine.run()

    kept = [addr for addrs in machine.results().values() for addr in addrs]
    compensated = machine.stats.total("alloc.compensated_frees")
    print(f"simulated {cycles} cycles on {N_CPUS} CPUs")
    print(f"blocks kept: {len(kept)} (all distinct: "
          f"{len(set(kept)) == len(kept)})")
    print(f"aborted allocations compensated: {compensated}")
    expected_kept = N_CPUS * (ROUNDS - ROUNDS // 2)
    assert len(kept) == expected_kept
    assert len(set(kept)) == len(kept)
    assert compensated == N_CPUS * (ROUNDS // 2)
    print("OK: every aborted transaction's block returned to the heap, "
          "every committed one survived")


if __name__ == "__main__":
    main()
