#!/usr/bin/env python
"""Generate docs/api.md from the package's docstrings.

Walks every module under ``repro``, extracts the module docstring's first
paragraph and the public classes/functions with their signatures and
summary lines, and writes a markdown API index.  Run from the repo root:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import repro

EXCLUDED = {"repro.__main__"}


def first_paragraph(doc):
    if not doc:
        return ""
    paragraph = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def summary_line(doc):
    if not doc:
        return ""
    return doc.strip().splitlines()[0]


def iter_modules():
    prefix = repro.__name__ + "."
    yield repro.__name__
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        if info.name not in EXCLUDED:
            yield info.name


def public_members(module):
    classes, functions = [], []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(member):
            classes.append((name, member))
        elif inspect.isfunction(member):
            functions.append((name, member))
    return sorted(classes), sorted(functions)


def signature_of(obj):
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def class_methods(cls):
    methods = []
    for name, member in vars(cls).items():
        if name.startswith("_") or not inspect.isfunction(member):
            continue
        methods.append((name, member))
    return sorted(methods)


def generate():
    lines = [
        "# API index",
        "",
        "Generated from docstrings by `tools/gen_api_docs.py`; regenerate",
        "after changing public signatures.",
        "",
    ]
    for module_name in iter_modules():
        module = importlib.import_module(module_name)
        classes, functions = public_members(module)
        if not classes and not functions and module_name != "repro":
            # Pure re-export packages still deserve their summary.
            if not module.__doc__:
                continue
        lines.append(f"## `{module_name}`")
        lines.append("")
        paragraph = first_paragraph(module.__doc__)
        if paragraph:
            lines.append(paragraph)
            lines.append("")
        for name, cls in classes:
            lines.append(f"### class `{name}{signature_of(cls)}`")
            lines.append("")
            summary = summary_line(cls.__doc__)
            if summary:
                lines.append(summary)
                lines.append("")
            for method_name, method in class_methods(cls):
                summary = summary_line(method.__doc__)
                suffix = f" — {summary}" if summary else ""
                lines.append(
                    f"- `{method_name}{signature_of(method)}`{suffix}")
            if class_methods(cls):
                lines.append("")
        for name, fn in functions:
            summary = summary_line(fn.__doc__)
            suffix = f" — {summary}" if summary else ""
            lines.append(f"- `{name}{signature_of(fn)}`{suffix}")
        if functions:
            lines.append("")
    return "\n".join(lines) + "\n"


def main():
    output = Path(__file__).resolve().parent.parent / "docs" / "api.md"
    output.write_text(generate())
    print(f"wrote {output} ({output.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
