"""Measure the tier-1 suite's line coverage of ``repro`` with no
third-party dependency.

CI's coverage gate runs ``pytest --cov=repro --cov-fail-under=N``
(pytest-cov); this tool exists to *calibrate N* in environments where
coverage.py is not installed.  It mimics coverage.py's line semantics:

* **possible lines** — the union of ``co_lines()`` line numbers over
  every code object compiled from each ``src/repro`` module (the same
  code-object walk coverage.py's parser performs);
* **covered lines** — line events observed under ``sys.settrace``
  while the test suite runs.

The tracer early-outs hard: a frame whose code object has no unseen
lines left is never locally traced, so the overhead concentrates in
the first execution of each code path.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args]

Prints per-package and total percentages; exits with pytest's status.
"""

from __future__ import annotations

import collections
import os
import sys
import threading

SRC_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src", "repro"))

#: file -> set of line numbers still unseen (drained as lines execute).
_remaining = {}
#: file -> set of line numbers seen.
_covered = collections.defaultdict(set)


def _possible_lines(path):
    """All executable line numbers of ``path`` (code-object walk)."""
    with open(path, "rb") as handle:
        source = handle.read()
    lines = set()
    todo = [compile(source, path, "exec")]
    while todo:
        code = todo.pop()
        lines.update(line for _, _, line in code.co_lines()
                     if line is not None)
        todo.extend(const for const in code.co_consts
                    if hasattr(const, "co_lines"))
    return lines


def _collect_possible():
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            _remaining[path] = _possible_lines(path)


def _local_trace(frame, event, _arg):
    if event == "line":
        path = frame.f_code.co_filename
        remaining = _remaining.get(path)
        if remaining is not None:
            remaining.discard(frame.f_lineno)
            _covered[path].add(frame.f_lineno)
            if not remaining:
                return None  # file fully covered; stop tracing frame
    return _local_trace


def _global_trace(frame, event, _arg):
    if event != "call":
        return None
    remaining = _remaining.get(frame.f_code.co_filename)
    if not remaining:
        return None  # not ours, or nothing left to learn
    return _local_trace


def main(argv):
    _collect_possible()
    sys.settrace(_global_trace)
    threading.settrace(_global_trace)
    try:
        import pytest
        status = pytest.main(argv or ["-x", "-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_possible = total_covered = 0
    by_package = collections.defaultdict(lambda: [0, 0])
    for path in sorted(_remaining):
        possible = _remaining[path] | _covered[path]
        covered = _covered[path] & possible
        total_possible += len(possible)
        total_covered += len(covered)
        rel = os.path.relpath(path, SRC_ROOT)
        package = rel.split(os.sep)[0]
        by_package[package][0] += len(covered)
        by_package[package][1] += len(possible)

    print()
    print(f"{'package':<16s} {'covered':>8s} {'possible':>9s} {'pct':>7s}")
    for package, (covered, possible) in sorted(by_package.items()):
        pct = 100.0 * covered / possible if possible else 100.0
        print(f"{package:<16s} {covered:>8d} {possible:>9d} {pct:>6.1f}%")
    pct = 100.0 * total_covered / total_possible if total_possible else 0.0
    print(f"{'TOTAL':<16s} {total_covered:>8d} {total_possible:>9d} "
          f"{pct:>6.1f}%")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
