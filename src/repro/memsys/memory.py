"""The simulated physical memory image.

Values are stored per word address.  The image is purely functional state;
all timing lives in the cache/bus models.  Unwritten words read as 0, like
zero-filled physical pages.
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE


class MemoryImage:
    """Word-addressed backing store for the whole machine.

    ``read``/``write`` back every simulated memory access, so the
    alignment guard is inlined rather than calling
    :func:`~repro.common.addr.check_word_aligned`.
    """

    def __init__(self):
        self._words = {}

    def read(self, addr):
        """Read the word at ``addr`` (0 if never written)."""
        if addr % WORD_SIZE:
            raise MemoryError_(f"unaligned word access at {addr:#x}")
        return self._words.get(addr, 0)

    def write(self, addr, value):
        """Write ``value`` to the word at ``addr``."""
        if addr % WORD_SIZE:
            raise MemoryError_(f"unaligned word access at {addr:#x}")
        self._words[addr] = value

    def read_block(self, addr, n_words):
        """Read ``n_words`` consecutive words starting at ``addr``."""
        from repro.common.params import WORD_SIZE

        return [self.read(addr + i * WORD_SIZE) for i in range(n_words)]

    def write_block(self, addr, values):
        """Write consecutive words starting at ``addr``."""
        from repro.common.params import WORD_SIZE

        for i, value in enumerate(values):
            self.write(addr + i * WORD_SIZE, value)

    def snapshot(self):
        """A plain-dict copy of all written words (for checking invariants)."""
        return dict(self._words)

    def restore(self, saved):
        """Overwrite the image from a :meth:`snapshot` copy, in place."""
        self._words.clear()
        self._words.update(saved)

    def __len__(self):
        return len(self._words)
