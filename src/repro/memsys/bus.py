"""The split-transaction system bus.

The paper's machine connects the private cache hierarchies over a 16-byte
split-transaction bus.  We model occupancy and arbitration: a requester
asks for the bus at cycle ``now`` and is granted the first free slot, then
holds it for the transfer duration.  Contention therefore shows up as
increased miss and commit latencies exactly where the paper's evaluation
sees it (commit-token arbitration, write-set broadcast).
"""

from __future__ import annotations


class Bus:
    """Single shared bus with FCFS arbitration."""

    def __init__(self, config, stats):
        self._config = config
        self._stats = stats.scope("bus")
        self._busy_until = 0
        # acquire() runs per cache miss and per commit broadcast; bind
        # the counters and arbitration constants once.
        self._arbitration = config.bus_arbitration
        self._line_cycles = config.line_transfer_cycles
        self._n_transactions = self._stats.counter("transactions")
        self._n_busy = self._stats.counter("busy_cycles")
        self._n_wait = self._stats.counter("wait_cycles")

    def acquire(self, now, hold_cycles):
        """Request the bus at ``now`` for ``hold_cycles``.

        Returns the cycle at which the transfer *completes*.  Arbitration
        itself costs ``bus_arbitration`` cycles, overlapped with waiting
        for the bus to free.
        """
        grant = now + self._arbitration
        busy = self._busy_until
        if busy > grant:
            grant = busy
        done = grant + hold_cycles
        self._busy_until = done
        self._n_transactions.add()
        self._n_busy.add(hold_cycles)
        self._n_wait.add(grant - now)
        return done

    def line_transfer(self, now):
        """Acquire the bus for one cache-line transfer."""
        return self.acquire(now, self._line_cycles)

    @property
    def busy_until(self):
        return self._busy_until

    def snapshot_state(self):
        """Occupancy is the bus's only non-counter state."""
        return self._busy_until

    def restore_state(self, saved):
        self._busy_until = saved
