"""Memory models: per-CPU timing for loads, stores, and commit broadcasts.

Two implementations share one interface:

* :class:`HierarchicalMemory` — the paper's machine: private L1 + L2 per
  CPU, a shared split-transaction bus, and main memory.  Latency of an
  access is where it hits; misses also contend for the bus.
* :class:`FlatMemory` — a 1-cycle model for functional tests, so semantic
  test suites run fast and deterministically without cache effects.

Both are *timing only*; data correctness never depends on them.
"""

from __future__ import annotations

from repro.common.addr import line_of
from repro.memsys.bus import Bus
from repro.memsys.cache import Cache


class MemoryModel:
    """Interface both timing models implement."""

    def access(self, cpu_id, addr, is_write, now):
        """Cycles for CPU ``cpu_id`` to access ``addr`` starting at ``now``."""
        raise NotImplementedError

    def commit_broadcast(self, cpu_id, line_addrs, now):
        """Cycles for ``cpu_id`` to broadcast its committed write-set and
        invalidate remote copies."""
        raise NotImplementedError

    def arbitrate_commit(self, now):
        """Cycles to win commit ordering (the TCC commit token)."""
        raise NotImplementedError

    def flush_stats(self):
        """Fold deferred event counts into the stats tree (run end)."""

    def snapshot_state(self):
        """Capture timing state (repro.sim.snapshot)."""
        return None

    def restore_state(self, saved):
        pass


class FlatMemory(MemoryModel):
    """Every access costs one cycle; broadcasts are free."""

    def access(self, cpu_id, addr, is_write, now):
        return 1

    def commit_broadcast(self, cpu_id, line_addrs, now):
        return 1

    def arbitrate_commit(self, now):
        return 1


class HierarchicalMemory(MemoryModel):
    """Private L1/L2 caches per CPU over a shared bus."""

    def __init__(self, config, stats):
        self._config = config
        self._stats = stats
        self.bus = Bus(config, stats)
        #: line -> insertion-ordered dict of caches holding it.  Snoops
        #: (store upgrades, commit broadcasts) walk only a line's actual
        #: holders instead of every cache in the machine — same
        #: invalidations, same counters, O(holders) instead of
        #: O(n_cpus) per snooped line.
        self.residency = {}
        self.l1 = []
        self.l2 = []
        for cpu_id in range(config.n_cpus):
            scope = stats.scope(f"cpu{cpu_id}")
            self.l1.append(
                Cache("l1", config.l1_size, config.l1_assoc,
                      config.line_size, scope,
                      registry=self.residency, owner=cpu_id))
            self.l2.append(
                Cache("l2", config.l2_size, config.l2_assoc,
                      config.line_size, scope,
                      registry=self.residency, owner=cpu_id))
        # Per-access constants, resolved once: `access` runs for every
        # simulated load/store, and five attribute hops through the
        # config dataclass cost more than the cache probe itself.
        self._eager = config.detection == "eager"
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency
        self._mem_latency = config.mem_latency
        self._line_size = config.line_size

    def access(self, cpu_id, addr, is_write, now):
        extra = 0
        if is_write and self._eager:
            # Eager machines acquire exclusive ownership on stores; remote
            # copies are invalidated, and the upgrade costs a bus grant if
            # anyone actually held the line.
            extra = self._invalidate_remote(cpu_id, addr, now)
        l1 = self.l1[cpu_id]
        if l1.lookup(addr):
            return self._l1_latency + extra
        if self.l2[cpu_id].lookup(addr):
            l1.insert(addr)
            return self._l2_latency + extra
        # Miss to memory: arbitrate for the bus, transfer the line, pay the
        # DRAM latency, then fill both cache levels.
        l2_latency = self._l2_latency
        done = self.bus.line_transfer(now + l2_latency)
        done += self._mem_latency
        self.l2[cpu_id].insert(addr)
        l1.insert(addr)
        return done - now + extra

    def _invalidate_remote(self, cpu_id, addr, now):
        """Invalidate remote copies of the line holding ``addr``; returns
        the upgrade latency (one bus grant if any copy existed)."""
        holders = self.residency.get(addr - addr % self._line_size)
        if not holders:
            return 0
        remote = [c for c in holders if c.owner != cpu_id]
        if not remote:
            return 0
        for cache in remote:
            cache.invalidate(addr)
        return self.bus.acquire(now, 1) - now

    def commit_broadcast(self, cpu_id, line_addrs, now):
        """Broadcast the committed write-set over the bus.

        Each line occupies the bus for one transfer; remote caches snoop
        and invalidate their copies (so later remote reads miss and fetch
        the committed data).
        """
        lines = sorted({line_of(a, self._config.line_size)
                        for a in line_addrs})
        if not lines:
            return 1
        done = self.bus.acquire(
            now, self._config.line_transfer_cycles * len(lines))
        residency = self.residency
        for line in lines:
            holders = residency.get(line)
            if not holders:
                continue
            for cache in [c for c in holders if c.owner != cpu_id]:
                cache.invalidate(line)
        return done - now

    def arbitrate_commit(self, now):
        """Winning the commit token costs one bus arbitration."""
        done = self.bus.acquire(now, 1)
        return done - now

    def flush_stats(self):
        for cache in self.l1:
            cache.flush_stats()
        for cache in self.l2:
            cache.flush_stats()

    def snapshot_state(self):
        """Bus, cache residency, and the shared residency registry.

        The registry maps lines to *cache objects*; it is captured as
        (owner, level-name) identities so a restore can rebuild it
        against the restoring machine's own cache objects in the same
        insertion order (snoop order is deterministic because of it)."""
        return (
            self.bus.snapshot_state(),
            tuple(cache.snapshot_state() for cache in self.l1),
            tuple(cache.snapshot_state() for cache in self.l2),
            tuple(
                (line, tuple((cache.owner, cache.name)
                             for cache in holders))
                for line, holders in self.residency.items()
            ),
        )

    def restore_state(self, saved):
        bus, l1, l2, residency = saved
        self.bus.restore_state(bus)
        for cache, cache_saved in zip(self.l1, l1):
            cache.restore_state(cache_saved)
        for cache, cache_saved in zip(self.l2, l2):
            cache.restore_state(cache_saved)
        self.residency.clear()
        for line, holders in residency:
            rebuilt = {}
            for owner, name in holders:
                level = self.l1 if name == "l1" else self.l2
                rebuilt[level[owner]] = True
            self.residency[line] = rebuilt


def make_memory_model(config, stats):
    """Build the memory model selected by ``config.timing`` and
    ``config.coherence``."""
    if not config.timing:
        return FlatMemory()
    if config.coherence == "msi":
        from repro.memsys.coherence import MsiMemory

        return MsiMemory(config, stats)
    return HierarchicalMemory(config, stats)
