"""Set-associative cache timing model.

These caches model *timing and capacity only*: they track which line
addresses are resident and in what LRU order, while data values live in
the :class:`~repro.memsys.memory.MemoryImage` (plus the HTM's speculative
buffers).  Keeping data out of the timing model lets the same cache stand
under both versioning schemes without duplicating state.
"""

from __future__ import annotations

from collections import OrderedDict


class Cache:
    """An LRU set-associative cache of line addresses.

    Every simulated load probes :meth:`lookup`, so the line/set math is
    inlined and the event counters are plain integer attributes bumped
    in place; :meth:`flush_stats` folds them into the stats tree (the
    engine calls it when a run ends, so finished machines always expose
    the usual ``l1.hits``-style counters).
    """

    def __init__(self, name, size_bytes, assoc, line_size, stats,
                 registry=None, owner=None):
        self.name = name
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size_bytes // (line_size * assoc)
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self._stats = stats.scope(name)
        #: Optional shared residency registry (line -> dict of caches
        #: holding it, used as an insertion-ordered set so snoop order
        #: is deterministic), kept exact by insert/invalidate/evict so
        #: the memory model can snoop only the caches that hold a line
        #: instead of sweeping every cache in the machine.
        self._registry = registry
        #: The registry key identifying this cache's CPU (snoops skip
        #: the requester's own caches).
        self.owner = owner
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self.n_fills = 0
        self.n_invalidations = 0

    def flush_stats(self):
        """Fold the locally-accumulated event counts into the stats tree
        and reset them, so repeated flushes (or multi-run reuse) never
        double-count.  Zero counts are skipped so the tree grows a key
        only for events that actually happened, exactly as per-event
        ``add`` calls would."""
        stats = self._stats
        for name, count in (("hits", self.n_hits),
                            ("misses", self.n_misses),
                            ("evictions", self.n_evictions),
                            ("fills", self.n_fills),
                            ("invalidations", self.n_invalidations)):
            if count:
                stats.add(name, count)
        self.n_hits = self.n_misses = 0
        self.n_evictions = self.n_fills = self.n_invalidations = 0

    def _set_for(self, line_addr):
        return self._sets[(line_addr // self.line_size) % self.n_sets]

    def lookup(self, addr):
        """True (and LRU-touch) if the line holding ``addr`` is resident."""
        line_size = self.line_size
        line = addr - addr % line_size
        cache_set = self._sets[(line // line_size) % self.n_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.n_hits += 1
            return True
        self.n_misses += 1
        return False

    def insert(self, addr):
        """Bring the line holding ``addr`` in; return the evicted line
        address, or ``None`` if no eviction was needed."""
        line_size = self.line_size
        line = addr - addr % line_size
        cache_set = self._sets[(line // line_size) % self.n_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        victim = None
        registry = self._registry
        if len(cache_set) >= self.assoc:
            victim, _ = cache_set.popitem(last=False)
            self.n_evictions += 1
            if registry is not None:
                holders = registry.get(victim)
                if holders is not None:
                    holders.pop(self, None)
                    if not holders:
                        del registry[victim]
        cache_set[line] = True
        self.n_fills += 1
        if registry is not None:
            holders = registry.get(line)
            if holders is None:
                registry[line] = {self: True}
            else:
                holders[self] = True
        return victim

    def invalidate(self, addr):
        """Drop the line holding ``addr`` if resident; True if it was."""
        line_size = self.line_size
        line = addr - addr % line_size
        cache_set = self._sets[(line // line_size) % self.n_sets]
        if line in cache_set:
            del cache_set[line]
            self.n_invalidations += 1
            registry = self._registry
            if registry is not None:
                holders = registry.get(line)
                if holders is not None:
                    holders.pop(self, None)
                    if not holders:
                        del registry[line]
            return True
        return False

    def snapshot_state(self):
        """Residency (in LRU order) plus the deferred event counters.

        The shared registry is *not* captured here — the memory model
        owns it and restores it machine-wide in one pass."""
        return (
            tuple(tuple(cache_set) for cache_set in self._sets),
            (self.n_hits, self.n_misses, self.n_evictions,
             self.n_fills, self.n_invalidations),
        )

    def restore_state(self, saved):
        sets, counters = saved
        self._sets = [
            OrderedDict((line, True) for line in lines) for lines in sets]
        (self.n_hits, self.n_misses, self.n_evictions,
         self.n_fills, self.n_invalidations) = counters

    def contains(self, addr):
        """Presence check without touching LRU state or stats."""
        line = addr - addr % self.line_size
        return line in self._set_for(line)

    def resident_lines(self):
        """All resident line addresses (diagnostics / tests)."""
        lines = []
        for cache_set in self._sets:
            lines.extend(cache_set)
        return lines
