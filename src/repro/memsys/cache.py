"""Set-associative cache timing model.

These caches model *timing and capacity only*: they track which line
addresses are resident and in what LRU order, while data values live in
the :class:`~repro.memsys.memory.MemoryImage` (plus the HTM's speculative
buffers).  Keeping data out of the timing model lets the same cache stand
under both versioning schemes without duplicating state.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.addr import line_of


class Cache:
    """An LRU set-associative cache of line addresses."""

    def __init__(self, name, size_bytes, assoc, line_size, stats):
        self.name = name
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size_bytes // (line_size * assoc)
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self._stats = stats.scope(name)

    def _set_for(self, line_addr):
        return self._sets[(line_addr // self.line_size) % self.n_sets]

    def lookup(self, addr):
        """True (and LRU-touch) if the line holding ``addr`` is resident."""
        line = line_of(addr, self.line_size)
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            self._stats.add("hits")
            return True
        self._stats.add("misses")
        return False

    def insert(self, addr):
        """Bring the line holding ``addr`` in; return the evicted line
        address, or ``None`` if no eviction was needed."""
        line = line_of(addr, self.line_size)
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim, _ = cache_set.popitem(last=False)
            self._stats.add("evictions")
        cache_set[line] = True
        self._stats.add("fills")
        return victim

    def invalidate(self, addr):
        """Drop the line holding ``addr`` if resident; True if it was."""
        line = line_of(addr, self.line_size)
        cache_set = self._set_for(line)
        if line in cache_set:
            del cache_set[line]
            self._stats.add("invalidations")
            return True
        return False

    def contains(self, addr):
        """Presence check without touching LRU state or stats."""
        line = line_of(addr, self.line_size)
        return line in self._set_for(line)

    def resident_lines(self):
        """All resident line addresses (diagnostics / tests)."""
        lines = []
        for cache_set in self._sets:
            lines.extend(cache_set)
        return lines
