"""An MSI snooping-coherence timing model (optional substrate upgrade).

The paper's machines keep caches coherent over the bus and reuse the
protocol for conflict detection (§2.2).  The default
:class:`~repro.memsys.hierarchy.HierarchicalMemory` abstracts coherence
to "misses go to memory, commits broadcast-invalidate"; this module
models the protocol itself:

* per-line **M/S/I** state per CPU, tracked machine-wide;
* read misses served **cache-to-cache** from a Modified owner (a bus
  transfer, cheaper than DRAM) with the owner downgrading to Shared;
* write hits on Shared lines paying a bus **upgrade** that invalidates
  the other sharers;
* evictions of Modified lines writing back over the bus.

Select with ``SystemConfig(coherence="msi")``; the default ("simple")
keeps the original model.  Functional results are identical either way —
this is timing fidelity only — which the ablation benchmark checks.
"""

from __future__ import annotations

from repro.common.addr import line_of
from repro.memsys.hierarchy import HierarchicalMemory

MODIFIED = "M"
SHARED = "S"
# Invalid = absence from the state map.


class MsiMemory(HierarchicalMemory):
    """MSI over the private two-level hierarchies of the base model."""

    def __init__(self, config, stats):
        super().__init__(config, stats)
        #: line -> {cpu: MODIFIED | SHARED}
        self._states = {}
        self._msi_stats = stats.scope("msi")

    # -- state helpers -----------------------------------------------------

    def _holders(self, line):
        return self._states.setdefault(line, {})

    def _owner(self, line):
        for cpu, state in self._holders(line).items():
            if state == MODIFIED:
                return cpu
        return None

    def _drop(self, line, cpu):
        holders = self._holders(line)
        holders.pop(cpu, None)

    # -- the access path ------------------------------------------------------

    def access(self, cpu_id, addr, is_write, now):
        config = self._config
        line = line_of(addr, config.line_size)
        holders = self._holders(line)
        state = holders.get(cpu_id)
        resident = self.l1[cpu_id].lookup(addr) or self.l2[cpu_id].lookup(addr)
        if resident and state is None:
            # The timing caches kept the line but coherence lost track
            # (e.g. after external invalidation bookkeeping): treat as miss.
            resident = False

        if not is_write:
            if resident:
                self._msi_stats.add("read_hits")
                return config.l1_latency if self.l1[cpu_id].contains(addr) \
                    else config.l2_latency
            return self._read_miss(cpu_id, line, addr, now)

        # Write.
        if resident and state == MODIFIED:
            self._msi_stats.add("write_hits")
            return config.l1_latency if self.l1[cpu_id].contains(addr) \
                else config.l2_latency
        if resident and state == SHARED:
            # Upgrade: invalidate the other sharers over the bus.
            done = self.bus.acquire(now, 1)
            self._invalidate_others(line, cpu_id)
            holders[cpu_id] = MODIFIED
            self._msi_stats.add("upgrades")
            return done - now + config.l1_latency
        return self._write_miss(cpu_id, line, addr, now)

    def _read_miss(self, cpu_id, line, addr, now):
        config = self._config
        owner = self._owner(line)
        if owner is not None and owner != cpu_id:
            # Cache-to-cache transfer; the owner downgrades to Shared.
            done = self.bus.line_transfer(now + config.l2_latency)
            self._holders(line)[owner] = SHARED
            self._msi_stats.add("cache_to_cache")
            latency = done - now
        else:
            done = self.bus.line_transfer(now + config.l2_latency)
            latency = done - now + config.mem_latency
            self._msi_stats.add("memory_reads")
        self._fill(cpu_id, addr, now)
        self._holders(line)[cpu_id] = SHARED
        return latency

    def _write_miss(self, cpu_id, line, addr, now):
        config = self._config
        owner = self._owner(line)
        if owner is not None and owner != cpu_id:
            done = self.bus.line_transfer(now + config.l2_latency)
            latency = done - now
            self._msi_stats.add("cache_to_cache")
        else:
            done = self.bus.line_transfer(now + config.l2_latency)
            latency = done - now + config.mem_latency
            self._msi_stats.add("memory_reads")
        self._invalidate_others(line, cpu_id)
        self._fill(cpu_id, addr, now)
        self._holders(line)[cpu_id] = MODIFIED
        return latency

    def _fill(self, cpu_id, addr, now):
        """Bring the line into both cache levels, writing back any
        Modified victim."""
        for cache in (self.l2[cpu_id], self.l1[cpu_id]):
            victim = cache.insert(addr)
            if victim is not None and cache is self.l2[cpu_id]:
                holders = self._holders(victim)
                if holders.get(cpu_id) == MODIFIED:
                    # Dirty eviction: write back over the bus.
                    self.bus.line_transfer(now)
                    self._msi_stats.add("writebacks")
                self._drop(victim, cpu_id)

    def _invalidate_others(self, line, cpu_id):
        holders = self._holders(line)
        for other in [c for c in holders if c != cpu_id]:
            del holders[other]
            self.l1[other].invalidate(line)
            self.l2[other].invalidate(line)
            self._msi_stats.add("invalidations")

    # -- snapshot support --------------------------------------------------------

    def snapshot_state(self):
        return (
            super().snapshot_state(),
            {line: dict(holders)
             for line, holders in self._states.items()},
        )

    def restore_state(self, saved):
        base, states = saved
        super().restore_state(base)
        self._states = {
            line: dict(holders) for line, holders in states.items()}

    # -- HTM hooks --------------------------------------------------------------

    def commit_broadcast(self, cpu_id, line_addrs, now):
        """The committed write-set claims ownership line by line."""
        lines = sorted({line_of(a, self._config.line_size)
                        for a in line_addrs})
        if not lines:
            return 1
        done = self.bus.acquire(
            now, self._config.line_transfer_cycles * len(lines))
        for line in lines:
            self._invalidate_others(line, cpu_id)
            if self._holders(line).get(cpu_id) is not None:
                self._holders(line)[cpu_id] = MODIFIED
        return done - now
