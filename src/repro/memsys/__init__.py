"""Memory-system substrate: memory image, caches, bus, timing models."""

from repro.memsys.bus import Bus
from repro.memsys.coherence import MsiMemory
from repro.memsys.cache import Cache
from repro.memsys.hierarchy import (
    FlatMemory,
    HierarchicalMemory,
    MemoryModel,
    make_memory_model,
)
from repro.memsys.memory import MemoryImage

__all__ = [
    "Bus",
    "MsiMemory",
    "Cache",
    "FlatMemory",
    "HierarchicalMemory",
    "MemoryImage",
    "MemoryModel",
    "make_memory_model",
]
