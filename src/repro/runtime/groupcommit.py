"""Group commit: coordinated atomicity across transactions (paper §4.1).

"[Two-phase commit] also enables the transaction to coordinate with
other code before it commits.  ...we can coordinate multiple
transactions collaborating on the same task for group commit [20]."

A :class:`CommitGroup` of N members makes their commits atomic *as a
set*: every member runs its own transaction on its own CPU, validates —
at which point it can no longer be rolled back — and then waits, between
``xvalidate`` and ``xcommit``, until all N members have validated.  Only
then do they all commit.  An observer therefore never sees a partial
task: either no member has committed or, as soon as any has, the rest
are validated and un-abortable.

Arrival is an *open-nested* transaction — exactly §4.1's rule that code
between ``xvalidate`` and ``xcommit`` "should be wrapped within
open-nested transactions" when it touches shared data (a bare imld/imst
read-modify-write would lose concurrent arrivals).  Only the wait spin
uses untracked ``imld``.  Members must touch pairwise-disjoint data; a
conflicting pair could never both be admitted to the validated set
(§6.1) and the group would deadlock, so the runtime detects the stall
and raises.
"""

from __future__ import annotations

from repro.common.errors import ReproError


class CommitGroup:
    """Coordinates one N-member group commit."""

    #: Spin quantum while waiting for the rest of the group.
    POLL_CYCLES = 10
    #: Give up after this many polls (a conflicting pair would deadlock
    #: in xvalidate otherwise).
    POLL_LIMIT = 5_000

    def __init__(self, runtime, arena, members):
        if members < 1:
            raise ReproError("a commit group needs >= 1 members")
        self.runtime = runtime
        self.members = members
        self.validated_addr = arena.alloc_word(0, isolate=True)
        self.generation_addr = arena.alloc_word(0, isolate=True)

    def atomic(self, t, body, *args):
        """Run ``body`` as this thread's member transaction; its commit
        happens together with the rest of the group."""
        runtime = self.runtime

        def member(t):
            result = yield from body(t, *args)
            yield from runtime.register_commit_handler(
                t, self._rendezvous_handler)
            return result

        result = yield from runtime.atomic(t, member)
        return result

    def _rendezvous_handler(self, t):
        """Commit handler: runs after xvalidate — announce (open-nested,
        per §4.1), then wait for the whole group before allowing xcommit
        (a sense-reversing barrier, reusable across rounds)."""
        runtime = self.runtime

        def arrive(t):
            generation = yield t.load(self.generation_addr)
            count = yield t.load(self.validated_addr)
            if count + 1 >= self.members:
                # Last validator releases the round.
                yield t.store(self.validated_addr, 0)
                yield t.store(self.generation_addr, generation + 1)
                return generation, True
            yield t.store(self.validated_addr, count + 1)
            return generation, False

        generation, released = yield from runtime.atomic_open(t, arrive)
        t.stats.add("groupcommit.arrivals")
        if released:
            return
        polls = 0
        while True:
            current = yield t.imld(self.generation_addr)
            if current != generation:
                return
            polls += 1
            if polls > self.POLL_LIMIT:
                arrived = yield t.imld(self.validated_addr)
                raise ReproError(
                    "commit group never completed: members conflict or "
                    f"are missing (validated {arrived}/{self.members})")
            yield t.alu(self.POLL_CYCLES)
