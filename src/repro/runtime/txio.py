"""Transactional I/O (paper Sections 3, 5, and 7.2).

The paper's recipe for request/reply I/O inside transactions:

* **Output** — buffer the data in thread-private memory and register a
  *commit handler* that performs the real system call between
  ``xvalidate`` and ``xcommit``.  If the transaction violates, the
  private buffer is discarded with the rest of the speculative state
  (here: the buffer length word is written with ``imst``, whose undo
  record restores it on rollback).

* **Input** — perform the system call immediately, inside an
  *open-nested* transaction (so no dependences arise through system
  state like the file position), and register *violation and abort
  handlers* that restore the file position if the user transaction rolls
  back.

Files are simulated devices: contents live host-side (the "disk"), while
the shared metadata every thread contends on — the file position and
size — lives in simulated shared memory, so system-state conflicts are
real conflicts.
"""

from __future__ import annotations

from repro.common.errors import ReproError


class SimFile:
    """A simulated file: host-side contents, shared-memory metadata."""

    def __init__(self, arena, name, initial=()):
        self.name = name
        self.data = list(initial)          # the device
        self.pos_addr = arena.alloc_word(0, isolate=True)
        self.size_addr = arena.alloc_word(len(self.data), isolate=True)

    # Device-side accessors (no simulated cost; the syscall wrappers
    # charge syscall_cycles around them).

    def device_read(self, pos, n):
        return self.data[pos:pos + n]

    def device_append(self, items):
        self.data.extend(items)


class TxIo:
    """The transactional I/O library bound to one runtime."""

    #: Private-buffer capacity in words (per thread per file).
    BUFFER_WORDS = 256

    def __init__(self, runtime):
        self.runtime = runtime
        self.machine = runtime.machine
        self._buffers = {}  # (cpu_id, file) -> (len_addr, flag_addr, base)
        #: Small dense per-library file handles.  Handler-stack entries
        #: carry the handle (they end up in simulated memory, so the key
        #: must be schedule-deterministic — ``id(f)`` would leak a host
        #: pointer into the memory image).
        self._file_keys = {}
        self._files_by_key = {}

    def _file_key(self, f):
        """The deterministic file handle (assigned in first-use order)."""
        key = self._file_keys.get(id(f))
        if key is None:
            key = len(self._files_by_key) + 1
            self._file_keys[id(f)] = key
            self._files_by_key[key] = f
        return key

    def _buffer_for(self, t, f):
        """Lazily allocate the (thread, file) private output buffer."""
        key = (t.cpu_id, self._file_key(f))
        if key not in self._buffers:
            rt = t.rt
            len_addr = rt.alloc_private(1)
            flag_addr = rt.alloc_private(1)
            base = rt.alloc_private(self.BUFFER_WORDS, line_align=True)
            self._buffers[key] = (len_addr, flag_addr, base, f)
        return self._buffers[key]

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def write(self, t, f, items):
        """Transactional write: buffer ``items``; real output at commit.

        Outside a transaction, writes through immediately.
        """
        rt = self.runtime
        if t.depth() == 0:
            yield from self._syscall_append(t, f, list(items))
            return
        from repro.common.params import WORD_SIZE

        len_addr, flag_addr, base, _ = self._buffer_for(t, f)
        n = yield t.imld(len_addr)
        if n + len(items) > self.BUFFER_WORDS:
            raise ReproError(f"tx write buffer overflow on {f.name}")
        for i, item in enumerate(items):
            # imst: immediate stores with undo, so a rollback retracts the
            # buffered output automatically (paper §7.2: "the local buffer
            # is automatically discarded").
            yield t.imst(base + (n + i) * WORD_SIZE, item)
        yield t.imst(len_addr, n + len(items))
        registered = yield t.imld(flag_addr)
        if not registered:
            # The flag is written with imst too: if this transaction rolls
            # back, the registration is discarded with the handler stack
            # and the flag's undo record re-arms it for the retry.
            yield t.imst(flag_addr, 1)
            yield from rt.register_commit_handler(
                t, self._flush_handler, len_addr, flag_addr, base,
                self._file_key(f))
        t.stats.add("txio.writes")

    def _flush_handler(self, t, len_addr, flag_addr, base, file_key):
        """Commit handler: perform the buffered output as one syscall."""
        from repro.common.params import WORD_SIZE

        f = self._buffers[(t.cpu_id, file_key)][3]
        n = yield t.imld(len_addr)
        items = []
        for i in range(n):
            items.append((yield t.imld(base + i * WORD_SIZE)))
        yield from self._syscall_append(t, f, items)
        # Permanent resets: the output happened.
        yield t.imstid(len_addr, 0)
        yield t.imstid(flag_addr, 0)
        t.stats.add("txio.flushes")

    def _syscall_append(self, t, f, items):
        """The write(2) analogue, run as an open-nested transaction so
        system state (file size) creates no dependence on the user
        transaction."""
        rt = self.runtime

        def update_metadata(t):
            size = yield t.load(f.size_addr)
            yield t.store(f.size_addr, size + len(items))

        # The kernel-crossing cost is per-CPU work; only the tiny shared
        # metadata update runs (open-nested) transactionally and can
        # retry.  The device mutation is performed exactly once, after
        # the metadata transaction has committed.
        yield t.alu(self.machine.config.syscall_cycles)
        hooks = getattr(self.machine, "fault_hooks", None)
        if hooks is not None:
            yield from hooks.on_io(t, f, "append", items)
        if t.depth() == 0:
            yield from rt.atomic(t, update_metadata)
        else:
            yield from rt.atomic_open(t, update_metadata)
        f.device_append(items)
        t.stats.add("txio.syscall_writes")

    # ------------------------------------------------------------------
    # Input
    # ------------------------------------------------------------------

    def read(self, t, f, n, open_nested=True):
        """Transactional read.

        ``open_nested=True`` (the paper's scheme, §5): the system call
        runs immediately in an open-nested transaction — no dependence
        arises through the file position — and violation/abort handlers
        compensate by restoring the position if the user transaction
        rolls back.  Exactly-once for the common request/reply pattern
        (one logical reader per file); concurrent readers of one stream
        can observe duplicates if compensations interleave with commits.

        ``open_nested=False``: the position update is ordinary
        transactional state of the user transaction.  Rollback is
        automatic and concurrent readers partition the stream
        exactly-once — at the cost of the inter-consumer conflicts the
        open-nested scheme exists to avoid.
        """
        rt = self.runtime
        yield t.alu(self.machine.config.syscall_cycles)
        hooks = getattr(self.machine, "fault_hooks", None)
        if hooks is not None:
            yield from hooks.on_io(t, f, "read", None)

        def syscall(t):
            pos = yield t.load(f.pos_addr)
            items = f.device_read(pos, n)
            yield t.store(f.pos_addr, pos + len(items))
            return pos, items

        if t.depth() == 0:
            pos, items = yield from rt.atomic(t, syscall)
            return items
        if not open_nested:
            pos, items = yield from syscall(t)
            t.stats.add("txio.reads_closed")
            return items
        pos, items = yield from rt.atomic_open(t, syscall)
        key = self._file_key(f)
        yield from rt.register_violation_handler(
            t, self._restore_pos_handler, key, pos)
        yield from rt.register_abort_handler(
            t, self._restore_pos_handler, key, pos)
        t.stats.add("txio.reads")
        return items

    def _restore_pos_handler(self, t, file_key, pos):
        """Violation/abort handler: compensate the early read (lseek)."""
        f = self._files_by_key[file_key]
        rt = self.runtime

        def syscall(t):
            yield t.alu(self.machine.config.syscall_cycles)
            yield t.store(f.pos_addr, pos)

        yield from rt.atomic_open(t, syscall)
        t.stats.add("txio.compensations")
