"""Published software-convention overheads (paper Section 7).

The paper's carefully tuned assembly costs, which this runtime's
instruction sequences are calibrated to match exactly:

* starting a transaction (TCB allocation + ``xbegin``): **6 instructions**
* committing with no registered handlers: **10 instructions**
* rolling back with no registered handlers: **6 instructions**
* registering a handler with no arguments: **9 instructions**

The benchmark ``benchmarks/test_table3_overheads.py`` measures these from
the running machine and asserts the published values.
"""

XBEGIN_INSTRUCTIONS = 6
COMMIT_NO_HANDLER_INSTRUCTIONS = 10
ROLLBACK_NO_HANDLER_INSTRUCTIONS = 6
REGISTER_HANDLER_INSTRUCTIONS = 9

#: Extra instructions per handler argument at registration (one immediate
#: store to push the argument word).
REGISTER_ARG_INSTRUCTIONS = 1
