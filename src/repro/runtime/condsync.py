"""Conditional synchronization: the Atomos-style watch/retry scheduler
(paper Section 5 and Figure 3).

A dedicated *scheduler thread* runs a transaction that never commits.  It
keeps a special shared word, ``schedcomm``, in its read-set, and registers
a violation handler.  A thread that wants to wait for a value to change:

1. registers a *cancel* violation handler (so that if its own transaction
   is violated before it parks, the scheduler forgets its watches);
2. ``watch(addr)`` — in an **open-nested** transaction, enqueues
   ``(tid, addr)`` on the scheduler command queue and writes
   ``schedcomm``, whose commit violates the scheduler;
3. waits for the scheduler's acknowledgement (closing the window between
   discarding its own read-set and the scheduler adopting the watch — the
   waiter's read-set covers the watched data until the hand-off is
   complete, so no wakeup is lost);
4. ``retry()`` — aborts with the retry code; the atomic wrapper parks the
   thread (yields the CPU).

The scheduler's violation handler distinguishes two cases by ``xvaddr``:
a poke on ``schedcomm`` (drain the command queue, adopt watch addresses
into the scheduler's read-set by loading them, acknowledge) versus a
write to a watched address (look up the waiting threads and wake them,
paper: "add the proper thread to the run queue").  Either way it returns
RESUME: the scheduler transaction is never rolled back.
"""

from __future__ import annotations

from repro.common.addr import line_of
from repro.mem.queue import BoundedQueue
from repro.runtime.core import RESUME, RETRY_CODE
from repro.sim import ops as O

#: Command-queue address meaning "cancel all of this thread's watches".
CANCEL = -1


class CondScheduler:
    """The conditional-synchronization runtime for one machine."""

    def __init__(self, runtime, arena, queue_capacity=64):
        self.runtime = runtime
        self.machine = runtime.machine
        self.arena = arena
        self.schedcomm_addr = arena.alloc_word(0, isolate=True)
        self.commands = BoundedQueue(arena, queue_capacity, item_words=2)
        #: Per-CPU acknowledgement counters (scheduler-written, isolated
        #: lines, read by waiters with imld).
        self.ack_addrs = [
            arena.alloc_word(0, isolate=True)
            for _ in range(self.machine.config.n_cpus)
        ]
        #: Per-CPU sent-command counters, incremented *inside* the command
        #: open transaction so an aborted enqueue never counts.
        self.sent_addrs = [
            arena.alloc_word(0, isolate=True)
            for _ in range(self.machine.config.n_cpus)
        ]
        #: Scheduler-private bookkeeping (models the wait/run queues of
        #: Figure 3, which live in the scheduler's own memory).
        self._waiting = {}        # watched unit -> set of cpu ids
        self._watches_of = {}     # cpu id -> set of watched units
        self._cmd_seq = [0] * self.machine.config.n_cpus
        self._adopted = set()     # units already in the scheduler read-set
        self.scheduler_cpu = None

    def _unit(self, addr):
        return line_of(addr, self.machine.config.line_size)

    # ------------------------------------------------------------------
    # Scheduler thread
    # ------------------------------------------------------------------

    def spawn_scheduler(self, cpu_id=None):
        """Start the scheduler as a daemon thread; returns its CPU."""
        cpu = self.runtime.spawn(self._scheduler_program, cpu_id=cpu_id,
                                 daemon=True)
        self.scheduler_cpu = cpu.cpu_id
        return cpu

    def _scheduler_program(self, t):
        rt = self.runtime

        def body(t):
            yield from rt.register_violation_handler(t, self._sched_vh)
            yield t.load(self.schedcomm_addr)  # adopt schedcomm
            while True:
                # Poll the command queue too (catches pokes sent before
                # schedcomm entered our read-set, and acts as Figure 3's
                # "process run and wait queues" loop body).
                pending = yield from self.commands.im_nonempty(t)
                if pending:
                    yield from self._drain_commands(t)
                yield t.alu(25)

        yield from rt.atomic(t, body)

    def _sched_vh(self, t):
        """The scheduler's violation handler (Figure 3's
        ``schedviohandler``)."""
        vaddr = t.isa.xvaddr
        yield t.alu()
        if vaddr == self._unit(self.schedcomm_addr):
            # Drain only when interrupted at the scheduler transaction's
            # own level: watch adoption must load into the *level-1*
            # read-set.  If this handler interrupted one of our own
            # open-nested queue transactions (depth > 1), adopted reads
            # would land in — and vanish with — that transaction, so we
            # leave the commands queued; the main loop's poll drains them
            # moments later.
            if t.depth() == 1:
                yield from self._drain_commands(t)
        else:
            waiters = sorted(self._waiting.pop(vaddr, ()))
            for cpu_id in waiters:
                self._watches_of.get(cpu_id, set()).discard(vaddr)
                yield t.alu(2)  # move thread from wait to run queue
                yield O.Wake(cpu_id)
                t.stats.add("condsync.wakeups")
        return RESUME

    def _drain_commands(self, t):
        """Dequeue and apply every pending command, then acknowledge."""
        rt = self.runtime
        acked = set()
        while True:
            def dequeue(t):
                item = yield from self.commands.try_dequeue(t)
                return item

            item = yield from rt.atomic_open(t, dequeue)
            if item is None:
                break
            cpu_id, addr = item
            if addr == CANCEL:
                for unit in self._watches_of.pop(cpu_id, set()):
                    watchers = self._waiting.get(unit)
                    if watchers:
                        watchers.discard(cpu_id)
                        if not watchers:
                            del self._waiting[unit]
                yield t.alu(2)
                t.stats.add("condsync.cancels")
            else:
                unit = self._unit(addr)
                self._waiting.setdefault(unit, set()).add(cpu_id)
                self._watches_of.setdefault(cpu_id, set()).add(unit)
                if unit not in self._adopted:
                    self._adopted.add(unit)
                # Adopt the address into the scheduler's read-set: this is
                # the load that makes future writers violate us.
                yield t.load(addr)
                t.stats.add("condsync.watches")
            acked.add(cpu_id)
            self._cmd_seq[cpu_id] += 1
        for cpu_id in acked:
            # Acknowledge with an idempotent immediate store: permanent,
            # no conflict tracking, read by the waiter with imld.
            yield t.imstid(self.ack_addrs[cpu_id], self._cmd_seq[cpu_id])

    # ------------------------------------------------------------------
    # Waiter-side API (used inside a transaction wrapped by self.atomic)
    # ------------------------------------------------------------------

    def atomic(self, t, body, *args):
        """Like ``runtime.atomic`` but understands ``retry``: on the retry
        abort code the thread parks until the scheduler wakes it, then
        re-executes the body (Figure 3's consumer/producer pattern)."""

        def policy(code):
            return "park" if code == RETRY_CODE else "raise"

        result = yield from self.runtime.atomic(
            t, body, *args, abort_policy=policy)
        return result

    def register_cancel(self, t):
        """Register the *cancel* violation handler (Figure 3): if this
        transaction is violated, tell the scheduler to drop its watches."""
        yield from self.runtime.register_violation_handler(
            t, self._cancel_handler)

    def _send_command(self, t, addr):
        """Enqueue ``(tid, addr)``, bump the per-CPU sent counter, and
        poke ``schedcomm`` — all in one open-nested transaction, so an
        aborted attempt leaves no trace."""
        rt = self.runtime

        def cmd(t):
            yield from self.commands.enqueue(t, [t.cpu_id, addr])
            sent = yield t.load(self.sent_addrs[t.cpu_id])
            yield t.store(self.sent_addrs[t.cpu_id], sent + 1)
            value = yield t.load(self.schedcomm_addr)
            yield t.store(self.schedcomm_addr, value + 1)

        yield from rt.atomic_open(t, cmd)

    def _cancel_handler(self, t):
        yield from self._send_command(t, CANCEL)
        # Fall through: the dispatcher proceeds to roll back and restart.

    def watch(self, t, addr):
        """Ask the scheduler to watch ``addr``; returns once the scheduler
        has adopted it (so the watch hand-off cannot lose a wakeup)."""
        yield from self._send_command(t, addr)
        # Spin (with untracked loads) until the scheduler has processed at
        # least as many of our commands as we have committed.  Our own
        # read-set still covers the watched data throughout, so a write
        # racing with this hand-off violates us and the cancel handler
        # cleans up.
        target = yield t.imld(self.sent_addrs[t.cpu_id])
        while True:
            ack = yield t.imld(self.ack_addrs[t.cpu_id])
            if ack >= target:
                break
            yield t.alu(5)
        t.stats.add("condsync.watch_calls")

    def cancel_watches(self, t):
        """Drop all of this thread's watches (housekeeping for threads
        that stop waiting for good).  Valid inside or outside a
        transaction."""
        if t.depth() == 0:
            rt = self.runtime

            def cmd(t):
                yield from self.commands.enqueue(t, [t.cpu_id, CANCEL])
                sent = yield t.load(self.sent_addrs[t.cpu_id])
                yield t.store(self.sent_addrs[t.cpu_id], sent + 1)
                value = yield t.load(self.schedcomm_addr)
                yield t.store(self.schedcomm_addr, value + 1)

            yield from rt.atomic(t, cmd)
        else:
            yield from self._send_command(t, CANCEL)

    def retry(self, t):
        """Give up until a watched value changes (parks via the wrapper)."""
        yield from self.runtime.retry(t)
