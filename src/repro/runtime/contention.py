"""Contention management policies (paper Sections 3 and 4.3).

The paper motivates violation handlers with "software control over
conflicts to improve performance and eliminate starvation".  This module
provides the standard policies as reusable pieces that plug into
``runtime.atomic``:

* :class:`ImmediateRetry` — the hardware default (retry at once).
* :class:`ExponentialBackoff` — deterministic, seeded exponential backoff
  with jitter: after the k-th consecutive rollback, spin
  ``base * 2^k (+/- jitter)`` cycles before re-executing.  This is the
  classic starvation-avoidance policy.
* :class:`RetryCap` — give up (surface :class:`TxAborted`) after N
  consecutive rollbacks, so software can fall back (e.g. to the serial
  mode of :meth:`repro.runtime.core.Runtime.atomic`'s
  ``capacity``/fallback path, or an application-level alternative).

Policies are deterministic: randomness comes from a seeded generator per
(cpu, policy), keeping every simulation bit-for-bit reproducible.
"""

from __future__ import annotations

import random


class ContentionPolicy:
    """Interface: decides what a transaction does after a rollback."""

    def reset(self):
        """A transaction committed: clear any per-transaction state."""

    def backoff_cycles(self, attempt):
        """Cycles to wait before re-execution ``attempt`` (1-based =
        first retry).  Return 0 for none, or None to give up (the
        transaction aborts with code ``"retry-cap"``)."""
        raise NotImplementedError


class ImmediateRetry(ContentionPolicy):
    """Retry at once (the conventional-HTM behaviour)."""

    def backoff_cycles(self, attempt):
        return 0


class ExponentialBackoff(ContentionPolicy):
    """Deterministic exponential backoff with jitter."""

    def __init__(self, base=20, factor=2.0, cap=2000, jitter=0.5, seed=1):
        if base < 1 or factor < 1.0 or cap < base:
            raise ValueError("backoff needs base >= 1, factor >= 1, "
                             "cap >= base")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)

    def backoff_cycles(self, attempt):
        ideal = min(self.cap, self.base * (self.factor ** (attempt - 1)))
        if self.jitter:
            spread = ideal * self.jitter
            ideal += self._rng.uniform(-spread, spread)
        return max(1, int(ideal))


class RetryCap(ContentionPolicy):
    """Delegate to an inner policy, but give up after ``max_attempts``."""

    def __init__(self, inner=None, max_attempts=16):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.inner = inner if inner is not None else ImmediateRetry()
        self.max_attempts = max_attempts

    def reset(self):
        self.inner.reset()

    def backoff_cycles(self, attempt):
        if attempt > self.max_attempts:
            return None
        return self.inner.backoff_cycles(attempt)


def run_with_policy(runtime, t, body, *args, policy, open_=False):
    """Run ``body`` atomically under a contention policy.

    A generator: ``result = yield from run_with_policy(...)``.  The
    policy's backoff executes *outside* the hardware transaction — the
    rolled-back transaction has already restarted in place, so the spin
    happens at the restarted level before re-executing the body, which
    is what a violation-handler-driven backoff would do (paper §4.3).
    """
    attempt = 0

    def instrumented(t, *inner_args):
        # Body wrapper so the backoff runs inside the retry loop of
        # runtime.atomic (the spin is part of the restarted transaction).
        nonlocal attempt
        if attempt:
            cycles = policy.backoff_cycles(attempt)
            if cycles is None:
                # Give up: a proper xabort so the hardware transaction
                # terminates cleanly and TxAborted reaches the caller.
                t.stats.add("rt.policy_giveups")
                yield from runtime.abort(t, code="retry-cap")
            if cycles:
                yield t.alu(cycles)
                t.stats.add("rt.backoff_cycles", cycles)
        attempt += 1
        result = yield from body(t, *inner_args)
        return result

    try:
        result = yield from runtime.atomic(t, instrumented, *args,
                                           open_=open_)
    finally:
        policy.reset()
    return result
