"""Software runtime: atomic API, handler ABI, and transactional system
libraries (I/O, conditional synchronization, allocation)."""

from repro.runtime.contention import (
    ContentionPolicy,
    ExponentialBackoff,
    ImmediateRetry,
    RetryCap,
    run_with_policy,
)
from repro.runtime.constructs import RETRY, TxBarrier, or_else, when
from repro.runtime.core import RESUME, RETRY_CODE, Runtime
from repro.runtime.groupcommit import CommitGroup
from repro.runtime.sysclock import SimClock
from repro.runtime import overheads
from repro.runtime.rtstate import RtState

__all__ = [
    "CommitGroup",
    "ContentionPolicy",
    "ExponentialBackoff",
    "ImmediateRetry",
    "RESUME",
    "RETRY",
    "RETRY_CODE",
    "RetryCap",
    "RtState",
    "Runtime",
    "SimClock",
    "TxBarrier",
    "or_else",
    "overheads",
    "run_with_policy",
    "when",
]
