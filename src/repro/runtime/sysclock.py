"""The paper's canonical open-nesting system call: ``time`` (§4.5).

"We can use them within a transaction to perform system calls without
creating frequent conflicts through system state (e.g., time)."

The kernel keeps a clock word in shared memory, updated by a periodic
tick thread.  A transaction that reads the clock *transactionally* puts
the clock line in its read-set — every subsequent tick then violates it,
so long transactions that ask for the time livelock against the clock.
Reading it inside an **open-nested** transaction leaves nothing in the
ancestor's read-set: ticks no longer touch the caller.

(The open-nested read still observes a coherent value: the open
transaction itself would be violated and retried if a tick raced it.)
"""

from __future__ import annotations


class SimClock:
    """A kernel clock: shared time word plus the tick daemon."""

    def __init__(self, runtime, arena, tick_interval=200):
        self.runtime = runtime
        self.arena = arena
        self.tick_interval = tick_interval
        self.time_addr = arena.alloc_word(0, isolate=True)

    def spawn_ticker(self, cpu_id=None):
        """Start the periodic kernel tick as a daemon thread."""
        return self.runtime.spawn(self._ticker, cpu_id=cpu_id, daemon=True)

    def _ticker(self, t):
        runtime = self.runtime
        while True:
            yield t.alu(self.tick_interval)

            def tick(t):
                value = yield t.load(self.time_addr)
                yield t.store(self.time_addr, value + 1)

            yield from runtime.atomic(t, tick)

    # ------------------------------------------------------------------

    def gettime(self, t):
        """The ``time`` system call, safe inside any transaction: an
        open-nested read, so the clock never enters the caller's
        read-set."""
        runtime = self.runtime

        def syscall(t):
            value = yield t.load(self.time_addr)
            return value

        if t.depth() == 0:
            value = yield from runtime.atomic(t, syscall)
        else:
            value = yield from runtime.atomic_open(t, syscall)
        t.stats.add("sysclock.gettime")
        return value

    def gettime_naive(self, t):
        """The anti-pattern: a plain transactional read of the clock.
        Kept for the comparative test/benchmark — every subsequent tick
        violates the calling transaction."""
        value = yield t.load(self.time_addr)
        return value
