"""Per-thread software runtime state.

The authoritative handler-stack *top* pointers are register-cached (plain
attributes here, modelling the registers the paper says hot TCB fields
live in), and are spilled into the TCB frame at ``xbegin`` like saved
registers in an activation record.  A transaction's handler-stack *base*
is, by construction, the top at the moment it began — which makes the
closed-nested commit "merge child handlers into parent" operation the
no-op the paper engineers it to be (the parent simply inherits the child's
top, §4.6).
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.common.params import WORD_SIZE
from repro.isa import tcb


class RtState:
    """Software-managed thread state (handler stacks, scratch heap)."""

    def __init__(self, runtime, t):
        self.runtime = runtime
        self.cpu_id = t.cpu_id

        #: Register-cached handler stack tops (addresses).
        self.ch_top = tcb.handler_stack_base(t.cpu_id, "commit")
        self.vh_top = tcb.handler_stack_base(t.cpu_id, "violation")
        self.ah_top = tcb.handler_stack_base(t.cpu_id, "abort")

        #: Per-level snapshot of the tops at xbegin; index = nesting level.
        #: Level 0 holds the stack bases (the sentinel frame).
        self.bases = {0: (self.ch_top, self.vh_top, self.ah_top)}

        #: Bump pointer for thread-private scratch allocations.
        self._scratch_next = tcb.scratch_base(t.cpu_id)
        self._scratch_end = self._scratch_next + tcb.SCRATCH_BYTES

    # -- handler stack bookkeeping --------------------------------------------

    def snapshot_bases(self, level):
        """Record the tops at ``xbegin`` of ``level``."""
        self.bases[level] = (self.ch_top, self.vh_top, self.ah_top)

    def ch_base_of(self, level):
        return self.bases[level][0]

    def vh_base_of(self, level):
        return self.bases[level][1]

    def ah_base_of(self, level):
        return self.bases[level][2]

    def reset_to(self, level):
        """Rollback/commit of ``level``: drop its handler registrations
        and any deeper levels' snapshots."""
        self.ch_top, self.vh_top, self.ah_top = self.bases[level]
        for deeper in [lvl for lvl in self.bases if lvl > level]:
            del self.bases[deeper]

    def inherit_to_parent(self, level):
        """Closed-nested commit: parent inherits the child's tops (handler
        entries stay on the stacks; only the snapshot is dropped)."""
        self.bases.pop(level, None)

    def bounds_check(self, top, base_kind):
        limit = tcb.handler_stack_base(self.cpu_id, base_kind) + \
            tcb.HANDLER_STACK_BYTES
        if top >= limit:
            raise ReproError(
                f"cpu {self.cpu_id}: {base_kind} handler stack overflow")

    # -- thread-private scratch allocator --------------------------------------

    def alloc_private(self, n_words, line_align=False):
        """Allocate ``n_words`` of thread-private memory; returns the
        address.  Never freed (arena style): runtime structures live for
        the thread's lifetime."""
        if line_align:
            line = self.runtime.machine.config.line_size
            self._scratch_next += (-self._scratch_next) % line
        addr = self._scratch_next
        self._scratch_next += n_words * WORD_SIZE
        if self._scratch_next > self._scratch_end:
            raise ReproError(f"cpu {self.cpu_id}: private scratch exhausted")
        return addr
