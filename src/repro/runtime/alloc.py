"""Transactional memory allocation (paper Section 5).

``malloc`` inside a transaction runs as an **open-nested** transaction —
including the ``brk`` path — so allocator metadata creates no dependences
between user transactions.  For unmanaged languages a violation/abort
handler is registered that frees the block if the user transaction rolls
back; for managed languages (``managed=True``) no handler is needed, as
garbage collection would reclaim the block.

``free`` inside a transaction must be *deferred*: the block can only
really be released once the transaction is known to commit, so it runs as
a commit handler.
"""

from __future__ import annotations


class TxAlloc:
    """The transactional allocation library over a shared heap."""

    def __init__(self, runtime, heap):
        self.runtime = runtime
        self.heap = heap

    def malloc(self, t, n_words, managed=False):
        """Allocate ``n_words`` from the shared heap; returns the address.

        Inside a transaction: open-nested allocation plus compensation
        handlers (unless ``managed``).  Outside: a plain transaction.
        """
        rt = self.runtime

        def do_alloc(t):
            addr = yield from self.heap.malloc(t, n_words)
            return addr

        if t.depth() == 0:
            addr = yield from rt.atomic(t, do_alloc)
            return addr
        addr = yield from rt.atomic_open(t, do_alloc)
        if not managed:
            yield from rt.register_violation_handler(
                t, self._compensate_free, addr)
            yield from rt.register_abort_handler(
                t, self._compensate_free, addr)
        t.stats.add("alloc.mallocs")
        return addr

    def _compensate_free(self, t, addr):
        """Violation/abort handler: undo a committed open-nested malloc."""
        rt = self.runtime

        def do_free(t):
            yield from self.heap.free(t, addr)

        yield from rt.atomic_open(t, do_free)
        t.stats.add("alloc.compensated_frees")

    def free(self, t, addr):
        """Release ``addr``.  Inside a transaction, the release is
        deferred to a commit handler (the block must survive a rollback
        of the surrounding transaction)."""
        rt = self.runtime

        def do_free(t):
            yield from self.heap.free(t, addr)

        if t.depth() == 0:
            yield from rt.atomic(t, do_free)
            return
        yield from rt.register_commit_handler(t, self._deferred_free, addr)
        t.stats.add("alloc.deferred_frees")

    def _deferred_free(self, t, addr):
        """Commit handler: the real free, open-nested."""
        rt = self.runtime

        def do_free(t):
            yield from self.heap.free(t, addr)

        yield from rt.atomic_open(t, do_free)
