"""Transactional memory allocation (paper Section 5).

``malloc`` inside a transaction runs as an **open-nested** transaction —
including the ``brk`` path — so allocator metadata creates no dependences
between user transactions.  For unmanaged languages a violation/abort
handler is registered that frees the block if the user transaction rolls
back; for managed languages (``managed=True``) no handler is needed, as
garbage collection would reclaim the block.

``free`` inside a transaction must be *deferred*: the block can only
really be released once the transaction is known to commit, so it runs as
a commit handler.

The compensation follows DESIGN.md §6b.6: the handlers are registered
*before* the open-nested effect, carrying a thread-private *slot* that
the open transaction arms with the block address via ``imst`` — the
arming commits exactly when the allocation does and is retracted with it,
so every kill window finds the slot either disarmed (no block exists yet)
or armed with the one block to free.  Registering handlers *after* the
open commit would leave a window in which a violation leaks the block.
"""

from __future__ import annotations


class TxAlloc:
    """The transactional allocation library over a shared heap."""

    def __init__(self, runtime, heap):
        self.runtime = runtime
        self.heap = heap

    def malloc(self, t, n_words, managed=False):
        """Allocate ``n_words`` from the shared heap; returns the address.

        Inside a transaction: open-nested allocation plus compensation
        handlers (unless ``managed``).  Outside: a plain transaction.
        """
        rt = self.runtime

        if t.depth() == 0:
            def do_alloc(t):
                addr = yield from self.heap.malloc(t, n_words)
                return addr

            addr = yield from rt.atomic(t, do_alloc)
            return addr

        slot = 0
        if not managed:
            # Arm-before-effect (§6b.6): a fresh private slot, disarmed,
            # then the handlers, then the effect.
            slot = t.rt.alloc_private(1)
            yield t.imstid(slot, 0)
            yield from rt.register_violation_handler(
                t, self._compensate_slot, slot)
            yield from rt.register_abort_handler(
                t, self._compensate_slot, slot)

        def do_alloc(t):
            hooks = getattr(rt.machine, "fault_hooks", None)
            if hooks is not None:
                yield from hooks.on_alloc(t, n_words)
            addr = yield from self.heap.malloc(t, n_words)
            if slot:
                # imst at the open level: permanent iff this open
                # transaction commits — i.e. iff the block really exists.
                yield t.imst(slot, addr)
            return addr

        addr = yield from rt.atomic_open(t, do_alloc)
        t.stats.add("alloc.mallocs")
        return addr

    def _compensate_slot(self, t, slot):
        """Violation/abort handler: free the block the armed slot names.

        The disarm is an ``imst`` *inside* the freeing open transaction,
        so it becomes permanent exactly when the free publishes and is
        retracted with it: a handler walk killed mid-compensation (a new
        violation unwinding this dispatcher, §6b.2) rolls the half-done
        free back *and re-arms the slot*, and the re-invoked walk — or
        the paired abort/violation registration — simply runs the
        compensation again.  A walk that finds the slot already cleared
        (the free committed) does nothing."""
        rt = self.runtime
        addr = yield t.imld(slot)
        if not addr:
            return

        def do_free(t):
            yield t.imst(slot, 0)
            yield from self.heap.free(t, addr)

        yield from rt.atomic_open(t, do_free)
        t.stats.add("alloc.compensated_frees")

    def free(self, t, addr):
        """Release ``addr``.  Inside a transaction, the release is
        deferred to a commit handler (the block must survive a rollback
        of the surrounding transaction)."""
        rt = self.runtime

        def do_free(t):
            yield from self.heap.free(t, addr)

        if t.depth() == 0:
            yield from rt.atomic(t, do_free)
            return
        yield from rt.register_commit_handler(t, self._deferred_free, addr)
        t.stats.add("alloc.deferred_frees")

    def _deferred_free(self, t, addr):
        """Commit handler: the real free, open-nested."""
        rt = self.runtime

        def do_free(t):
            yield from self.heap.free(t, addr)

        yield from rt.atomic_open(t, do_free)
