"""The transactional software runtime (the paper's "software conventions").

The hardware gives us the Table 2 instructions and the handler-dispatch
registers; everything else in Sections 4.2-4.6 — handler stacks, TCB
frame management, the dispatcher code at ``xvhcode``/``xahcode``, commit
handler execution between ``xvalidate`` and ``xcommit`` — is software,
implemented here as simulated code (generators yielding operations, every
one of which costs instructions and cycles on the machine).

Instruction budgets are calibrated to the paper's Section 7 numbers
(:mod:`repro.runtime.overheads`): 6 to start a transaction, 10 to commit
and 6 to roll back without handlers, 9 to register a no-arg handler.

Program-level API (all generator functions used with ``yield from``):

* ``atomic(t, body, *args)`` — run ``body`` as a (closed-nested)
  transaction with automatic restart on violation.
* ``atomic_open(t, body, *args)`` — open-nested transaction.
* ``register_commit_handler / register_violation_handler /
  register_abort_handler`` — paper §4.2-4.4.
* ``abort(t, code)`` — ``xabort``; by default surfaces as
  :class:`~repro.common.errors.TxAborted` outside the atomic block.

Handler stack entry layout (words): ``[code_id, nargs, arg..., nargs]``
— the leading ``nargs`` supports the forward walk used for commit
handlers (registration order, §4.2), the trailing copy supports the
backward walk used for violation/abort handlers (reverse order, §4.3).
"""

from __future__ import annotations

from repro.common.errors import IsaError, TxAborted, TxRollback, TxSignal
from repro.common.params import WORD_SIZE
from repro.htm.system import ACTIVE
from repro.isa import tcb
from repro.isa.dispatch import HandlerOutcome
from repro.isa.state import lowest_level_in_mask
from repro.runtime.rtstate import RtState
from repro.sim import ops as O

#: Return this from a violation/abort handler to resume the interrupted
#: transaction instead of rolling back (the paper's "ignore violation /
#: continue" path, §4.3).
RESUME = "resume"

#: Abort code used by the condsync runtime's ``retry``.
RETRY_CODE = "__retry__"


class Runtime:
    """Machine-wide software runtime; holds the dispatcher code ids."""

    def __init__(self, machine):
        self.machine = machine
        self._vh_id = machine.codereg.register(self._violation_dispatcher)
        self._ah_id = machine.codereg.register(self._abort_dispatcher)
        # Commit handlers have no hardware dispatch; xchcode names the walk
        # code purely so Table 1 state is fully populated.
        self._ch_id = machine.codereg.register(self._commit_walk_marker)

    # ------------------------------------------------------------------
    # Thread bring-up
    # ------------------------------------------------------------------

    def spawn(self, program, *args, cpu_id=None, daemon=False):
        """Run ``program(t, *args)`` as a thread under this runtime."""
        def factory(t):
            return self._thread_main(t, program, args)

        return self.machine.add_thread(factory, cpu_id=cpu_id, daemon=daemon)

    def _thread_main(self, t, program, args):
        t.rt = RtState(self, t)
        t.isa.xvhcode = self._vh_id
        t.isa.xahcode = self._ah_id
        t.isa.xchcode = self._ch_id
        t.isa.xtcbptr_base = tcb.tcb_stack_base(t.cpu_id)
        t.isa.xtcbptr_top = t.isa.xtcbptr_base
        yield t.alu()  # thread initialization
        result = yield from program(t, *args)
        return result

    # ------------------------------------------------------------------
    # Transaction begin / commit (calibrated sequences)
    # ------------------------------------------------------------------

    def begin_tx(self, t, open_=False):
        """TCB allocation + ``xbegin``: 6 instructions (paper §7)."""
        rt = t.rt
        old_depth = t.depth()
        frame = tcb.frame_addr(t.cpu_id, old_depth + 1)
        # Spill the current handler-stack tops into the new frame, like
        # saving registers in an activation record.
        yield t.imstid(frame + tcb.CH_TOP * WORD_SIZE, rt.ch_top)
        yield t.imstid(frame + tcb.VH_TOP * WORD_SIZE, rt.vh_top)
        yield t.imstid(frame + tcb.AH_TOP * WORD_SIZE, rt.ah_top)
        yield t.alu()  # bump xtcbptr_top
        t.isa.xtcbptr_top = frame
        # Mirror the TCB spill in the Python-side snapshot *before*
        # xbegin retires: a violation can be delivered on the very next
        # step after xbegin, before this generator resumes, and the
        # dispatcher must find the new level's bases (the architectural
        # copy already sits in the frame written above; nothing can
        # register handlers in that window, so the tops are still
        # current).
        rt.snapshot_bases(old_depth + 1)
        level = yield O.XBegin(open=open_)
        if level != old_depth + 1:
            # Flattening subsumed this transaction; the real outer
            # transaction's snapshot stays authoritative.
            rt.bases.pop(old_depth + 1, None)
        yield t.alu()  # status-word bookkeeping
        return level

    def commit_tx(self, t):
        """Two-phase commit: ``xvalidate``, commit handlers, ``xcommit``.

        10 instructions when no handlers are registered (paper §7).
        """
        rt = t.rt
        level = t.depth()
        if level < 1:
            raise IsaError("commit_tx outside a transaction")
        flattened = t.xstatus()["level"] != level
        publishes = t.commit_publishes()
        frame = tcb.frame_addr(t.cpu_id, level)
        yield O.XValidate()
        base = yield t.imld(frame + tcb.CH_TOP * WORD_SIZE)
        yield t.alu()  # any commit handlers?
        if publishes:
            yield from self._run_commit_handlers(t, base)
        yield O.XCommit()
        yield t.alu()  # pop xtcbptr_top
        t.isa.xtcbptr_top = tcb.frame_addr(t.cpu_id, t.depth())
        if flattened:
            # Subsumed inner commit: handlers stay registered for the real
            # outer commit; nothing to restore.
            yield t.alu(5)
        elif publishes:
            # Outermost or open-nested commit: commit handlers were
            # consumed; violation/abort handlers are discarded (§4.6).
            rt.reset_to(level)
            yield t.alu(5)  # restore the three tops, status, link
        else:
            # Closed-nested commit: the parent inherits our handler
            # entries simply by keeping the tops (the paper's trivial
            # top-pointer copy, §4.6).
            rt.inherit_to_parent(level)
            yield t.alu(5)

    def _run_commit_handlers(self, t, base):
        """Walk [base, top) forward, running handlers in registration
        order (§4.2).  Handlers may register more commit handlers; the
        walk picks them up (the top is re-read every iteration)."""
        rt = t.rt
        ptr = base
        while ptr < rt.ch_top:
            code = yield t.imld(ptr)
            nargs = yield t.imld(ptr + WORD_SIZE)
            args = []
            for i in range(nargs):
                args.append((yield t.imld(ptr + (2 + i) * WORD_SIZE)))
            ptr += (nargs + 3) * WORD_SIZE
            handler = self.machine.codereg.get(code)
            t.stats.add("rt.commit_handlers_run")
            yield from handler(t, *args)

    # ------------------------------------------------------------------
    # The atomic API
    # ------------------------------------------------------------------

    def atomic(self, t, body, *args, open_=False, abort_policy=None):
        """Run ``body(t, *args)`` transactionally; restart on violation.

        ``abort_policy(code)`` decides what a voluntary ``xabort`` means:
        return ``"restart"`` to re-execute, ``"park"`` to deschedule until
        woken and then re-execute (condsync ``retry``), or ``"raise"``
        (default) to terminate the transaction and raise
        :class:`TxAborted` to the surrounding code.
        """
        old_depth = t.depth()
        hw_level = None
        subsumed = False
        # The retry loop is a small state machine so that *every* yield —
        # including begin_tx, the loser-side pause, the condsync park,
        # and the terminating commit of a finished (empty, restarted)
        # transaction — sits inside the try-block.  A violation delivered
        # at a yield outside it could not be caught by the same try and
        # would escape the atomic wrapper entirely (a bug the chaos
        # matrix found: a spurious violation landing in the retry pause
        # killed the program).
        mode = "begin"         # begin | run | pause | park | finish
        finish = None          # pending terminal: ("raise", exc) after
        #                        the restarted empty transaction commits
        retries = 0            # consecutive rollbacks (scales the pause)
        while True:
            try:
                if mode == "begin":
                    yield from self.begin_tx(t, open_)
                    hw_level = t.depth()
                    subsumed = t.xstatus()["level"] != hw_level
                    mode = "run"
                if mode == "park":
                    mode = "run"
                    yield O.YieldCpu()
                    t.stats.add("rt.parks")
                if mode == "pause":
                    # Loser-side pause: give the winning requester's
                    # retried access time to complete before this
                    # transaction re-acquires the contended lines
                    # (prevents starvation of the oldest transaction
                    # under 3+-way conflicts).  Scaled by the
                    # consecutive-retry count: with a constant pause,
                    # three-way conflicts whose compensation walks all
                    # touch the allocator metadata can re-collide in
                    # lockstep forever; growing pauses separate the
                    # contenders deterministically so one of them gets
                    # a long enough quiet window to finish its walk.
                    # Ordinary contention (a handful of retries) keeps
                    # the constant pause; the scaling is an escape
                    # hatch, not a tax on the common case.
                    mode = "run"
                    scale = 1 if retries < 16 else min(retries, 128)
                    yield O.Alu((4 + 2 * t.cpu_id) * scale)
                if mode == "run":
                    result = yield from body(t, *args)
                    yield from self.commit_tx(t)
                    return result
                # mode == "finish": terminate the restarted (empty)
                # hardware transaction cleanly, then surface the pending
                # exception outside the loop.
                yield from self.commit_tx(t)
                break
            except TxRollback as rollback:
                if hw_level is None:
                    # Violated inside begin_tx.  Rollbacks of the levels
                    # that surrounded us belong to outer wrappers; our
                    # own just-opened level (the only deeper target —
                    # xbegin must already have run for it to exist) was
                    # restarted fresh by the hardware, so adopt it and
                    # retry the body.  Its begin bookkeeping already ran:
                    # the only yield after xbegin follows the snapshot.
                    if rollback.level <= old_depth:
                        raise
                    hw_level = rollback.level
                if subsumed or rollback.level < hw_level:
                    raise
                if mode == "finish":
                    continue  # violated mid-terminate: re-terminate
                if rollback.reason == "capacity":
                    # Retrying cannot help: the footprint exceeds the
                    # hardware.  Terminate and surface the abort so
                    # software can fall back (the virtualization hook,
                    # paper §6.3.3).
                    mode, finish = "finish", rollback
                    continue
                t.stats.add("rt.retries")
                retries += 1
                if rollback.reason != "abort":
                    mode = ("pause"
                            if self.machine.config.detection == "eager"
                            else "run")
                    continue
                decision = (abort_policy(rollback.code)
                            if abort_policy else "raise")
                if decision == "restart":
                    mode = "run"
                    continue
                if decision == "park":
                    mode = "park"
                    continue
                mode, finish = "finish", TxAborted(rollback.code)
                continue
            except TxSignal:
                raise  # other architectural signals go to outer wrappers
            except GeneratorExit:
                raise  # generator teardown (daemon threads at shutdown)
            except BaseException:
                # A runtime exception inside the transaction (paper §3:
                # "real programs ... cause exceptions, often hidden within
                # libraries").  The transaction aborts — running its abort
                # handlers (compensation) and discarding its speculative
                # state — and the exception then propagates to the code
                # outside the atomic block, unwinding level by level.
                if not subsumed:
                    yield from self._unwind_for_exception(t)
                t.stats.add("rt.exception_aborts")
                raise
        if isinstance(finish, TxAborted):
            raise finish from None
        raise finish

    def _unwind_for_exception(self, t):
        """Abort the current transaction because a runtime exception is
        unwinding through it: abort handlers (compensation) run, the
        speculative state is discarded, and the hardware transaction
        terminates so the exception can continue outward."""
        try:
            yield O.XAbort("__exception__")
        except TxRollback:
            pass
        yield from self.commit_tx(t)

    def atomic_open(self, t, body, *args):
        """Open-nested transaction (``xbegin_open``), paper §4.5.

        Inside a violation/abort handler this re-enables violation
        reporting first (paper footnote 1), so conflicts on the open
        transaction itself are delivered.
        """
        if t.dispatch_depth and not t.isa.viol_reporting:
            yield O.XEnViolRep()
        result = yield from self.atomic(t, body, *args, open_=True)
        return result

    def try_atomic(self, t, body, *args, alternative=None):
        """The ``tryatomic`` construct (X10, paper §5): run ``body``
        atomically; if it ends in a voluntary abort, run ``alternative``
        (also atomically) instead.

        Returns ``(committed, result)``: ``(True, body result)`` on
        success, ``(False, alternative result)`` — or ``(False, abort
        code)`` when no alternative is given.
        """
        try:
            result = yield from self.atomic(t, body, *args)
            return True, result
        except TxAborted as aborted:
            if alternative is None:
                return False, aborted.code
            result = yield from self.atomic(t, alternative, *args)
            return False, result

    def atomic_with_fallback(self, t, body, *args):
        """``atomic`` with the virtualization fallback (DESIGN.md §6b):
        if the transaction overflows the hardware (CapacityAbort), the
        body re-executes under machine-wide serial mode with plain
        (unbounded) memory accesses — other CPUs keep computing
        speculatively but cannot commit, and strong atomicity violates
        any of them that read the serial writer's data.

        Requires write-buffer versioning (an undo-log machine exposes
        other transactions' in-place speculative writes to the serial
        reader).  Bodies that register handlers are not eligible —
        handler registration needs an active transaction.
        """
        from repro.common.errors import ConfigError
        from repro.common.params import WRITE_BUFFER

        if self.machine.config.versioning != WRITE_BUFFER:
            raise ConfigError(
                "the serial fallback requires write-buffer versioning")
        try:
            result = yield from self.atomic(t, body, *args)
            return result
        except TxRollback as rollback:
            if rollback.reason != "capacity":
                raise
        t.stats.add("rt.serial_fallbacks")
        while not (yield O.SerialAcquire()):
            yield t.alu(20)
        try:
            result = yield from body(t, *args)
        finally:
            yield O.SerialRelease()
        return result

    def abort(self, t, code=None):
        """Voluntary abort (``xabort``); never returns normally."""
        yield O.XAbort(code)
        raise AssertionError("xabort returned")  # pragma: no cover

    def retry(self, t):
        """Abort with the condsync retry code (used via condsync)."""
        yield O.XAbort(RETRY_CODE)
        raise AssertionError("xabort returned")  # pragma: no cover

    # ------------------------------------------------------------------
    # Handler registration (9 instructions + 1 per argument)
    # ------------------------------------------------------------------

    def register_commit_handler(self, t, fn, *args):
        yield from self._register(t, "commit", fn, args)

    def register_violation_handler(self, t, fn, *args):
        yield from self._register(t, "violation", fn, args)

    def register_abort_handler(self, t, fn, *args):
        yield from self._register(t, "abort", fn, args)

    def _register(self, t, kind, fn, args):
        if t.depth() < 1:
            raise IsaError(f"registering a {kind} handler outside a "
                           "transaction")
        rt = t.rt
        code_id = self.machine.codereg.register(fn)
        top = {"commit": rt.ch_top, "violation": rt.vh_top,
               "abort": rt.ah_top}[kind]
        nargs = len(args)
        yield t.alu()  # compute entry address
        yield t.imstid(top, code_id)
        yield t.imstid(top + WORD_SIZE, nargs)
        for i, arg in enumerate(args):
            yield t.imstid(top + (2 + i) * WORD_SIZE, arg)
        yield t.imstid(top + (2 + nargs) * WORD_SIZE, nargs)
        new_top = top + (3 + nargs) * WORD_SIZE
        rt.bounds_check(new_top, kind)
        yield t.alu(5)  # new top, bounds check, cached-register update,
        #                 spill, link
        if kind == "commit":
            rt.ch_top = new_top
        elif kind == "violation":
            rt.vh_top = new_top
        else:
            rt.ah_top = new_top
        t.stats.add(f"rt.{kind}_handlers_registered")

    # ------------------------------------------------------------------
    # Dispatchers (the code at xvhcode / xahcode)
    # ------------------------------------------------------------------

    def _violation_dispatcher(self, t):
        """Software at ``xvhcode``: run registered violation handlers in
        reverse registration order for every level being rolled back, then
        either resume or roll back (6 instructions on the no-handler
        path)."""
        rt = t.rt
        depth = t.depth()
        if depth == 0:
            # The conflicting transaction already finished (e.g. the
            # violation raced with our commit); nothing to do.
            yield O.XVClear()
            yield O.XVRet()
            return HandlerOutcome.resume()
        mask = t.isa.xvcurrent or (1 << (depth - 1))
        vaddr = t.isa.xvaddr
        target = min(lowest_level_in_mask(mask), depth)
        # The violation may have interrupted an open-nested library or
        # compensation transaction mid-flight.  Its speculative state —
        # e.g. a compensation slot's not-yet-committed disarm — must not
        # be visible to the handler walk below, or the walk skips a
        # compensation whose effect the final rollback is about to undo
        # (a §6b.2 re-walk would then find the entry already popped: a
        # leak).  Kill the in-flight open run first; the undo re-arms
        # whatever it had speculatively disarmed.
        state = t.machine.htm.states[t.cpu_id]
        kill = depth
        while (kill > target and state.levels[kill - 1].open
               and state.levels[kill - 1].status == ACTIVE):
            kill -= 1
        if kill < depth:
            yield O.XRwSetClear(level=kill + 1)
        frame = tcb.frame_addr(t.cpu_id, target)
        yield t.imld(frame + tcb.VH_TOP * WORD_SIZE)  # saved base
        yield t.alu()  # compute walk bounds
        action = yield from self._walk_back(
            t, rt.vh_top, rt.vh_base_of(target), "violation")
        if action == RESUME:
            yield O.XVClear()
            yield O.XVRet()
            return HandlerOutcome.resume()
        yield O.XRwSetClear(level=target)
        yield O.XRegRestore()
        rt.reset_to(target)
        yield t.alu()  # restore handler-stack tops
        yield O.XVRet()
        return HandlerOutcome.rollback(target, "violation", vaddr=vaddr)

    def _abort_dispatcher(self, t):
        """Software at ``xahcode``: like the violation dispatcher but for
        voluntary aborts of the current transaction (§4.4)."""
        rt = t.rt
        depth = t.depth()
        code = t.isa.xabort_code
        target = depth
        frame = tcb.frame_addr(t.cpu_id, target)
        yield t.imld(frame + tcb.AH_TOP * WORD_SIZE)
        yield t.alu()
        action = yield from self._walk_back(
            t, rt.ah_top, rt.ah_base_of(target), "abort")
        if action == RESUME:
            yield O.XVClear()
            yield O.XVRet()
            return HandlerOutcome.resume()
        yield O.XRwSetClear(level=target)
        yield O.XRegRestore()
        rt.reset_to(target)
        yield t.alu()
        yield O.XVRet()
        return HandlerOutcome.rollback(target, "abort", code=code)

    def _walk_back(self, t, top, stop, kind):
        """Run handler entries in [stop, top) newest-first.  Stops early
        (returning RESUME) if a handler votes to resume."""
        ptr = top
        while ptr > stop:
            nargs = yield t.imld(ptr - WORD_SIZE)
            entry = ptr - (nargs + 3) * WORD_SIZE
            code = yield t.imld(entry)
            args = []
            for i in range(nargs):
                args.append((yield t.imld(entry + (2 + i) * WORD_SIZE)))
            ptr = entry
            handler = self.machine.codereg.get(code)
            t.stats.add(f"rt.{kind}_handlers_run")
            action = yield from handler(t, *args)
            if action == RESUME:
                return RESUME
        return None

    def _commit_walk_marker(self, t):
        """Placeholder generator so ``xchcode`` names real code; the walk
        itself is inlined in :meth:`commit_tx`."""
        yield t.alu()  # pragma: no cover
