"""High-level language constructs over the HTM ISA (paper Section 5).

The paper argues its three mechanisms suffice to implement the
transactional languages of the day; this module builds the canonical
constructs to demonstrate it:

* :func:`when` — conditional atomic (Harris's ``conditional atomic``,
  X10's ``when``): run the body once a guard over watched addresses
  holds, sleeping via watch/retry until it might.
* :func:`or_else` — Transactional Haskell's ``orElse``: try the first
  alternative; if it *retries* (blocks), roll back only that alternative
  (a closed-nested transaction) and try the second; if every alternative
  retries, sleep until any of their watched addresses changes.
* :class:`TxBarrier` — the "efficient barriers" of §3: arrivals count
  atomically; waiters watch the generation word and sleep, and the last
  arrival's commit wakes exactly the waiting cohort.

All of these sit purely on the public runtime/condsync API — no new
hardware is involved, which is the paper's point.
"""

from __future__ import annotations

from repro.common.errors import ReproError, TxAborted
from repro.runtime.core import RETRY_CODE

#: Return value used by or_else alternatives to signal "I would block".
RETRY = "__construct_retry__"


def when(cond, t, guard, body, watch_addrs):
    """Conditional atomic: wait until ``guard`` returns truthy, then run
    ``body`` in the same transaction.

    ``cond`` is the machine's :class:`~repro.runtime.condsync
    .CondScheduler`; ``guard`` and ``body`` are generator functions
    taking ``t``; ``watch_addrs`` lists the addresses whose change might
    make the guard pass.  Returns ``body``'s result.
    """

    def attempt(t):
        ready = yield from guard(t)
        if not ready:
            yield from cond.register_cancel(t)
            for addr in watch_addrs:
                yield from cond.watch(t, addr)
            yield from cond.retry(t)
        result = yield from body(t)
        return result

    result = yield from cond.atomic(t, attempt)
    return result


def or_else(cond, t, alternatives):
    """Transactional Haskell's ``orElse`` chain.

    ``alternatives`` is a sequence of ``(body, watch_addrs)`` pairs.
    Each body runs as a *closed-nested* transaction and may either
    return a value (taken, the chain commits) or return
    :data:`RETRY` to signal it would block.  If every alternative
    retries, the thread sleeps until any watched address changes, then
    re-runs the chain.  Closed nesting is what makes the partial
    alternative's effects disappear without losing the outer
    transaction — the composability argument of §3.
    """
    if not alternatives:
        raise ReproError("or_else needs at least one alternative")
    runtime = cond.runtime

    def chain(t):
        for body, _ in alternatives:
            def nested(t, body=body):
                result = yield from body(t)
                if result == RETRY:
                    # Roll back only this alternative's effects.
                    yield from runtime.abort(t, code=RETRY_CODE)
                return result

            try:
                result = yield from runtime.atomic(t, nested)
            except TxAborted as aborted:
                if aborted.code != RETRY_CODE:
                    raise
                continue
            return result
        # Every alternative would block: sleep on the union of watches.
        yield from cond.register_cancel(t)
        for _, watch_addrs in alternatives:
            for addr in watch_addrs:
                yield from cond.watch(t, addr)
        yield from cond.retry(t)

    result = yield from cond.atomic(t, chain)
    return result


class TxBarrier:
    """A transactional sense-reversing barrier (§3's "efficient
    barriers").

    Arrivals increment a count atomically; all but the last watch the
    generation word and park.  The last arrival resets the count and
    bumps the generation — its commit violates the scheduler's watched
    line and wakes the whole cohort at once.
    """

    def __init__(self, cond, arena, parties):
        if parties < 1:
            raise ReproError("barrier needs >= 1 parties")
        self.cond = cond
        self.parties = parties
        self.count_addr = arena.alloc_word(0, isolate=True)
        self.generation_addr = arena.alloc_word(0, isolate=True)

    def wait(self, t):
        """Arrive and wait for the rest; returns the generation passed."""
        cond = self.cond

        def arrive(t):
            generation = yield t.load(self.generation_addr)
            count = yield t.load(self.count_addr)
            if count + 1 == self.parties:
                # Last arrival: release everyone.
                yield t.store(self.count_addr, 0)
                yield t.store(self.generation_addr, generation + 1)
                return ("released", generation)
            yield t.store(self.count_addr, count + 1)
            return ("waiting", generation)

        state, generation = yield from cond.atomic(t, arrive)
        if state == "released":
            return generation

        def until_released(t):
            current = yield t.load(self.generation_addr)
            if current == generation:
                yield from cond.register_cancel(t)
                yield from cond.watch(t, self.generation_addr)
                yield from cond.retry(t)
            return current

        yield from cond.atomic(t, until_released)
        return generation
