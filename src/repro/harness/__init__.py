"""Experiment harness: Section 7 protocols and report formatting."""

from repro.harness.experiment import (
    NestingComparison,
    RunResult,
    ScalingPoint,
    compare_nesting,
    run_workload,
    scaling_curve,
)
from repro.harness.export import (
    comparison_to_dict,
    dump_json,
    profile_to_dict,
    rows_to_csv,
    scaling_to_dicts,
)
from repro.harness.parallel import (
    CampaignFailure,
    CaseSpec,
    CaseTimeout,
    run_campaign,
)
from repro.harness.profile import Profile, format_profiles, profile_machine
from repro.harness.txstats import (
    TxStatsCollector,
    format_tx_character,
)
from repro.harness.sweep import (
    SpeedupPoint,
    config_sweep,
    format_speedup_curve,
    speedup_curve,
)
from repro.harness.report import (
    format_bar_chart,
    format_figure5,
    format_scaling,
    format_table,
)

__all__ = [
    "CampaignFailure",
    "CaseSpec",
    "CaseTimeout",
    "run_campaign",
    "NestingComparison",
    "Profile",
    "format_profiles",
    "profile_machine",
    "RunResult",
    "ScalingPoint",
    "compare_nesting",
    "format_bar_chart",
    "format_figure5",
    "format_scaling",
    "format_table",
    "SpeedupPoint",
    "comparison_to_dict",
    "dump_json",
    "profile_to_dict",
    "rows_to_csv",
    "scaling_to_dicts",
    "TxStatsCollector",
    "format_tx_character",
    "config_sweep",
    "format_speedup_curve",
    "run_workload",
    "speedup_curve",
    "scaling_curve",
]
