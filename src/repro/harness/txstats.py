"""Per-transaction character statistics (read/write-set sizes, lengths).

The paper's implementation argument leans on the common-case transaction
profile — "transactions with a few hundred instructions are common"
(§6.2), 2-3 nesting levels (§6.3.3).  This collector records, for every
commit, the transaction's kind, nesting level, read-/write-set sizes (in
tracking units) and duration in cycles, so workloads can be checked
against those assumptions.

Usage::

    collector = TxStatsCollector(machine)
    ... run ...
    print(format_tx_character({"mp3d": collector.summary()}))
    collector.detach()
"""

from __future__ import annotations

import dataclasses

from repro.harness.report import format_table
from repro.obs.seams import SeamStack


@dataclasses.dataclass(frozen=True)
class TxRecord:
    """One committed transaction."""

    cpu: int
    kind: str        # outer | closed | open
    level: int
    read_units: int
    write_units: int
    duration: int    # cycles from xbegin to xcommit


@dataclasses.dataclass
class TxSummary:
    count: int
    mean_reads: float
    max_reads: int
    mean_writes: float
    max_writes: int
    mean_duration: float
    max_duration: int
    max_level: int


class TxStatsCollector:
    """Records a :class:`TxRecord` per commit until detached."""

    def __init__(self, machine):
        self.machine = machine
        self.records = []
        htm = machine.htm
        self._active = True
        self._seams = SeamStack()

        def make_commit(call_next):
            def commit(cpu_id):
                state = htm.states[cpu_id]
                if (self._active and state.in_tx()
                        and not state.flatten_extra):
                    level = state.depth()
                    info = state.current()
                    reads = len(state.rwsets.reads_at(level))
                    writes = len(state.rwsets.writes_at(level))
                    began = info.began_at
                    result = call_next(cpu_id)
                    if result.kind in ("outer", "closed", "open"):
                        self.records.append(TxRecord(
                            cpu=cpu_id,
                            kind=result.kind,
                            level=level,
                            read_units=reads,
                            write_units=writes,
                            duration=machine.now - began,
                        ))
                    return result
                return call_next(cpu_id)
            return commit

        self._seams.wrap(htm, "commit", make_commit)

    def detach(self):
        """Exact removal: the collector's wrapper is spliced out of the
        commit seam wherever it sits, so stacked instruments (tracer,
        profiler, collector) detach in any order without severing each
        other."""
        if not self._active:
            return
        self._active = False
        self._seams.restore()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    # ------------------------------------------------------------------

    def of_kind(self, kind):
        return [r for r in self.records if r.kind == kind]

    def summary(self, kind=None):
        """Aggregate statistics, optionally for one commit kind."""
        records = self.records if kind is None else self.of_kind(kind)
        if not records:
            return TxSummary(0, 0.0, 0, 0.0, 0, 0.0, 0, 0)
        n = len(records)
        return TxSummary(
            count=n,
            mean_reads=sum(r.read_units for r in records) / n,
            max_reads=max(r.read_units for r in records),
            mean_writes=sum(r.write_units for r in records) / n,
            max_writes=max(r.write_units for r in records),
            mean_duration=sum(r.duration for r in records) / n,
            max_duration=max(r.duration for r in records),
            max_level=max(r.level for r in records),
        )


def format_tx_character(named_summaries,
                        title="transaction character (per commit)"):
    """Render summaries — one row per (workload, kind)."""
    rows = []
    for name, summary in named_summaries:
        rows.append((
            name,
            summary.count,
            f"{summary.mean_reads:.1f}/{summary.max_reads}",
            f"{summary.mean_writes:.1f}/{summary.max_writes}",
            f"{summary.mean_duration:.0f}/{summary.max_duration}",
            summary.max_level,
        ))
    return format_table(
        ["run", "commits", "reads avg/max", "writes avg/max",
         "cycles avg/max", "max level"],
        rows, title=title)
