"""Experiment driver: the Section 7 methodology as reusable code.

Each figure/table is a function returning structured results plus a
formatted table whose rows mirror what the paper reports.  The benchmark
suite (``benchmarks/``) calls these and asserts the paper's qualitative
shape; examples and EXPERIMENTS.md use the same entry points, so every
number in the documentation is regenerable.
"""

from __future__ import annotations

import dataclasses

from repro.common.params import paper_config


@dataclasses.dataclass
class RunResult:
    """One workload execution."""

    name: str
    config_label: str
    cycles: int
    stats: dict

    def stat_total(self, suffix):
        return sum(v for k, v in self.stats.items()
                   if k == suffix or k.endswith("." + suffix))


def run_workload(workload, config, max_cycles=2_000_000_000,
                 config_label=""):
    """Run one workload on one machine configuration."""
    machine = workload.run(config, max_cycles=max_cycles)
    return RunResult(
        name=workload.name,
        config_label=config_label,
        cycles=machine.stats.get("cycles"),
        stats=machine.stats.as_dict(),
    )


@dataclasses.dataclass
class NestingComparison:
    """One Figure 5 bar: flat vs nested on ``n_cpus``, plus sequential."""

    name: str
    seq_cycles: int
    flat_cycles: int
    nested_cycles: int

    @property
    def improvement(self):
        """Speedup of nesting over flattening (the bar height)."""
        return self.flat_cycles / self.nested_cycles

    @property
    def total_speedup(self):
        """Nested speedup over 1-CPU sequential (the bar annotation)."""
        return self.seq_cycles / self.nested_cycles

    @property
    def flat_speedup(self):
        return self.seq_cycles / self.flat_cycles


def compare_nesting(workload_factory, n_cpus=8, config_overrides=None,
                    max_cycles=2_000_000_000):
    """Run the Figure 5 protocol for one workload.

    ``workload_factory(n_threads)`` builds a fresh workload instance; the
    same program runs sequentially (1 CPU), flattened (``n_cpus`` CPUs,
    ``flatten=True``), and with full nesting support.
    """
    overrides = dict(config_overrides or {})

    def config(n, flatten):
        return paper_config(n_cpus=n, flatten=flatten, **overrides)

    seq = run_workload(workload_factory(1), config(1, False),
                       max_cycles=max_cycles, config_label="seq")
    flat = run_workload(workload_factory(n_cpus), config(n_cpus, True),
                        max_cycles=max_cycles, config_label="flat")
    nested = run_workload(workload_factory(n_cpus), config(n_cpus, False),
                          max_cycles=max_cycles, config_label="nested")
    return NestingComparison(
        name=nested.name,
        seq_cycles=seq.cycles,
        flat_cycles=flat.cycles,
        nested_cycles=nested.cycles,
    )


@dataclasses.dataclass
class ScalingPoint:
    """One point of a throughput-scaling curve."""

    n: int
    cycles: int
    work_items: int

    @property
    def throughput(self):
        """Work items completed per kilocycle."""
        return 1000.0 * self.work_items / self.cycles


def scaling_curve(workload_factory, counts, config_factory, items_of,
                  max_cycles=2_000_000_000):
    """Run a workload at several thread counts; returns ScalingPoints.

    ``workload_factory(n)`` builds the workload; ``config_factory(n)``
    the machine; ``items_of(workload)`` the number of completed work
    items (for throughput).
    """
    points = []
    for n in counts:
        workload = workload_factory(n)
        result = run_workload(workload, config_factory(n),
                              max_cycles=max_cycles,
                              config_label=f"n={n}")
        points.append(ScalingPoint(
            n=n, cycles=result.cycles, work_items=items_of(workload)))
    return points
