"""Parameter sweeps: speedup curves over CPU counts and config axes.

The paper reports single 8-CPU points (with sequential-relative
annotations); a downstream user of this simulator will want the whole
curve and config cross-products.  ``speedup_curve`` runs a workload at
several CPU counts against its 1-CPU sequential run; ``config_sweep``
runs one workload across arbitrary config overrides.
"""

from __future__ import annotations

import dataclasses

from repro.common.params import paper_config
from repro.harness.report import format_table


@dataclasses.dataclass
class SpeedupPoint:
    n_cpus: int
    cycles: int
    speedup: float


def speedup_curve(workload_factory, cpu_counts=(1, 2, 4, 8, 16),
                  config_overrides=None, max_cycles=2_000_000_000):
    """Speedup over 1-CPU sequential execution at each CPU count.

    ``workload_factory(n_threads)`` builds a fresh workload; the total
    work is fixed (the workload divides it among threads), so this is a
    strong-scaling curve.
    """
    overrides = dict(config_overrides or {})
    points = []
    base_cycles = None
    for n in cpu_counts:
        workload = workload_factory(n)
        machine = workload.run(
            paper_config(n_cpus=max(n, workload.min_cpus()), **overrides),
            max_cycles=max_cycles)
        cycles = machine.stats.get("cycles")
        if base_cycles is None:
            base_cycles = cycles
        points.append(SpeedupPoint(
            n_cpus=n, cycles=cycles, speedup=base_cycles / cycles))
    return points


def format_speedup_curve(points, title):
    rows = [(p.n_cpus, p.cycles, f"{p.speedup:.2f}x") for p in points]
    return format_table(["CPUs", "cycles", "speedup vs 1 CPU"], rows,
                        title=title)


def config_sweep(workload_factory, axes, n_cpus=8,
                 max_cycles=2_000_000_000):
    """Run one workload across configuration variants.

    ``axes`` is a list of (label, overrides-dict); returns
    ``{label: machine}``.
    """
    results = {}
    for label, overrides in axes:
        workload = workload_factory(n_cpus)
        results[label] = workload.run(
            paper_config(n_cpus=max(n_cpus, workload.min_cpus()),
                         **overrides),
            max_cycles=max_cycles)
    return results
