"""Parameter sweeps: speedup curves over CPU counts and config axes.

The paper reports single 8-CPU points (with sequential-relative
annotations); a downstream user of this simulator will want the whole
curve and config cross-products.  ``speedup_curve`` runs a workload at
several CPU counts against an explicit 1-CPU sequential baseline;
``config_sweep`` runs one workload across arbitrary config overrides
and returns digested :class:`~repro.harness.profile.Profile` objects.

Both accept ``jobs``: each point is an independent deterministic
simulation, so the curve fans out across worker processes without
changing a single cycle (see :mod:`repro.harness.parallel`).  The
workload factory is a closure, so the parallel path ships it to workers
by fork inheritance (``payload=``); where forking is unavailable the
sweep silently runs serially.
"""

from __future__ import annotations

import dataclasses

from repro.common.params import paper_config
from repro.harness.parallel import CaseSpec, run_campaign
from repro.harness.profile import profile_machine
from repro.harness.report import format_table


@dataclasses.dataclass
class SpeedupPoint:
    """One curve point.  ``n_cpus`` is the requested thread count (the
    point's label); ``actual_cpus`` is what the machine really had —
    they differ when the workload's ``min_cpus()`` floor kicks in."""

    n_cpus: int
    cycles: int
    speedup: float
    actual_cpus: int = None

    def __post_init__(self):
        if self.actual_cpus is None:
            self.actual_cpus = self.n_cpus


class SweepCaseError(RuntimeError):
    """A sweep point failed (crash, timeout, or workload error)."""


def _sweep_failure(spec, message):
    raise SweepCaseError(f"{spec.name}: {message}")


def _run_speedup_point(workload_factory, n, overrides, max_cycles):
    workload = workload_factory(n)
    actual_cpus = max(n, workload.min_cpus())
    machine = workload.run(
        paper_config(n_cpus=actual_cpus, **overrides),
        max_cycles=max_cycles)
    return n, actual_cpus, machine.stats.get("cycles")


def speedup_curve(workload_factory, cpu_counts=(1, 2, 4, 8, 16),
                  config_overrides=None, max_cycles=2_000_000_000,
                  jobs=1):
    """Speedup over 1-CPU sequential execution at each CPU count.

    ``workload_factory(n_threads)`` builds a fresh workload; the total
    work is fixed (the workload divides it among threads), so this is a
    strong-scaling curve.  The baseline is always an explicit
    ``workload_factory(1)`` run — even when 1 is not in ``cpu_counts``
    — so every ``speedup`` really is "vs 1 CPU", and each point records
    the CPU count the machine actually had (``actual_cpus``), which the
    workload's ``min_cpus()`` floor may raise above the label.
    """
    overrides = dict(config_overrides or {})
    counts = [1] + [n for n in cpu_counts if n != 1]
    specs = [CaseSpec(runner="repro.harness.parallel:call_payload",
                      name=f"speedup:{n}cpu", args=("point", n))
             for n in counts]
    payload = {"point": lambda n: _run_speedup_point(
        workload_factory, n, overrides, max_cycles)}
    outcomes = run_campaign(specs, jobs=jobs, payload=payload,
                            failure_result=_sweep_failure)
    by_count = {n: (actual, cycles) for n, actual, cycles in outcomes}
    base_cycles = by_count[1][1]
    return [SpeedupPoint(n_cpus=n, cycles=by_count[n][1],
                         speedup=base_cycles / by_count[n][1],
                         actual_cpus=by_count[n][0])
            for n in cpu_counts]


def format_speedup_curve(points, title):
    rows = [(p.n_cpus
             if p.actual_cpus == p.n_cpus
             else f"{p.n_cpus} (ran on {p.actual_cpus})",
             p.cycles, f"{p.speedup:.2f}x") for p in points]
    return format_table(["CPUs", "cycles", "speedup vs 1 CPU"], rows,
                        title=title)


def _run_config_point(workload_factory, label, overrides, n_cpus,
                      max_cycles):
    workload = workload_factory(n_cpus)
    machine = workload.run(
        paper_config(n_cpus=max(n_cpus, workload.min_cpus()),
                     **overrides),
        max_cycles=max_cycles)
    return label, profile_machine(machine)


def config_sweep(workload_factory, axes, n_cpus=8,
                 max_cycles=2_000_000_000, jobs=1):
    """Run one workload across configuration variants.

    ``axes`` is a list of (label, overrides-dict); returns
    ``{label: Profile}`` — the digested per-run statistics, not the
    machine itself, so a wide sweep holds no caches or histories in
    memory and its results travel across process boundaries.
    """
    axes = list(axes)
    specs = [CaseSpec(runner="repro.harness.parallel:call_payload",
                      name=f"config:{label}", args=("axis", index))
             for index, (label, _) in enumerate(axes)]
    payload = {"axis": lambda index: _run_config_point(
        workload_factory, axes[index][0], axes[index][1], n_cpus,
        max_cycles)}
    outcomes = run_campaign(specs, jobs=jobs, payload=payload,
                            failure_result=_sweep_failure)
    return dict(outcomes)
