"""Execution profiles: a structured summary of one machine run.

Turns the raw statistics tree into the quantities an architect looks at
— commits by kind, violations, rollbacks by nesting level, handler
activity, cache hit rates, bus utilization — and renders them as a
table.  Benchmarks print these next to the paper's figures so the
*mechanisms* behind each number are visible, not just the cycle counts.
"""

from __future__ import annotations

import dataclasses

from repro.harness.report import format_table


@dataclasses.dataclass
class Profile:
    """A digested view of one run's statistics."""

    cycles: int
    instructions: int
    commits_outer: int
    commits_closed: int
    commits_open: int
    commits_flattened: int
    violations: int
    rollbacks_by_level: dict
    handler_dispatches: int
    handler_resumes: int
    retries: int
    validate_stalls: int
    capacity_aborts: int
    l1_hit_rate: float
    l2_hit_rate: float
    bus_utilization: float

    @property
    def total_commits(self):
        return (self.commits_outer + self.commits_closed
                + self.commits_open + self.commits_flattened)

    @property
    def violations_per_commit(self):
        if not self.total_commits:
            return 0.0
        return self.violations / self.total_commits


def profile_machine(machine):
    """Build a :class:`Profile` from a finished machine."""
    stats = machine.stats
    levels = {}
    for level in range(1, machine.config.max_nesting + 1):
        count = stats.total(f"htm.rollbacks_to_level{level}")
        if count:
            levels[level] = count
    l1_hits = stats.total("l1.hits")
    l1_misses = stats.total("l1.misses")
    l2_hits = stats.total("l2.hits")
    l2_misses = stats.total("l2.misses")
    cycles = stats.get("cycles") or machine.now or 1
    return Profile(
        cycles=stats.get("cycles", machine.now),
        instructions=stats.total("instructions"),
        commits_outer=stats.total("htm.commits_outer"),
        commits_closed=stats.total("htm.commits_closed"),
        commits_open=stats.total("htm.commits_open"),
        commits_flattened=stats.total("htm.commits_flattened"),
        violations=stats.total("htm.violations_received"),
        rollbacks_by_level=levels,
        handler_dispatches=(stats.total("htm.dispatches_violation")
                            + stats.total("htm.dispatches_abort")),
        handler_resumes=stats.total("htm.handler_resumes"),
        retries=stats.total("rt.retries"),
        validate_stalls=stats.total("htm.validate_stalls"),
        capacity_aborts=stats.total("htm.capacity_aborts"),
        l1_hit_rate=_rate(l1_hits, l1_misses),
        l2_hit_rate=_rate(l2_hits, l2_misses),
        bus_utilization=stats.get("bus.busy_cycles") / cycles,
    )


def _rate(hits, misses):
    total = hits + misses
    return hits / total if total else 0.0


def format_profiles(named_profiles, title="execution profile"):
    """Render several runs' profiles side by side."""
    rows = []
    for name, p in named_profiles:
        rollbacks = ", ".join(
            f"L{level}:{count}"
            for level, count in sorted(p.rollbacks_by_level.items()))
        rows.append((
            name,
            p.cycles,
            p.instructions,
            f"{p.commits_outer}/{p.commits_closed}/{p.commits_open}",
            p.violations,
            rollbacks or "-",
            p.validate_stalls,
            f"{p.l1_hit_rate:.2f}",
            f"{p.bus_utilization:.2f}",
        ))
    return format_table(
        ["run", "cycles", "instr", "commits o/c/op", "violations",
         "rollbacks", "v-stalls", "L1 hit", "bus util"],
        rows, title=title)
