"""Machine-readable experiment export (JSON/CSV).

Labs script over results; every harness object here serializes to plain
dicts, and the CLI grows ``--json`` via :func:`dump_json`.
"""

from __future__ import annotations

import csv
import io
import json


def comparison_to_dict(comparison):
    """Serialize a :class:`~repro.harness.experiment.NestingComparison`."""
    return {
        "name": comparison.name,
        "seq_cycles": comparison.seq_cycles,
        "flat_cycles": comparison.flat_cycles,
        "nested_cycles": comparison.nested_cycles,
        "improvement": comparison.improvement,
        "total_speedup": comparison.total_speedup,
        "flat_speedup": comparison.flat_speedup,
    }


def scaling_to_dicts(points):
    """Serialize a list of :class:`~repro.harness.experiment
    .ScalingPoint` or :class:`~repro.harness.sweep.SpeedupPoint`."""
    out = []
    for p in points:
        entry = {"n": getattr(p, "n", getattr(p, "n_cpus", None)),
                 "cycles": p.cycles}
        if hasattr(p, "work_items"):
            entry["work_items"] = p.work_items
            entry["throughput"] = p.throughput
        if hasattr(p, "speedup"):
            entry["speedup"] = p.speedup
        out.append(entry)
    return out


def profile_to_dict(profile):
    """Serialize a :class:`~repro.harness.profile.Profile`."""
    data = dict(vars(profile))
    data["rollbacks_by_level"] = {
        str(level): count
        for level, count in profile.rollbacks_by_level.items()
    }
    return data


def dump_json(payload, path=None):
    """Serialize ``payload`` (pre-converted dicts) to JSON; returns the
    text, writing it to ``path`` when given."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text


def rows_to_csv(headers, rows, path=None):
    """Render rows as CSV; returns the text, writing ``path`` if given."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text
