"""Performance-regression bench: ``python -m repro bench``.

Two jobs in one harness (docs/performance.md):

1. **Cycle-equality regression.**  Every cell of a fixed workload matrix
   (kernels × lazy/eager detection × 2–16 CPUs) is simulated and its
   cycle count compared for *exact* equality against the golden values
   in ``bench_golden.json``.  The simulator is deterministic, so any
   drift — however small — means an optimization changed observable
   behaviour, which is a bug here, never a re-tuning.

2. **Speedup measurement.**  The flagship cell runs the
   detection-stress kernel (:mod:`repro.workloads.detstress`) on the
   16-CPU eager machine twice: once with the indexed detectors and once
   with ``naive_detection=True`` (the original full-scan reference
   implementations).  Both must produce bit-for-bit identical cycles
   and steps; the harness reports the steps/sec ratio.

Wall-clock is measured per phase (setup / run / verify) and steps/sec is
computed over the *run* phase only, from the engine's ``engine.steps``
stat.  Results are written to ``BENCH_sim.json``.

``--smoke`` runs a reduced matrix (the 4-CPU column plus the flagship)
for CI; golden values are shared with the full matrix.  Regenerate the
goldens with ``--update-golden`` after an *intentional* behaviour change
(and say why in the commit).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.common.params import functional_config, paper_config
from repro.harness.parallel import CaseSpec, run_campaign
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.workloads import DetectionStressKernel, Mp3dKernel, SwimKernel

#: Path of the golden cycle counts, next to this module.
GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "bench_golden.json")

#: The matrix axes.
KERNELS = {"swim": SwimKernel, "mp3d": Mp3dKernel}
DETECTIONS = ("lazy", "eager")
CPU_COUNTS = (2, 4, 8, 16)
SMOKE_CPU_COUNTS = (4,)

#: The flagship cell: 16-CPU eager detection, deep nesting allowed.
FLAGSHIP_ID = "detstress-eager-x16"
FLAGSHIP_CPUS = 16


def _flagship_config(naive):
    return functional_config(
        n_cpus=FLAGSHIP_CPUS, detection="eager", max_nesting=8,
        naive_detection=naive)


def matrix_cells(smoke=False):
    """Yield (cell_id, workload factory, config factory) for the matrix."""
    counts = SMOKE_CPU_COUNTS if smoke else CPU_COUNTS
    for kernel_name, kernel_cls in sorted(KERNELS.items()):
        for detection in DETECTIONS:
            for n_cpus in counts:
                cell_id = f"{kernel_name}-{detection}-x{n_cpus}"
                yield (
                    cell_id,
                    lambda n=n_cpus, cls=kernel_cls: cls(n_threads=n),
                    lambda n=n_cpus, d=detection: paper_config(
                        n_cpus=n, detection=d),
                )


def run_cell(factory, config, max_cycles=2_000_000_000):
    """Run one workload under ``config`` with per-phase timing.

    Returns a dict with cycles, steps, per-phase seconds, and steps/sec
    (over the run phase alone).
    """
    workload = factory()
    machine = Machine(config)
    runtime = Runtime(machine)
    arena = SharedArena(machine)

    t0 = time.perf_counter()
    workload.setup(machine, runtime, arena)
    t1 = time.perf_counter()
    machine.run(max_cycles=max_cycles)
    t2 = time.perf_counter()
    workload.verify(machine)
    t3 = time.perf_counter()

    steps = machine.stats.get("engine.steps")
    run_s = t2 - t1
    return {
        "cycles": machine.stats.get("cycles"),
        "steps": steps,
        "phases": {
            "setup_s": round(t1 - t0, 6),
            "run_s": round(run_s, 6),
            "verify_s": round(t3 - t2, 6),
        },
        "steps_per_s": round(steps / run_s) if run_s > 0 else None,
    }


def _best_cell(factory, config, repeat=2):
    """Best-of-``repeat`` :func:`run_cell` by run-phase wall time."""
    best = None
    for _ in range(max(1, repeat)):
        result = run_cell(factory, config)
        if best is None or result["phases"]["run_s"] < best["phases"]["run_s"]:
            best = result
    return best


def run_cell_by_id(cell_id):
    """Run one matrix cell named by its id (the parallel path's runner).

    The cell id fully determines the workload and config, so a worker
    process reconstructs the cell from the name alone — and the
    per-phase wall-clock numbers stay honest because :func:`run_cell`
    times each phase inside the worker that runs it.

    Each cell runs twice: once with the table-dispatched interpreter and
    once with ``naive_interp=True`` (the retained reference chain).  Both
    must produce bit-for-bit identical cycles and steps, and the in-run
    steps/sec ratio (``dispatch_ratio``) is recorded — comparing against
    a baseline measured in the same process keeps the floor check
    load-tolerant, unlike absolute steps/sec thresholds.
    """
    for candidate, factory, config_factory in matrix_cells(smoke=False):
        if candidate == cell_id:
            result = _best_cell(factory, config_factory())
            result["id"] = cell_id
            naive = _best_cell(
                factory,
                dataclasses.replace(config_factory(), naive_interp=True))
            if (naive["cycles"], naive["steps"]) != (
                    result["cycles"], result["steps"]):
                result["error"] = (
                    "naive interpreter diverges: "
                    f"{naive['cycles']}/{naive['steps']} cycles/steps != "
                    f"{result['cycles']}/{result['steps']} — the dispatch "
                    "table and the reference chain are observably "
                    "different")
            result["naive_steps_per_s"] = naive["steps_per_s"]
            if result["steps_per_s"] and naive["steps_per_s"]:
                result["dispatch_ratio"] = round(
                    result["steps_per_s"] / naive["steps_per_s"], 3)
            else:
                result["dispatch_ratio"] = None
            return result
    raise ValueError(f"unknown bench cell {cell_id!r}")


def _cell_failure(spec, message):
    return {"id": spec.name, "cycles": None, "steps": None, "phases": {},
            "steps_per_s": None, "error": message}


def run_flagship(repeat=3):
    """Run the flagship cell under both detector implementations.

    Each variant runs ``repeat`` times; the fastest run-phase wall time
    wins (best-of-N smooths scheduler noise).  Cycles and steps must be
    bit-for-bit identical across every run of both variants.
    """
    variants = {}
    signature = None
    for label, naive in (("indexed", False), ("naive", True)):
        best = None
        for _ in range(max(1, repeat)):
            result = run_cell(
                lambda: DetectionStressKernel(n_threads=FLAGSHIP_CPUS),
                _flagship_config(naive))
            sig = (result["cycles"], result["steps"])
            if signature is None:
                signature = sig
            elif sig != signature:
                raise BenchMismatch(
                    f"{FLAGSHIP_ID} ({label}): cycles/steps {sig} diverge "
                    f"from {signature} — the detector implementations are "
                    "observably different")
            if best is None or result["phases"]["run_s"] < best["phases"]["run_s"]:
                best = result
        variants[label] = best
    speedup = (variants["indexed"]["steps_per_s"]
               / variants["naive"]["steps_per_s"])
    return {
        "id": FLAGSHIP_ID,
        "cycles": signature[0],
        "steps": signature[1],
        "indexed": variants["indexed"],
        "naive": variants["naive"],
        "speedup": round(speedup, 2),
    }


def run_flagship_accounting(expected_cycles=None):
    """Profile the indexed flagship run and close the cycle books.

    Doubles as the zero-perturbation guard: the profiler shadows
    ``cpu.execute`` and wraps the HTM seams, and the machine it profiles
    must still produce *exactly* the unprofiled flagship cycle count —
    any drift means the instrument changed observable behaviour.
    Returns ``(CycleAccount, list of errors)``.
    """
    from repro.obs.profiler import CycleProfiler

    workload = DetectionStressKernel(n_threads=FLAGSHIP_CPUS)
    machine = Machine(_flagship_config(naive=False))
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    workload.setup(machine, runtime, arena)
    profiler = CycleProfiler(machine)
    try:
        machine.run(max_cycles=2_000_000_000)
        workload.verify(machine)
    finally:
        profiler.detach()
    account = profiler.account()

    errors = []
    cycles = machine.stats.get("cycles")
    if expected_cycles is not None and cycles != expected_cycles:
        errors.append(
            f"{FLAGSHIP_ID} (profiled): {cycles} cycles != unprofiled "
            f"{expected_cycles} — the profiler perturbed the run")
    errors.extend(f"{FLAGSHIP_ID} accounting: {problem}"
                  for problem in account.problems())
    return account, errors


class BenchMismatch(AssertionError):
    """A bench invariant (golden equality or detector parity) failed."""


def load_golden():
    if not os.path.exists(GOLDEN_PATH):
        return {}
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def run_bench(smoke=False, repeat=3, update_golden=False,
              min_speedup=0.0, min_dispatch_ratio=0.0, report=print, jobs=1):
    """Run the matrix + flagship; returns (results dict, list of errors).

    ``jobs`` fans the golden-cycle matrix out across worker processes;
    cycle counts are simulated, so parallelism cannot perturb them, and
    the per-cell phase timings are taken inside each worker.  The
    flagship speedup measurement always runs serially — it compares
    wall-clock throughput, which co-running cells would distort.

    ``min_dispatch_ratio`` is the wall-clock regression floor: every
    cell's table-dispatch steps/sec divided by its in-run
    ``naive_interp`` baseline must stay at or above it.  Because both
    runs share the worker (and its machine load), the ratio is stable
    where an absolute steps/sec threshold would flake in CI.
    """
    golden = {} if update_golden else load_golden()
    errors = []
    cells = []

    def finish_cell(result):
        cell_id = result["id"]
        expected = golden.get(cell_id)
        result["golden_cycles"] = expected
        if result.get("error"):
            result["ok"] = False
            errors.append(f"{cell_id}: {result['error']}")
            report(f"  {cell_id:<22} run FAILED: {result['error']}")
            cells.append(result)
            return
        result["ok"] = expected is None or result["cycles"] == expected
        if expected is None and not update_golden:
            errors.append(f"{cell_id}: no golden cycle count on record")
        elif not result["ok"]:
            errors.append(
                f"{cell_id}: {result['cycles']} cycles != golden {expected}")
        ratio = result.get("dispatch_ratio")
        if min_dispatch_ratio and ratio is not None \
                and ratio < min_dispatch_ratio:
            result["ok"] = False
            errors.append(
                f"{cell_id}: dispatch ratio {ratio}x below the required "
                f"{min_dispatch_ratio}x (table {result['steps_per_s']:,} "
                f"vs naive {result['naive_steps_per_s']:,} steps/s)")
        cells.append(result)
        ratio_text = f"  x{ratio} vs naive" if ratio is not None else ""
        report(f"  {cell_id:<22} {result['cycles']:>9} cycles  "
               f"{result['steps_per_s'] or 0:>8,} steps/s"
               f"{ratio_text}  "
               f"{'ok' if result['ok'] else 'MISMATCH'}")

    specs = [CaseSpec(runner="repro.harness.bench:run_cell_by_id",
                      name=cell_id, args=(cell_id,))
             for cell_id, _, _ in matrix_cells(smoke=smoke)]
    run_campaign(specs, jobs=jobs, report=finish_cell,
                 failure_result=_cell_failure)

    report(f"  {FLAGSHIP_ID}: indexed vs naive detectors "
           f"(best of {repeat})...")
    try:
        flagship = run_flagship(repeat=repeat)
    except BenchMismatch as exc:
        errors.append(str(exc))
        flagship = None
    else:
        expected = golden.get(FLAGSHIP_ID)
        flagship["golden_cycles"] = expected
        if expected is None and not update_golden:
            errors.append(f"{FLAGSHIP_ID}: no golden cycle count on record")
        elif expected is not None and flagship["cycles"] != expected:
            errors.append(f"{FLAGSHIP_ID}: {flagship['cycles']} cycles != "
                          f"golden {expected}")
        report(f"  {FLAGSHIP_ID:<22} {flagship['cycles']:>9} cycles  "
               f"indexed {flagship['indexed']['steps_per_s']:,} steps/s  "
               f"naive {flagship['naive']['steps_per_s']:,} steps/s  "
               f"speedup {flagship['speedup']}x")
        if min_speedup and flagship["speedup"] < min_speedup:
            errors.append(
                f"{FLAGSHIP_ID}: speedup {flagship['speedup']}x below the "
                f"required {min_speedup}x")
        report(f"  {FLAGSHIP_ID}: cycle accounting (profiled re-run)...")
        account, account_errors = run_flagship_accounting(
            expected_cycles=flagship["cycles"])
        errors.extend(account_errors)
        flagship["accounting"] = account.as_dict()
        from repro.harness.report import format_cycle_accounting
        for line in format_cycle_accounting(
                account,
                title=f"  wasted-work breakdown ({FLAGSHIP_ID})").splitlines():
            report(f"  {line}")

    results = {
        "smoke": smoke,
        "repeat": repeat,
        "cells": cells,
        "flagship": flagship,
        "ok": not errors,
    }
    if update_golden:
        refreshed = dict(load_golden())
        for cell in cells:
            refreshed[cell["id"]] = cell["cycles"]
        if flagship is not None:
            refreshed[FLAGSHIP_ID] = flagship["cycles"]
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(refreshed, fh, indent=2, sort_keys=True)
            fh.write("\n")
        report(f"  wrote golden cycle counts to {GOLDEN_PATH}")
    return results, errors


def cmd_bench(args):
    """Entry point for ``python -m repro bench``."""
    print("bench: cycle-equality matrix + detector speedup")
    results, errors = run_bench(
        smoke=args.smoke, repeat=args.repeat,
        update_golden=args.update_golden, min_speedup=args.min_speedup,
        min_dispatch_ratio=args.min_dispatch_ratio,
        jobs=args.jobs)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    for error in errors:
        print(f"bench FAILURE: {error}")
    return 1 if errors else 0
