"""Process-pool campaign executor: fan case matrices out across cores.

The checking, chaos, and bench subsystems all drive the simulator
through embarrassingly-parallel case matrices, and every case is a pure
function of a small replayable name (``program:config:policy:seed``,
``fault:program:config:seed``, a bench cell id).  This module turns such
a campaign into a list of small picklable :class:`CaseSpec` tuples and
runs them across ``jobs`` worker processes:

* **Determinism.**  Results are merged in enumeration order, so the
  merged list is identical to the serial run's no matter how the cases
  were sharded or in what order workers finished.  Parallelism never
  changes a simulated cycle — each worker runs the same pure function
  the serial loop would have.
* **Isolation.**  A case that raises is classified by
  ``failure_result(spec, message)`` instead of aborting the campaign; a
  case that kills its worker outright (``os._exit``, a segfault) is
  detected by exit-code watch and the worker is respawned; a case that
  exceeds ``timeout`` seconds is interrupted by an in-worker alarm, and
  if it wedges the interpreter hard enough to ignore even that, the
  parent kills the worker after a grace period.
* **Ordered progress.**  The ``report`` callback observes finished
  results in enumeration order (buffered until their turn), so serial
  and parallel campaigns stream identical progress.

Workers resolve each spec's runner by its ``"module:function"`` name, so
specs stay tiny and work under both ``fork`` and ``spawn`` start
methods.  Campaign drivers whose cases capture unpicklable context
(e.g. a workload-factory closure) can pass it via ``payload=``: the dict
is installed in a module global *before* the workers fork and referenced
by key through :func:`call_payload`.  That mechanism needs the ``fork``
start method; where only ``spawn`` exists, payload campaigns degrade to
serial execution.
"""

from __future__ import annotations

import dataclasses
import importlib
import multiprocessing
import pickle
import queue
import signal
import threading
import time

#: Seconds between parent watchdog polls while no result is ready.
_POLL_S = 0.05

#: Placeholder for a result slot not yet filled (results may be None).
_UNSET = object()

#: Fork-inherited context for unpicklable campaign state; see
#: :func:`call_payload`.
_PAYLOAD = {}


@dataclasses.dataclass(frozen=True)
class CaseSpec:
    """One campaign case: small, picklable, replayable by name.

    ``runner`` names a module-level callable as ``"module:function"``,
    resolved inside the worker; ``args``/``kwargs`` must be picklable
    (``kwargs`` is a tuple of ``(key, value)`` pairs so the spec itself
    stays hashable).  ``name`` is the case's replayable name, used only
    for failure reporting.

    ``affinity`` is a soft placement hint: :meth:`WorkerPool.map`
    prefers the worker at position ``affinity % jobs`` when it is idle,
    falling back to any idle worker rather than stalling the wave.
    Wave-structured drivers use it to land a case on the worker whose
    process-local caches its ancestor warmed (the model checker's
    checkpoint cache); it never affects results, only placement.
    """

    runner: str
    name: str
    args: tuple = ()
    kwargs: tuple = ()
    affinity: int = None


@dataclasses.dataclass
class CampaignFailure:
    """Default failure record when no domain ``failure_result`` is given."""

    name: str
    message: str


class CaseTimeout(Exception):
    """A case exceeded the campaign's per-case time budget."""


def resolve_runner(path):
    """Resolve a ``"module:function"`` runner name to the callable."""
    module_name, sep, func_name = path.partition(":")
    if not sep or not func_name:
        raise ValueError(f"runner {path!r} is not 'module:function'")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def call_payload(key, *args, **kwargs):
    """Invoke an unpicklable callable shipped to workers by fork.

    ``run_campaign(..., payload={key: fn})`` installs ``fn`` in
    :data:`_PAYLOAD` before the workers fork; a spec whose runner is
    ``"repro.harness.parallel:call_payload"`` with ``args=(key, ...)``
    then reaches it in the child by inheritance.
    """
    try:
        fn = _PAYLOAD[key]
    except KeyError:
        raise RuntimeError(
            f"payload key {key!r} not installed (campaign payloads need "
            "the fork start method)") from None
    return fn(*args, **kwargs)


def run_spec(spec):
    """Run one spec in-process and return its result."""
    fn = resolve_runner(spec.runner)
    return fn(*spec.args, **dict(spec.kwargs))


def _raise_timeout(signum, frame):
    raise CaseTimeout()


class _time_limit:
    """SIGALRM-based time limit; a no-op off the main thread or when
    ``seconds`` is falsy (the simulator is pure Python, so the alarm
    interrupts even a livelocked case)."""

    def __init__(self, seconds):
        self.seconds = seconds
        self.active = bool(seconds) and (
            threading.current_thread() is threading.main_thread())

    def __enter__(self):
        if self.active:
            self.old = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, *exc):
        if self.active:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, self.old)
        return False


def _describe(exc):
    return f"{type(exc).__name__}: {exc}"


def _run_guarded(spec, timeout, failure_result):
    """Serial execution of one spec with the same classification the
    parallel path applies: exceptions and timeouts become failure
    results at the campaign boundary instead of sinking the matrix."""
    try:
        with _time_limit(timeout):
            return run_spec(spec)
    except CaseTimeout:
        return failure_result(spec, f"timeout after {timeout:g}s")
    except Exception as exc:
        return failure_result(spec, _describe(exc))


def _worker_main(task_queue, result_queue):
    """Worker loop: pull ``(epoch, index, spec, timeout)`` tasks, push
    ``(epoch, index, pickled outcome)`` results.  Outcomes are pickled
    in the worker so an unpicklable result surfaces as a classified
    failure rather than wedging the queue's feeder thread.  The epoch
    tag travels untouched: it lets a persistent pool tell a live wave's
    results from a written-off worker's stale ones."""
    while True:
        task = task_queue.get()
        if task is None:
            return
        epoch, index, spec, timeout = task
        try:
            with _time_limit(timeout):
                outcome = ("ok", run_spec(spec))
        except CaseTimeout:
            outcome = ("fail", f"timeout after {timeout:g}s")
        except BaseException as exc:
            outcome = ("fail", _describe(exc))
        try:
            blob = pickle.dumps(outcome)
        except Exception as exc:
            blob = pickle.dumps(
                ("fail", f"result not picklable ({_describe(exc)})"))
        result_queue.put((epoch, index, blob))


class _Worker:
    """One pool worker with a private task queue (so the parent always
    knows which case each worker holds — exact crash attribution)."""

    def __init__(self, ctx, result_queue):
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main, args=(self.task_queue, result_queue),
            daemon=True)
        self.process.start()
        self.index = None      # case index in flight, if any
        self.started = None    # monotonic time the case was assigned

    def assign(self, epoch, index, spec, timeout):
        self.index = index
        self.started = time.monotonic()
        self.task_queue.put((epoch, index, spec, timeout))

    def alive(self):
        return self.process.is_alive()

    def stop(self):
        try:
            self.task_queue.put(None)
        except Exception:
            pass

    def kill(self):
        if self.process.is_alive():
            self.process.kill()
        self.process.join()


def _context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_campaign(specs, jobs=1, timeout=None, report=None,
                 failure_result=None, grace=5.0, payload=None):
    """Run a campaign's specs and return results in enumeration order.

    ``jobs`` <= 1 runs serially in-process (same classification, no
    subprocesses).  ``timeout`` is the per-case budget in seconds;
    ``grace`` is how long past it the parent waits before killing a
    worker that ignored its alarm.  ``failure_result(spec, message)``
    builds the domain's failure record (default
    :class:`CampaignFailure`); ``report`` sees each result in
    enumeration order.  ``payload`` ships unpicklable context to forked
    workers — see :func:`call_payload`.
    """
    specs = list(specs)
    if failure_result is None:
        failure_result = lambda spec, message: CampaignFailure(  # noqa: E731
            spec.name, message)
    ctx = _context()
    if payload is not None and ctx.get_start_method() != "fork":
        jobs = 1  # payload callables only travel by fork inheritance
    global _PAYLOAD
    saved_payload = _PAYLOAD
    if payload is not None:
        _PAYLOAD = dict(payload)
    try:
        if jobs <= 1 or len(specs) <= 1:
            results = []
            for spec in specs:
                result = _run_guarded(spec, timeout, failure_result)
                results.append(result)
                if report is not None:
                    report(result)
            return results
        with WorkerPool(min(jobs, len(specs)), ctx=ctx) as pool:
            return pool.map(specs, timeout=timeout, report=report,
                            failure_result=failure_result, grace=grace)
    finally:
        _PAYLOAD = saved_payload


class WorkerPool:
    """A persistent pool of case workers, reusable across waves.

    :func:`run_campaign` spins one up per call; wave-structured drivers
    — the model checker's generation BFS (:mod:`repro.check.explore`)
    runs one campaign per frontier generation — keep a single pool
    alive across many :meth:`map` calls instead of respawning ``jobs``
    interpreters per wave.

    Each :meth:`map` call is one *epoch*.  Tasks and results carry the
    epoch tag, so a result arriving from a worker that was written off
    in an earlier wave (killed after a timeout, crashed mid-case, or
    simply slow to flush its queue before being replaced) can never be
    mistaken for a result of the current wave; within a wave the
    result-slot guard catches same-epoch stragglers as before.
    """

    def __init__(self, jobs, ctx=None):
        self._ctx = ctx if ctx is not None else _context()
        self.jobs = max(1, int(jobs))
        self._result_queue = self._ctx.Queue()
        self._workers = [
            _Worker(self._ctx, self._result_queue)
            for _ in range(self.jobs)
        ]
        self._epoch = 0
        self._closed = False

    def map(self, specs, timeout=None, report=None, failure_result=None,
            grace=5.0):
        """Run one wave of specs; returns results in enumeration order.

        Same contract as :func:`run_campaign` for ``timeout``,
        ``report``, ``failure_result`` and ``grace``.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        specs = list(specs)
        if failure_result is None:
            failure_result = lambda spec, message: CampaignFailure(  # noqa: E731
                spec.name, message)
        if not specs:
            return []
        self._epoch += 1
        epoch = self._epoch
        workers = self._workers
        # A worker still marked busy here belongs to a wave that was
        # abandoned mid-flight (exception between map calls): its index
        # and start time describe the old epoch, so retire it rather
        # than let this wave's watchdog misread them.
        for pos, worker in enumerate(workers):
            if worker.index is not None:
                worker.kill()
                workers[pos] = _Worker(self._ctx, self._result_queue)
        results = [_UNSET] * len(specs)
        #: Worker position each case was dispatched to, by case index —
        #: the feedback channel affinity-aware drivers use to tag the
        #: next wave (a child lands where its ancestor's caches live).
        self.last_assignments = [None] * len(specs)
        n_done = 0
        emitted = 0
        pending = list(range(len(specs)))
        idle = list(workers)

        def take_for(position):
            """The next case for the idle worker at ``position``:
            its affine case if one is pending, else the first pending
            unpinned case, else (work-conserving) the oldest pending
            case even if pinned elsewhere."""
            fallback = None
            for slot, index in enumerate(pending):
                affinity = specs[index].affinity
                if affinity is not None and affinity % self.jobs == position:
                    return pending.pop(slot)
                if fallback is None and affinity is None:
                    fallback = slot
            return pending.pop(fallback if fallback is not None else 0)

        def finish(index, result):
            nonlocal n_done, emitted
            if results[index] is not _UNSET:
                return  # stale message from a worker already written off
            results[index] = result
            n_done += 1
            if report is not None:
                while (emitted < len(results)
                        and results[emitted] is not _UNSET):
                    report(results[emitted])
                    emitted += 1

        def respawn(worker):
            fresh = _Worker(self._ctx, self._result_queue)
            workers[workers.index(worker)] = fresh
            idle.append(fresh)

        while n_done < len(specs):
            while idle and pending:
                worker = idle.pop()
                if not worker.alive():   # died idle; replace and retry
                    respawn(worker)
                    continue
                position = workers.index(worker)
                index = take_for(position)
                self.last_assignments[index] = position
                worker.assign(epoch, index, specs[index], timeout)
            try:
                r_epoch, index, blob = self._result_queue.get(
                    timeout=_POLL_S)
            except queue.Empty:
                now = time.monotonic()
                for worker in list(workers):
                    if worker.index is None:
                        continue
                    if not worker.alive():
                        code = worker.process.exitcode
                        finish(worker.index, failure_result(
                            specs[worker.index],
                            f"worker crashed (exit code {code})"))
                        respawn(worker)
                    elif timeout and now - worker.started > timeout + grace:
                        worker.kill()
                        finish(worker.index, failure_result(
                            specs[worker.index],
                            f"timeout after {timeout:g}s (worker killed)"))
                        respawn(worker)
                continue
            if r_epoch != epoch:
                continue  # a written-off worker's leftover from a past wave
            for worker in workers:
                if worker.index == index:
                    worker.index = None
                    idle.append(worker)
                    break
            status, value = pickle.loads(blob)
            if status == "ok":
                finish(index, value)
            else:
                finish(index, failure_result(specs[index], value))
        return results

    def close(self):
        """Stop every worker and release the queues."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.kill()
        self._result_queue.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
