"""Plain-text table/figure formatters matching the paper's reporting."""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in columns[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_figure5(comparisons):
    """Figure 5: speedup of nesting over flattening, with the nested-
    over-sequential annotation above each bar."""
    rows = [
        (c.name,
         f"{c.improvement:.2f}x",
         f"{c.total_speedup:.2f}",
         f"{c.flat_speedup:.2f}")
        for c in comparisons
    ]
    return format_table(
        ["benchmark", "nesting vs flattening", "nested vs sequential",
         "flat vs sequential"],
        rows,
        title="Figure 5: performance improvement with full nesting "
              "support over flattening (8 CPUs)")


def format_scaling(points, title, item_label="items"):
    """A throughput-scaling series (Sections 7.2/7.3 style)."""
    base = points[0]
    rows = [
        (p.n, p.work_items, p.cycles, f"{p.throughput:.3f}",
         f"{(p.throughput / base.throughput):.2f}x")
        for p in points
    ]
    return format_table(
        ["threads", item_label, "cycles", f"{item_label}/kcycle",
         "throughput vs smallest"],
        rows, title=title)


def format_cycle_accounting(account, title="cycle accounting"):
    """Render a :class:`~repro.obs.profiler.CycleAccount` as a table.

    One row per bucket with absolute cycles and share of the total
    budget, plus a totals row; wasted work and handler/commit overhead
    become visible at a glance.
    """
    from repro.obs.profiler import BUCKETS

    totals = account.totals
    rows = [
        (bucket, totals[bucket], f"{account.share(bucket) * 100:.1f}%")
        for bucket in BUCKETS
    ]
    rows.append(("total", account.grand_total,
                 "100.0%" if account.budget else "-"))
    table = format_table(["bucket", "cycles", "share"], rows, title=title)
    status = ("balanced" if account.balanced
              else "IMBALANCED: " + "; ".join(account.problems()))
    return (f"{table}\n  budget {account.budget} cycles "
            f"({account.cycles} x {account.n_cpus} cpus) -- {status}")


def format_bar_chart(labels_values, width=40, title=None):
    """An ASCII bar chart (for terminal-friendly figure rendering)."""
    lines = [title] if title else []
    peak = max(value for _, value in labels_values) or 1.0
    for label, value in labels_values:
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"{label:>22s} | {bar} {value:.2f}")
    return "\n".join(lines)
