"""The paper's Table 1 / Table 2 inventories and the §7 overhead
measurement, as library data — shared by the benchmark suite and the CLI.
"""

from __future__ import annotations

from repro.common.errors import TxRollback
from repro.common.params import functional_config
from repro.runtime import overheads
from repro.runtime.core import Runtime
from repro.sim import ops as O
from repro.sim.engine import Machine

#: Table 1 rows: (name, storage, description).
TABLE1 = [
    ("xstatus", "Reg",
     "Transaction info: ID, type (closed, open), status, nesting level"),
    ("xtcbptr_base", "Reg", "Base address of TCB stack"),
    ("xtcbptr_top", "Reg", "Address of current TCB frame"),
    ("xchcode", "Reg", "PC for commit handler code"),
    ("xvhcode", "Reg", "PC for violation handler code"),
    ("xahcode", "Reg", "PC for abort handler code"),
    ("xchptr", "TCB", "Base/top of commit handler stack"),
    ("xvhptr", "TCB", "Base/top of violation handler stack"),
    ("xahptr", "TCB", "Base/top of abort handler stack"),
    ("xvpc", "Reg", "Saved PC on violation or abort"),
    ("xvaddr", "Reg", "Violation address (if available)"),
    ("xvcurrent", "Reg", "Current violation mask: 1 bit per nesting level"),
    ("xvpending", "Reg", "Pending violation mask: 1 bit per nesting level"),
]

#: Table 2 rows: (mnemonic, op class, description).
TABLE2 = [
    ("xbegin", O.XBegin, "Checkpoint registers & start (closed) tx"),
    ("xbegin_open", O.XBegin, "Checkpoint registers & start open tx"),
    ("xvalidate", O.XValidate, "Validate read-set for current tx"),
    ("xcommit", O.XCommit, "Atomically commit current tx"),
    ("xrwsetclear", O.XRwSetClear,
     "Discard read-/write-set; clear xvpending at current level"),
    ("xregrestore", O.XRegRestore, "Restore current register checkpoint"),
    ("xabort", O.XAbort, "Abort current tx; jump to xahcode"),
    ("xvret", O.XVRet, "Return from handler; jump to xvpc"),
    ("xenviolrep", O.XEnViolRep, "Enable violation reporting"),
    ("imld", O.ImLoad, "Load without adding to read-set"),
    ("imst", O.ImStore, "Store without adding to write-set"),
    ("imstid", O.ImStoreId, "Store without write-set, no undo info"),
    ("release", O.Release, "Release an address from the read-set"),
]

#: The paper's Section 7 instruction counts per event.
PUBLISHED_OVERHEADS = {
    "xbegin": overheads.XBEGIN_INSTRUCTIONS,
    "commit (no handlers)": overheads.COMMIT_NO_HANDLER_INSTRUCTIONS,
    "rollback (no handlers)": overheads.ROLLBACK_NO_HANDLER_INSTRUCTIONS,
    "register handler (no args)": overheads.REGISTER_HANDLER_INSTRUCTIONS,
}

_A = 0xC_0000
_SHARED = 0xD_0000


def exercise_every_instruction():
    """One program that executes every Table 2 instruction; returns
    (machine, set of exercised mnemonics)."""
    machine = Machine(functional_config(n_cpus=1))
    executed = set()

    def program(t):
        executed.add("xbegin")
        yield O.XBegin()
        yield O.ImStore(_A, 1)
        executed.add("imst")
        yield O.ImStoreId(_A + 4, 2)
        executed.add("imstid")
        value = yield O.ImLoad(_A)
        assert value == 1
        executed.add("imld")
        yield O.Load(_A + 8)
        yield O.Release(_A + 8)
        executed.add("release")
        executed.add("xbegin_open")
        yield O.XBegin(open=True)
        yield O.Store(_A + 12, 3)
        yield O.XValidate()
        executed.add("xvalidate")
        yield O.XCommit()
        executed.add("xcommit")
        try:
            yield O.XAbort("demo")
        except TxRollback:
            executed.add("xabort")
            # the default dispatcher used xrwsetclear/xregrestore/xvret
            executed.add("xrwsetclear")
            executed.add("xregrestore")
            executed.add("xvret")
            yield O.XEnViolRep()
            executed.add("xenviolrep")
            yield O.XValidate()
            yield O.XCommit()

    machine.add_thread(program)
    machine.run()
    return machine, executed


def measure_overheads():
    """Measure the four §7 events on a live machine; returns a dict with
    the same keys as :data:`PUBLISHED_OVERHEADS`."""
    machine = Machine(functional_config(n_cpus=2))
    runtime = Runtime(machine)
    measured = {}

    def noop_handler(t):
        yield t.alu()

    def victim(t):
        start = t.instructions
        yield from runtime.begin_tx(t)
        measured["xbegin"] = t.instructions - start
        start = t.instructions
        yield from runtime.commit_tx(t)
        measured["commit (no handlers)"] = t.instructions - start

        yield from runtime.begin_tx(t)
        start = t.instructions
        yield from runtime.register_commit_handler(t, noop_handler)
        measured["register handler (no args)"] = t.instructions - start
        yield from runtime.commit_tx(t)

        # Rollback without handlers: get violated by the other CPU.
        def body(t):
            value = yield t.load(_SHARED)
            yield t.alu(300)
            return value

        yield from runtime.atomic(t, body)
        measured["rollback (no handlers)"] = \
            machine.cpus[0].handler_instructions

    def attacker(t):
        yield t.alu(100)

        def body(t):
            yield t.store(_SHARED, 1)

        yield from runtime.atomic(t, body)

    runtime.spawn(victim, cpu_id=0)
    runtime.spawn(attacker, cpu_id=1)
    machine.run()
    return measured
