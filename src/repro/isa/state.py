"""Architectural register state (paper Table 1).

``xstatus`` is derived from the HTM engine (transaction ID, type, status,
nesting level); everything else lives here.  The handler *stack pointers*
(``xchptr_base`` etc.) are TCB fields stored in simulated thread-private
memory — see :mod:`repro.isa.tcb` — exactly as Table 1 specifies.

Violation bookkeeping: the paper gives one ``xvaddr`` register and notes
that conflicts detected while reporting is disabled are remembered in
``xvpending`` and the handler is *re-invoked* after ``xvret`` (§4.3,
§4.6).  We model that re-invocation faithfully with a small hardware FIFO
of (mask, address) records: delivery pops one record into
``xvcurrent``/``xvaddr``; anything still queued is visible as
``xvpending`` and triggers another handler invocation on return.
"""

from __future__ import annotations

from collections import deque


class IsaState:
    """Registers of one hardware thread.

    Slotted: the violation registers are probed at every instruction
    boundary, so the per-step attribute loads should not go through a
    dict (subclasses built via the ``Machine.make_isa_state`` seam may
    still add their own attributes — they get a ``__dict__`` unless they
    declare slots too).
    """

    __slots__ = (
        "cpu_id", "xtcbptr_base", "xtcbptr_top", "xchcode", "xvhcode",
        "xahcode", "xvpc", "xvaddr", "xvcurrent", "_vqueue", "_live",
        "viol_reporting", "xabort_code", "requeue_enabled",
    )

    def __init__(self, cpu_id):
        self.cpu_id = cpu_id

        # --- basic state (Table 1) ---------------------------------------
        #: Base and current top of the TCB stack in thread-private memory.
        self.xtcbptr_base = 0
        self.xtcbptr_top = 0

        # --- handler state -------------------------------------------------
        #: Code-registry ids of the commit/violation/abort dispatcher code.
        #: 0 means "no software installed"; the hardware default applies.
        self.xchcode = 0
        self.xvhcode = 0
        self.xahcode = 0

        # --- violation & abort state ----------------------------------------
        #: PC saved when a violation/abort interrupted the transaction.  In
        #: this model the interrupted continuation is the suspended
        #: generator, so ``xvpc`` records the instruction count at the
        #: interrupt for diagnostics rather than a raw address.
        self.xvpc = 0
        #: Conflicting address (tracking-unit base) of the violation being
        #: handled, when the hardware had one to report.
        self.xvaddr = None
        #: Violation bitmask of the conflict being handled: bit ``level-1``
        #: set means that nesting level was violated.
        self.xvcurrent = 0
        #: Hardware FIFO of undelivered (mask, addr) conflict records.
        self._vqueue = deque()
        #: Signalled-and-unresolved bits per conflicting address.  The
        #: paper's ``xvpending`` is a *bitmask*: re-signalling a level
        #: already pending for the same line ORs into an already-set bit
        #: and raises no new handler invocation.  Our record FIFO models
        #: the re-invocation, so it must coalesce explicitly — an eager
        #: requester's parked operation retries every couple of cycles,
        #: and without coalescing each retry posts a fresh identical
        #: record that preempts the victim's in-flight compensation walk
        #: (unbounded nested dispatch; the rollback that would release
        #: the line never completes).  Bits clear when the conflict is
        #: resolved: ``xvclear`` or the rollback's ``xrwsetclear``.
        self._live = {}

        #: Violation-reporting enable (cleared on handler dispatch and
        #: ``xabort``; set by ``xvret`` / ``xenviolrep``).
        self.viol_reporting = True

        #: Abort code of the most recent ``xabort`` (software-visible).
        self.xabort_code = None

        #: Fault-injection hook: when False, :meth:`requeue_current`
        #: silently drops the record a dying dispatcher was handling —
        #: the exact bug DESIGN.md §6b.2 fixed.  The
        #: :class:`repro.faults.FaultInjector` flips this (fault kind
        #: ``drop-requeue``) to prove the lost-wakeup oracle catches the
        #: regression.
        self.requeue_enabled = True

    # ------------------------------------------------------------------

    @property
    def xvpending(self):
        """Pending-violation bitmask: the OR over undelivered records."""
        mask = 0
        for record_mask, _ in self._vqueue:
            mask |= record_mask
        return mask

    def post(self, mask, addr):
        """Hardware-side recording of a detected conflict.

        Idempotent per (level, address) until resolved: a conflict whose
        bits are all still signalled-and-unresolved for the same address
        is already on its way to a handler and is not recorded again.
        """
        live = self._live.get(addr, 0)
        if not (mask & ~live):
            return
        self._live[addr] = live | mask
        self._vqueue.append((mask, addr))

    def queue_depth(self):
        """Number of undelivered conflict records (diagnostics and the
        fault-quiescence oracle)."""
        return len(self._vqueue)

    def has_deliverable(self):
        """An *undelivered* conflict record is ready for handler dispatch.

        Delivery is driven by the queue alone: a record currently being
        handled lives in ``xvcurrent``/``xvaddr`` (saved and restored
        across nested dispatch like any interrupted register state), so a
        handler that re-enables reporting for an open-nested transaction
        is interrupted only by *new* conflicts, never re-entered for the
        one it is already handling.
        """
        return bool(self._vqueue)

    def pop_next(self):
        """Deliver the next queued conflict into ``xvcurrent``/``xvaddr``."""
        mask, addr = self._vqueue.popleft()
        self.xvcurrent = mask
        self.xvaddr = addr

    def clear_current(self, mask=None):
        """``xvclear``: software acknowledges handled conflicts."""
        if mask is None:
            cleared = self.xvcurrent
            self.xvcurrent = 0
        else:
            cleared = self.xvcurrent & mask
            self.xvcurrent &= ~mask
        if cleared:
            self._unlive(self.xvaddr, cleared)

    def _unlive(self, addr, mask):
        """Resolve signalled bits so the conflict can be re-posted."""
        live = self._live.get(addr, 0) & ~mask
        if live:
            self._live[addr] = live
        elif addr in self._live:
            del self._live[addr]

    def requeue_current(self, rollback_level):
        """A dispatcher died before finishing (a nested rollback unwound
        it).  Re-queue the record it was handling, restricted to the
        levels that survive the rollback, so the conflict is re-delivered
        instead of silently dropped."""
        keep = (1 << (rollback_level - 1)) - 1
        mask = self.xvcurrent & keep
        if mask and self.requeue_enabled:
            self._vqueue.appendleft((mask, self.xvaddr))
        self.xvcurrent = 0

    def retire_level(self, level, merged):
        """Hardware commit of ``level``: pending bits follow the sets.

        A closed commit (``merged=True``) hands the level's read/write
        sets to its parent, so a pending violation bit moves down with
        them; an open or outermost commit discards the sets, and pending
        bits for the level die with them.  Without this, a record posted
        during a reporting-off window outlives the transaction it names
        and is mis-delivered against whatever runs at that level next.
        """
        bit = 1 << (level - 1)

        def fix(mask):
            if not mask & bit:
                return mask
            mask &= ~bit
            if merged:
                mask |= bit >> 1
            return mask

        self.xvcurrent = fix(self.xvcurrent)
        remaining = deque()
        for mask, addr in self._vqueue:
            mask = fix(mask)
            if mask:
                remaining.append((mask, addr))
        self._vqueue = remaining
        for addr in list(self._live):
            live = fix(self._live[addr])
            if live:
                self._live[addr] = live
            else:
                del self._live[addr]

    # ------------------------------------------------------------------
    # Snapshot support (repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        """Immutable capture of every register (except the identity)."""
        return (
            self.xtcbptr_base, self.xtcbptr_top, self.xchcode,
            self.xvhcode, self.xahcode, self.xvpc, self.xvaddr,
            self.xvcurrent, tuple(self._vqueue), dict(self._live),
            self.viol_reporting, self.xabort_code, self.requeue_enabled,
        )

    def restore_state(self, saved):
        """Overwrite every register from a :meth:`snapshot_state` capture."""
        (self.xtcbptr_base, self.xtcbptr_top, self.xchcode,
         self.xvhcode, self.xahcode, self.xvpc, self.xvaddr,
         self.xvcurrent, vqueue, live, self.viol_reporting,
         self.xabort_code, self.requeue_enabled) = saved
        self._vqueue = deque(vqueue)
        self._live = dict(live)

    def clear_masks_at_and_above(self, level):
        """Drop the violation bits for ``level`` and deeper, both current
        and queued (performed by ``xrwsetclear``, paper §4.3/§4.6)."""
        keep = (1 << (level - 1)) - 1
        self.xvcurrent &= keep
        remaining = deque()
        for mask, addr in self._vqueue:
            mask &= keep
            if mask:
                remaining.append((mask, addr))
        self._vqueue = remaining
        for addr in list(self._live):
            live = self._live[addr] & keep
            if live:
                self._live[addr] = live
            else:
                del self._live[addr]


def lowest_level_in_mask(mask):
    """Outermost (lowest) violated nesting level named by ``mask``."""
    level = 1
    while mask:
        if mask & 1:
            return level
        mask >>= 1
        level += 1
    return 0
