"""Code registry: simulated code addresses for handler code.

The paper's handler registers (``xvhcode`` etc.) and handler-stack entries
hold PCs.  In this model a "PC" is an integer id naming a registered
generator function; the hardware (engine) and software (runtime) both jump
to code by id.  Ids are machine-global, dense, and start at 1 so that 0
can mean "no handler installed".
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class CodeRegistry:
    """Machine-wide id -> generator-function table."""

    def __init__(self):
        self._code = {}
        self._ids = {}
        self._next = 1

    def register(self, fn):
        """Register ``fn`` and return its code id (idempotent per fn)."""
        if fn in self._ids:
            return self._ids[fn]
        code_id = self._next
        self._next += 1
        self._code[code_id] = fn
        self._ids[fn] = code_id
        return code_id

    def get(self, code_id):
        """Resolve a code id; raises on a wild jump."""
        try:
            return self._code[code_id]
        except KeyError:
            raise SimulationError(f"jump to unregistered code id {code_id}")

    def reset(self):
        """Forget every registration (machine re-use across runs).

        Registration order is deterministic per program setup, so a
        reset followed by an identical setup reproduces the same ids —
        the property the snapshot/restore layer relies on."""
        self._code.clear()
        self._ids.clear()
        self._next = 1

    def __contains__(self, code_id):
        return code_id in self._code

    def __len__(self):
        return len(self._code)
