"""Transaction Control Block layout in thread-private memory (paper Fig. 2).

Each active transaction in the nest owns a fixed-length TCB frame on a
stack in thread-private memory, "in the same manner as a function call is
associated with an activation record" (§4).  The read-/write-sets,
write-buffer/undo-log, and the register checkpoint are logically part of
the TCB but physically live in caches/registers (modelled by
:mod:`repro.htm`); the memory-resident fields are the three handler-stack
top pointers plus a status word.

The runtime accesses these fields with ``imld``/``imst``/``imstid`` so the
accesses bypass conflict tracking, exactly as §4.7 prescribes.
"""

from __future__ import annotations

from repro.common.addr import private_base
from repro.common.params import WORD_SIZE

# ---------------------------------------------------------------------------
# TCB frame field offsets (in words)
# ---------------------------------------------------------------------------

#: Commit-handler stack top (address).
CH_TOP = 0
#: Violation-handler stack top (address).
VH_TOP = 1
#: Abort-handler stack top (address).
AH_TOP = 2
#: Software status word (scratch copy of xstatus for debuggers).
STATUS = 3

#: Words per TCB frame (fixed length makes handler-stack merging trivial,
#: paper §4.6).
FRAME_WORDS = 4
FRAME_BYTES = FRAME_WORDS * WORD_SIZE

# ---------------------------------------------------------------------------
# Thread-private segment layout (byte offsets from private_base(cpu))
# ---------------------------------------------------------------------------

#: TCB stack region: frame 0 sits at the base; deeper nesting grows up.
TCB_STACK_OFFSET = 0x0000
TCB_STACK_BYTES = 0x0400          # 64 frames

#: The three handler stacks.  Entries are [code_id, nargs, arg...].
CH_STACK_OFFSET = 0x1000
VH_STACK_OFFSET = 0x2000
AH_STACK_OFFSET = 0x3000
HANDLER_STACK_BYTES = 0x1000

#: Runtime-private scratch area (I/O buffers, condsync records, ...).
SCRATCH_OFFSET = 0x1_0000
SCRATCH_BYTES = 0xF_0000


def tcb_stack_base(cpu_id):
    return private_base(cpu_id) + TCB_STACK_OFFSET


def frame_addr(cpu_id, level):
    """Address of the TCB frame for nesting ``level``.

    Slot 0 is the sentinel frame holding the thread's handler-stack bases;
    the frame for the level-``n`` transaction occupies slot ``n``.
    """
    return tcb_stack_base(cpu_id) + level * FRAME_BYTES


def field_addr(cpu_id, level, field):
    """Address of ``field`` (word offset) in the frame for ``level``."""
    return frame_addr(cpu_id, level) + field * WORD_SIZE


def handler_stack_base(cpu_id, kind):
    """Base address of the ``kind`` handler stack ('commit'/'violation'/
    'abort')."""
    offsets = {
        "commit": CH_STACK_OFFSET,
        "violation": VH_STACK_OFFSET,
        "abort": AH_STACK_OFFSET,
    }
    return private_base(cpu_id) + offsets[kind]


def scratch_base(cpu_id):
    return private_base(cpu_id) + SCRATCH_OFFSET
