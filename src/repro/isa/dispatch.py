"""Handler-dispatch protocol between hardware (engine) and software.

When a violation or abort must be delivered, the engine suspends the
program, disables violation reporting, and runs the *dispatcher* code
named by ``xvhcode``/``xahcode`` as a separate frame on the same hardware
thread (the model of the paper's user-level-exception-style jump).  The
dispatcher finishes by returning a :class:`HandlerOutcome`:

* ``resume()`` — return via ``xvret`` to the interrupted PC (the paper's
  "ignore violation / continue" path);
* ``rollback(level, reason, code)`` — the dispatcher already executed
  ``xrwsetclear``/``xregrestore``; the engine unwinds the program's Python
  frames down to the ``atomic`` wrapper at ``level`` by raising
  :class:`~repro.common.errors.TxRollback` (the model of jumping to the
  restart PC).

The hardware defaults (used when no software dispatcher is installed,
i.e. the code registers are 0) roll the transaction back to the outermost
violated level, which is what conventional HTM systems do.
"""

from __future__ import annotations

import dataclasses

from repro.isa.state import lowest_level_in_mask
from repro.sim.ops import XRegRestore, XRwSetClear, XVRet


@dataclasses.dataclass
class HandlerOutcome:
    """Decision returned by a dispatcher frame."""

    kind: str               # "resume" | "rollback"
    level: int = 0          # rollback target (1-based)
    reason: str = "violation"
    code: object = None     # abort code, if any
    vaddr: object = None

    @classmethod
    def resume(cls):
        return cls(kind="resume")

    @classmethod
    def rollback(cls, level, reason="violation", code=None, vaddr=None):
        return cls(kind="rollback", level=level, reason=reason, code=code,
                   vaddr=vaddr)


def default_violation_dispatcher(t):
    """Hardware default: roll back to the outermost violated level."""
    target = lowest_level_in_mask(t.isa.xvcurrent) or 1
    vaddr = t.isa.xvaddr
    yield XRwSetClear(level=target)
    yield XRegRestore()
    yield XVRet()
    return HandlerOutcome.rollback(target, reason="violation", vaddr=vaddr)


def default_abort_dispatcher(t):
    """Hardware default for ``xabort``: roll back the current transaction."""
    target = t.depth()
    code = t.isa.xabort_code
    yield XRwSetClear(level=target)
    yield XRegRestore()
    yield XVRet()
    return HandlerOutcome.rollback(target, reason="abort", code=code)
