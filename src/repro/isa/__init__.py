"""The paper's HTM instruction set architecture.

Registers and bitmasks (Table 1), the TCB stack layout (Figure 2), the
code registry modelling handler PCs, the hardware dispatch protocol, and
the per-CPU op executor.
"""

from repro.isa.codereg import CodeRegistry
from repro.isa.context import (
    DONE,
    RUNNABLE,
    WAITING,
    Cpu,
    ExecOutcome,
    latency_outcome,
    register_op_handler,
    unregister_op_handler,
)
from repro.isa.dispatch import (
    HandlerOutcome,
    default_abort_dispatcher,
    default_violation_dispatcher,
)
from repro.isa.state import IsaState, lowest_level_in_mask
from repro.isa import tcb

__all__ = [
    "CodeRegistry",
    "Cpu",
    "DONE",
    "ExecOutcome",
    "HandlerOutcome",
    "IsaState",
    "RUNNABLE",
    "WAITING",
    "default_abort_dispatcher",
    "default_violation_dispatcher",
    "latency_outcome",
    "lowest_level_in_mask",
    "register_op_handler",
    "tcb",
    "unregister_op_handler",
]
