"""The hardware thread: architectural state plus the op executor.

A :class:`Cpu` is both the *hardware* (it executes the operations the
program yields, charging latencies through the memory model and driving
the HTM engine) and the *handle* that simulated software holds (it exposes
op constructors such as :meth:`load`, plus the registers in :attr:`isa`).

The engine (:mod:`repro.sim.engine`) owns scheduling, violation-handler
dispatch, and rollback unwinding; this module owns per-instruction
semantics and timing.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import IsaError, SimulationError
from repro.htm.conflict import PROCEED, SELF_ABORT, STALL
from repro.htm.system import VALIDATED
from repro.sim import ops as O

#: Thread scheduler states.
RUNNABLE = "runnable"
WAITING = "waiting"
DONE = "done"

@dataclasses.dataclass(slots=True)
class ExecOutcome:
    """Result of executing one operation (one per executed op — slotted
    to keep the per-step allocation cheap)."""

    latency: int = 1
    value: object = None
    stall: bool = False
    deschedule: bool = False


class Cpu:
    """One hardware thread of the simulated CMP."""

    def __init__(self, cpu_id, machine):
        self.cpu_id = cpu_id
        self.machine = machine
        self.isa = machine.make_isa_state(cpu_id)
        self.stats = machine.stats.scope(f"cpu{cpu_id}")
        # Instruction counts live in plain attributes (they bump on every
        # executed op — even a bound counter's dict update is measurable)
        # and are flushed into the stats table when the engine run ends.
        self.icount = 0
        self.handler_icount = 0
        self._n_violations_received = self.stats.counter(
            "htm.violations_received")

        # --- thread/scheduler state (owned by the engine) -----------------
        self.frames = []          # generator stack: program, [dispatchers]
        self.dispatch_depth = 0
        self.send_value = None
        self.throw_exc = None
        #: Stalled operations parked per frame index (a dispatcher can
        #: stall independently of the program beneath it).
        self.parked = {}
        #: Pending op results of interrupted frames, restored when a
        #: dispatcher resumes them.
        self.saved_sends = {}
        #: (xvcurrent, xvaddr) of interrupted frames, saved across nested
        #: dispatch like any other interrupted register state.
        self.saved_viol = {}
        self.state = DONE
        self.resume_at = 0
        self.daemon = False
        self.wake_tokens = 0
        self.pending_abort = False
        self.result = None
        self.failure = None

        #: Slot for the software runtime's per-thread state.
        self.rt = None

    # ------------------------------------------------------------------
    # Program-facing op constructors (the "assembler")
    # ------------------------------------------------------------------

    def load(self, addr):
        return O.Load(addr)

    def store(self, addr, value):
        return O.Store(addr, value)

    def imld(self, addr):
        return O.ImLoad(addr)

    def imst(self, addr, value):
        return O.ImStore(addr, value)

    def imstid(self, addr, value):
        return O.ImStoreId(addr, value)

    def release(self, addr):
        return O.Release(addr)

    def alu(self, cycles=1):
        return O.Alu(cycles)

    # ------------------------------------------------------------------
    # Introspection for software
    # ------------------------------------------------------------------

    def depth(self):
        """Current hardware nesting level (0 = non-transactional)."""
        return self.machine.htm.depth(self.cpu_id)

    def tx_is_open(self):
        """True if the current (innermost) transaction is open-nested."""
        state = self.machine.htm.states[self.cpu_id]
        return state.in_tx() and state.current().open

    def commit_publishes(self):
        """True if committing the current transaction writes shared memory
        (outermost or open-nested; False for closed-nested and for
        transactions subsumed by flattening)."""
        state = self.machine.htm.states[self.cpu_id]
        if not state.in_tx():
            return False
        if state.flatten_extra:
            return False
        return state.current().open or state.depth() == 1

    def xstatus(self):
        return self.machine.htm.xstatus(self.cpu_id)

    @property
    def instructions(self):
        return self.icount

    @property
    def handler_instructions(self):
        return self.handler_icount

    def flush_stats(self):
        """Publish the plain-attribute instruction counts to the stats
        table (idempotent; the engine calls it when a run ends)."""
        self.stats.set("instructions", self.icount)
        self.stats.set("handler_instructions", self.handler_icount)

    @property
    def now(self):
        return self.machine.now

    # ------------------------------------------------------------------
    # Hardware-side violation delivery
    # ------------------------------------------------------------------

    def deliver(self, violation):
        """Record a posted conflict in the violation registers and make
        sure the thread will notice it (wake it if descheduled)."""
        self.isa.post(violation.mask, violation.addr)
        self._n_violations_received.add()
        if self.state == WAITING:
            self.machine.wake(self.cpu_id)

    # ------------------------------------------------------------------
    # Op execution
    # ------------------------------------------------------------------

    def execute(self, op, now):
        """Execute ``op`` at cycle ``now``; may raise CapacityAbort."""
        outcome = self._execute(op, now)
        if not outcome.stall:
            count = op.cycles if isinstance(op, O.Alu) else 1
            self.icount += count
            if self.dispatch_depth:
                # Work done inside violation/abort dispatchers (the paper's
                # handler-management overhead, Section 7).
                self.handler_icount += count
        return outcome

    def _execute(self, op, now):
        machine = self.machine
        htm = machine.htm
        mem = machine.memmodel

        if isinstance(op, O.Load):
            action, value = htm.load(self.cpu_id, op.addr)
            if action == STALL:
                return ExecOutcome(stall=True)
            if action == SELF_ABORT:
                self._self_abort(op.addr)
                return ExecOutcome(stall=True)
            latency = mem.access(self.cpu_id, op.addr, False, now)
            return ExecOutcome(latency=latency, value=value)

        if isinstance(op, O.Store):
            action = htm.store(self.cpu_id, op.addr, op.value)
            if action == STALL:
                return ExecOutcome(stall=True)
            if action == SELF_ABORT:
                self._self_abort(op.addr)
                return ExecOutcome(stall=True)
            latency = mem.access(self.cpu_id, op.addr, True, now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.ImLoad):
            value = htm.im_load(self.cpu_id, op.addr)
            latency = mem.access(self.cpu_id, op.addr, False, now)
            return ExecOutcome(latency=latency, value=value)

        if isinstance(op, O.ImStore):
            htm.im_store(self.cpu_id, op.addr, op.value)
            latency = mem.access(self.cpu_id, op.addr, True, now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.ImStoreId):
            htm.im_store_id(self.cpu_id, op.addr, op.value)
            latency = mem.access(self.cpu_id, op.addr, True, now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.Release):
            released = htm.release(self.cpu_id, op.addr)
            return ExecOutcome(value=released)

        if isinstance(op, O.Alu):
            return ExecOutcome(latency=max(1, op.cycles))

        if isinstance(op, O.XBegin):
            level = htm.begin(self.cpu_id, op.open, now)
            return ExecOutcome(value=level)

        if isinstance(op, O.XValidate):
            publishing = self.commit_publishes()
            if not htm.validate(self.cpu_id):
                return ExecOutcome(stall=True)
            latency = 1
            if publishing and machine.config.detection == "lazy":
                # Validation announces the write-set on the bus so other
                # validators can check against it.
                latency = mem.arbitrate_commit(now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.XCommit):
            committed_level = self.depth()
            result = htm.commit(self.cpu_id)
            if result.kind != "flattened":
                self.isa.retire_level(
                    committed_level, merged=result.kind == "closed")
            if result.kind in ("outer", "open"):
                latency = mem.commit_broadcast(
                    self.cpu_id, result.written_words, now)
                if machine.config.double_buffering:
                    # §6.3.3: the nesting hardware's spare tracking slots
                    # let the CPU run its next transaction while the
                    # broadcast drains; the bus occupancy (charged above,
                    # visible to everyone else) is hidden from this CPU.
                    self.stats.add("htm.hidden_commit_cycles", latency - 1)
                    latency = 1
            else:
                latency = 1
            self.stats.add("htm.commit_cycles", latency)
            return ExecOutcome(latency=latency, value=result.kind)

        if isinstance(op, O.XAbort):
            if self.depth() < 1:
                raise IsaError("xabort outside a transaction")
            self.isa.xabort_code = op.code
            self.isa.viol_reporting = False
            self.pending_abort = True
            return ExecOutcome()

        if isinstance(op, O.XRwSetClear):
            target = op.level if op.level is not None else self.depth()
            work = self.do_rollback(target)
            latency = 1 + work * machine.config.undo_cycles_per_entry
            self.stats.add("htm.rollback_cycles", latency)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.XRegRestore):
            # The architectural restore; the engine performs the actual
            # frame unwinding when the dispatcher returns its outcome.
            return ExecOutcome()

        if isinstance(op, O.XVRet):
            self.isa.viol_reporting = True
            return ExecOutcome()

        if isinstance(op, O.XEnViolRep):
            self.isa.viol_reporting = True
            return ExecOutcome()

        if isinstance(op, O.XVClear):
            self.isa.clear_current(op.mask)
            return ExecOutcome()

        if isinstance(op, O.YieldCpu):
            if self.wake_tokens > 0:
                self.wake_tokens -= 1
                return ExecOutcome()
            return ExecOutcome(deschedule=True)

        if isinstance(op, O.Wake):
            machine.wake(op.cpu_id)
            return ExecOutcome()

        if isinstance(op, O.Fence):
            return ExecOutcome()

        if isinstance(op, O.SerialAcquire):
            return ExecOutcome(value=htm.try_acquire_serial(self.cpu_id))

        if isinstance(op, O.SerialRelease):
            htm.release_serial(self.cpu_id)
            return ExecOutcome()

        raise SimulationError(f"cpu {self.cpu_id}: not an operation: {op!r}")

    # ------------------------------------------------------------------

    def do_rollback(self, target_level):
        """Hardware rollback to ``target_level``: discard speculative
        state, clear the violation masks for the cleared levels, and
        restart the target as a fresh transaction."""
        work = self.machine.htm.rollback_to(
            self.cpu_id, target_level, now=self.machine.now)
        self.isa.clear_masks_at_and_above(target_level)
        return work

    def _self_abort(self, addr):
        """Eager deadlock avoidance: the requester violates itself.

        The mask covers only the levels *above* the deepest VALIDATED
        one: a validated transaction must never be violated (paper
        §6.1), and this path posts directly into the violation
        registers, bypassing the detector's validated-set check.  In
        practice the validated levels are the ones a commit handler is
        flushing while its open-nested transaction (the only level that
        can still conflict) restarts around them.
        """
        level = max(1, self.depth())
        mask = (1 << level) - 1
        state = self.machine.htm.states[self.cpu_id]
        for lvl in range(len(state.levels), 0, -1):
            if state.levels[lvl - 1].status == VALIDATED:
                mask &= ~((1 << lvl) - 1)
                break
        if not mask:
            # Unreachable in practice — the conflicting access can only
            # issue from an ACTIVE innermost level — but never post an
            # empty mask.
            mask = 1 << (level - 1)
        self.isa.post(mask, addr)
        self.stats.add("htm.self_aborts")
