"""The hardware thread: architectural state plus the op executor.

A :class:`Cpu` is both the *hardware* (it executes the operations the
program yields, charging latencies through the memory model and driving
the HTM engine) and the *handle* that simulated software holds (it exposes
op constructors such as :meth:`load`, plus the registers in :attr:`isa`).

The engine (:mod:`repro.sim.engine`) owns scheduling, violation-handler
dispatch, and rollback unwinding; this module owns per-instruction
semantics and timing.

Interpreter hot path (docs/performance.md)
------------------------------------------

Every simulated instruction flows through :attr:`Cpu.execute`, so its
constant factor decides the simulator's steps/s.  Two structures keep it
cheap:

* **Dispatch table.**  Each op type maps to a bound handler method in a
  per-CPU dict built once in ``__init__`` from the
  :data:`repro.sim.ops.ALL_OPS` vocabulary; executing an op is one dict
  lookup on ``type(op)`` instead of a ~20-way ``isinstance`` chain.
  Extension ops register through :func:`register_op_handler`; subclasses
  of built-in ops (and any op registered after a Cpu was built) resolve
  lazily through :meth:`Cpu._resolve_handler`, which falls back to the
  retained reference chain (:meth:`Cpu._execute_chain`).

* **Outcome interning.**  Ops whose result carries no value return shared
  immutable :class:`ExecOutcome` instances (the STALL singleton, the
  latency-1 singleton, and a small latency-keyed cache) instead of
  allocating a fresh object per instruction.  Only value-carrying
  outcomes (loads, commits, ...) still allocate.

The pre-table interpreter survives as :meth:`Cpu._execute_chain` — it is
the differential-testing reference and the bench harness's in-run naive
baseline (``config.naive_interp``), exactly like ``naive_detection`` for
the conflict detectors.
"""

from __future__ import annotations

import dataclasses
from types import MethodType

from repro.common.errors import IsaError, SimulationError
from repro.htm.conflict import SELF_ABORT, STALL
from repro.htm.system import VALIDATED
from repro.sim import ops as O

#: Thread scheduler states.
RUNNABLE = "runnable"
WAITING = "waiting"
DONE = "done"

@dataclasses.dataclass(slots=True)
class ExecOutcome:
    """Result of executing one operation (slotted to keep the per-step
    cost cheap; hot no-value shapes are shared via interning below)."""

    latency: int = 1
    value: object = None
    stall: bool = False
    deschedule: bool = False


class _InternedOutcome(ExecOutcome):
    """A shared :class:`ExecOutcome` shape, frozen after construction.

    Interned outcomes are returned for *every* op of their shape, so a
    single mutation would silently corrupt every later instruction; the
    override turns that bug into an immediate error.
    """

    __slots__ = ()

    def __setattr__(self, name, value):
        raise AttributeError(
            "interned ExecOutcome instances are immutable (allocate a "
            "fresh ExecOutcome instead of mutating a shared one)")

    def __delattr__(self, name):
        raise AttributeError(
            "interned ExecOutcome instances are immutable (allocate a "
            "fresh ExecOutcome instead of mutating a shared one)")


def _intern(latency=1, value=None, stall=False, deschedule=False):
    outcome = _InternedOutcome.__new__(_InternedOutcome)
    setattr_ = object.__setattr__
    setattr_(outcome, "latency", latency)
    setattr_(outcome, "value", value)
    setattr_(outcome, "stall", stall)
    setattr_(outcome, "deschedule", deschedule)
    return outcome


#: The shared hot shapes: a stalled op, a latency-1/no-value op, and the
#: YieldCpu deschedule.
_STALL = _intern(stall=True)
_UNIT = _intern()
_DESCHEDULE = _intern(deschedule=True)

#: Interned no-value outcomes keyed by latency.  Latencies come from the
#: memory model (cache/memory/bus constants plus bounded queueing), so
#: the working set is small; anything past the cap — pathological custom
#: configs — falls back to a fresh allocation.
_LATENCY_CACHE_LIMIT = 4096
_latency_cache = {1: _UNIT}


def latency_outcome(latency):
    """A no-value :class:`ExecOutcome` with ``latency``, interned."""
    outcome = _latency_cache.get(latency)
    if outcome is None:
        if latency <= _LATENCY_CACHE_LIMIT:
            outcome = _latency_cache[latency] = _intern(latency=latency)
        else:
            outcome = ExecOutcome(latency=latency)
    return outcome


# Interned program-facing ops.  Load/ImLoad/Alu are frozen dataclasses
# fully determined by one field, and programs re-issue the same handful
# of addresses and ALU widths constantly; handing back a shared
# instance skips a dataclass construction per dynamic instruction.
# (Value-carrying Store/ImStore ops are not interned: their value field
# has unbounded variety.)
_OP_CACHE_LIMIT = 1 << 16
_LOAD_CACHE = {}
_IMLOAD_CACHE = {}
_ALU_CACHE = {}


# ---------------------------------------------------------------------------
# Extension-op registration seam
# ---------------------------------------------------------------------------

#: Exact op type -> ``handler(cpu, op, now) -> ExecOutcome``.
_EXTENSION_HANDLERS = {}


def register_op_handler(op_cls, handler):
    """Register an executor for an extension :class:`~repro.sim.ops.Op`.

    ``handler(cpu, op, now)`` must return an :class:`ExecOutcome`.
    Registration is by *exact* type.  Cpus built afterwards bind the
    handler into their dispatch table up front; Cpus that already exist
    pick it up lazily on the first executed instance.  Both interpreter
    paths (table and reference chain) honour the registry, so extension
    ops stay covered by the differential suite.
    """
    if not (isinstance(op_cls, type) and issubclass(op_cls, O.Op)):
        raise IsaError(f"register_op_handler: {op_cls!r} is not an Op type")
    if not callable(handler):
        raise IsaError(f"register_op_handler: {handler!r} is not callable")
    _EXTENSION_HANDLERS[op_cls] = handler


def unregister_op_handler(op_cls):
    """Remove an extension handler (no-op if absent).  Existing Cpus keep
    their lazily-bound entry; new Cpus will reject the op again."""
    _EXTENSION_HANDLERS.pop(op_cls, None)


class Cpu:
    """One hardware thread of the simulated CMP."""

    __slots__ = (
        "cpu_id", "machine", "isa", "stats", "icount", "handler_icount",
        "_n_violations_received", "frames", "dispatch_depth", "send_value",
        "throw_exc", "parked", "saved_sends", "saved_viol", "state",
        "resume_at", "daemon", "wake_tokens", "pending_abort", "result",
        "failure", "rt", "_htm", "_mem", "_dispatch", "execute",
    )

    def __init__(self, cpu_id, machine):
        self.cpu_id = cpu_id
        self.machine = machine
        self.isa = machine.make_isa_state(cpu_id)
        self.stats = machine.stats.scope(f"cpu{cpu_id}")
        # Instruction counts live in plain attributes (they bump on every
        # executed op — even a bound counter's dict update is measurable)
        # and are flushed into the stats table when the engine run ends.
        self.icount = 0
        self.handler_icount = 0
        self._n_violations_received = self.stats.counter(
            "htm.violations_received")

        # --- thread/scheduler state (owned by the engine) -----------------
        self.frames = []          # generator stack: program, [dispatchers]
        self.dispatch_depth = 0
        self.send_value = None
        self.throw_exc = None
        #: Stalled operations parked per frame index (a dispatcher can
        #: stall independently of the program beneath it).
        self.parked = {}
        #: Pending op results of interrupted frames, restored when a
        #: dispatcher resumes them.
        self.saved_sends = {}
        #: (xvcurrent, xvaddr) of interrupted frames, saved across nested
        #: dispatch like any other interrupted register state.
        self.saved_viol = {}
        self.state = DONE
        self.resume_at = 0
        self.daemon = False
        self.wake_tokens = 0
        self.pending_abort = False
        self.result = None
        self.failure = None

        #: Slot for the software runtime's per-thread state.
        self.rt = None

        # --- interpreter hot path -----------------------------------------
        # The HTM and memory-model *objects* are fixed for the machine's
        # lifetime, so handlers bind them once; their methods are still
        # resolved per call, which keeps the instrument/fault seams (that
        # shadow e.g. ``htm.validate``) working.
        self._htm = machine.htm
        self._mem = machine.memmodel
        self._dispatch = self._build_dispatch()
        #: The public executor, held in a slot so instruments (the cycle
        #: profiler) can shadow it per-CPU and restore it exactly.
        #: ``naive_interp`` selects the retained reference chain — the
        #: bench harness's in-run baseline.
        if getattr(machine.config, "naive_interp", False):
            self.execute = self._execute_chain_step
        else:
            self.execute = self._execute_step

    def _build_dispatch(self):
        """Bind one handler per op type (core vocabulary + extensions)."""
        table = {}
        for op_cls, func in _CORE_HANDLERS.items():
            table[op_cls] = MethodType(func, self)
        for op_cls, func in _EXTENSION_HANDLERS.items():
            table[op_cls] = MethodType(func, self)
        return table

    # ------------------------------------------------------------------
    # Program-facing op constructors (the "assembler")
    # ------------------------------------------------------------------

    def load(self, addr):
        op = _LOAD_CACHE.get(addr)
        if op is None:
            op = O.Load(addr)
            if len(_LOAD_CACHE) < _OP_CACHE_LIMIT:
                _LOAD_CACHE[addr] = op
        return op

    def store(self, addr, value):
        return O.Store(addr, value)

    def imld(self, addr):
        op = _IMLOAD_CACHE.get(addr)
        if op is None:
            op = O.ImLoad(addr)
            if len(_IMLOAD_CACHE) < _OP_CACHE_LIMIT:
                _IMLOAD_CACHE[addr] = op
        return op

    def imst(self, addr, value):
        return O.ImStore(addr, value)

    def imstid(self, addr, value):
        return O.ImStoreId(addr, value)

    def release(self, addr):
        return O.Release(addr)

    def alu(self, cycles=1):
        op = _ALU_CACHE.get(cycles)
        if op is None:
            op = O.Alu(cycles)
            if len(_ALU_CACHE) < _OP_CACHE_LIMIT:
                _ALU_CACHE[cycles] = op
        return op

    # ------------------------------------------------------------------
    # Introspection for software
    # ------------------------------------------------------------------

    def depth(self):
        """Current hardware nesting level (0 = non-transactional)."""
        return self.machine.htm.depth(self.cpu_id)

    def tx_is_open(self):
        """True if the current (innermost) transaction is open-nested."""
        state = self.machine.htm.states[self.cpu_id]
        return state.in_tx() and state.current().open

    def commit_publishes(self):
        """True if committing the current transaction writes shared memory
        (outermost or open-nested; False for closed-nested and for
        transactions subsumed by flattening)."""
        state = self.machine.htm.states[self.cpu_id]
        if not state.in_tx():
            return False
        if state.flatten_extra:
            return False
        return state.current().open or state.depth() == 1

    def xstatus(self):
        return self.machine.htm.xstatus(self.cpu_id)

    @property
    def instructions(self):
        return self.icount

    @property
    def handler_instructions(self):
        return self.handler_icount

    def flush_stats(self):
        """Publish the plain-attribute instruction counts to the stats
        table (idempotent; the engine calls it when a run ends)."""
        self.stats.set("instructions", self.icount)
        self.stats.set("handler_instructions", self.handler_icount)

    @property
    def now(self):
        return self.machine.now

    # ------------------------------------------------------------------
    # Hardware-side violation delivery
    # ------------------------------------------------------------------

    def deliver(self, violation):
        """Record a posted conflict in the violation registers and make
        sure the thread will notice it (wake it if descheduled)."""
        self.isa.post(violation.mask, violation.addr)
        self._n_violations_received.add()
        if self.state == WAITING:
            self.machine.wake(self.cpu_id)

    # ------------------------------------------------------------------
    # Op execution
    # ------------------------------------------------------------------

    def _execute_step(self, op, now):
        """Execute ``op`` at cycle ``now``; may raise CapacityAbort.

        This is the table-dispatched executor bound to :attr:`execute`.
        """
        handler = self._dispatch.get(op.__class__)
        if handler is None:
            handler = self._resolve_handler(op)
        outcome = handler(op, now)
        if not outcome.stall:
            count = op.cycles if isinstance(op, O.Alu) else 1
            self.icount += count
            if self.dispatch_depth:
                # Work done inside violation/abort dispatchers (the paper's
                # handler-management overhead, Section 7).
                self.handler_icount += count
        return outcome

    def _execute_chain_step(self, op, now):
        """The ``naive_interp`` executor: reference chain + identical
        instruction accounting (bit-for-bit the pre-table interpreter)."""
        outcome = self._execute_chain(op, now)
        if not outcome.stall:
            count = op.cycles if isinstance(op, O.Alu) else 1
            self.icount += count
            if self.dispatch_depth:
                self.handler_icount += count
        return outcome

    def _execute(self, op, now):
        """Table-dispatch ``op`` without instruction accounting (the
        differential suite compares this against ``_execute_chain``)."""
        handler = self._dispatch.get(op.__class__)
        if handler is None:
            handler = self._resolve_handler(op)
        return handler(op, now)

    def _resolve_handler(self, op):
        """Dispatch-table miss: late-registered extension ops bind here;
        subclasses of built-in ops keep their ``isinstance`` semantics by
        falling back to the reference chain (which also raises the
        canonical error for non-operations)."""
        op_cls = op.__class__
        func = _EXTENSION_HANDLERS.get(op_cls)
        if func is not None:
            handler = MethodType(func, self)
        else:
            handler = self._execute_chain
            if not isinstance(op, O.Op):
                # Don't memoize garbage types; just let the chain raise.
                return handler
        self._dispatch[op_cls] = handler
        return handler

    # --- per-op handlers (one dict lookup away from execute) ----------

    def _exec_load(self, op, now):
        action, value = self._htm.load(self.cpu_id, op.addr)
        if action == STALL:
            return _STALL
        if action == SELF_ABORT:
            self._self_abort(op.addr)
            return _STALL
        latency = self._mem.access(self.cpu_id, op.addr, False, now)
        return ExecOutcome(latency=latency, value=value)

    def _exec_store(self, op, now):
        action = self._htm.store(self.cpu_id, op.addr, op.value)
        if action == STALL:
            return _STALL
        if action == SELF_ABORT:
            self._self_abort(op.addr)
            return _STALL
        latency = self._mem.access(self.cpu_id, op.addr, True, now)
        return _UNIT if latency == 1 else latency_outcome(latency)

    def _exec_imload(self, op, now):
        value = self._htm.im_load(self.cpu_id, op.addr)
        latency = self._mem.access(self.cpu_id, op.addr, False, now)
        return ExecOutcome(latency=latency, value=value)

    def _exec_imstore(self, op, now):
        self._htm.im_store(self.cpu_id, op.addr, op.value)
        latency = self._mem.access(self.cpu_id, op.addr, True, now)
        return _UNIT if latency == 1 else latency_outcome(latency)

    def _exec_imstoreid(self, op, now):
        self._htm.im_store_id(self.cpu_id, op.addr, op.value)
        latency = self._mem.access(self.cpu_id, op.addr, True, now)
        return _UNIT if latency == 1 else latency_outcome(latency)

    def _exec_release(self, op, now):
        return ExecOutcome(value=self._htm.release(self.cpu_id, op.addr))

    def _exec_alu(self, op, now):
        cycles = op.cycles
        return _UNIT if cycles <= 1 else latency_outcome(cycles)

    def _exec_xbegin(self, op, now):
        return ExecOutcome(value=self._htm.begin(self.cpu_id, op.open, now))

    def _exec_xvalidate(self, op, now):
        publishing = self.commit_publishes()
        if not self._htm.validate(self.cpu_id):
            return _STALL
        latency = 1
        if publishing and self.machine.config.detection == "lazy":
            # Validation announces the write-set on the bus so other
            # validators can check against it.
            latency = self._mem.arbitrate_commit(now)
        return latency_outcome(latency)

    def _exec_xcommit(self, op, now):
        committed_level = self.depth()
        result = self._htm.commit(self.cpu_id)
        if result.kind != "flattened":
            self.isa.retire_level(
                committed_level, merged=result.kind == "closed")
        if result.kind in ("outer", "open"):
            latency = self._mem.commit_broadcast(
                self.cpu_id, result.written_words, now)
            if self.machine.config.double_buffering:
                # §6.3.3: the nesting hardware's spare tracking slots
                # let the CPU run its next transaction while the
                # broadcast drains; the bus occupancy (charged above,
                # visible to everyone else) is hidden from this CPU.
                self.stats.add("htm.hidden_commit_cycles", latency - 1)
                latency = 1
        else:
            latency = 1
        self.stats.add("htm.commit_cycles", latency)
        return ExecOutcome(latency=latency, value=result.kind)

    def _exec_xabort(self, op, now):
        if self.depth() < 1:
            raise IsaError("xabort outside a transaction")
        self.isa.xabort_code = op.code
        self.isa.viol_reporting = False
        self.pending_abort = True
        return _UNIT

    def _exec_xrwsetclear(self, op, now):
        target = op.level if op.level is not None else self.depth()
        work = self.do_rollback(target)
        latency = 1 + work * self.machine.config.undo_cycles_per_entry
        self.stats.add("htm.rollback_cycles", latency)
        return latency_outcome(latency)

    def _exec_xregrestore(self, op, now):
        # The architectural restore; the engine performs the actual
        # frame unwinding when the dispatcher returns its outcome.
        return _UNIT

    def _exec_xvret(self, op, now):
        self.isa.viol_reporting = True
        return _UNIT

    def _exec_xenviolrep(self, op, now):
        self.isa.viol_reporting = True
        return _UNIT

    def _exec_xvclear(self, op, now):
        self.isa.clear_current(op.mask)
        return _UNIT

    def _exec_yieldcpu(self, op, now):
        if self.wake_tokens > 0:
            self.wake_tokens -= 1
            return _UNIT
        return _DESCHEDULE

    def _exec_wake(self, op, now):
        self.machine.wake(op.cpu_id)
        return _UNIT

    def _exec_fence(self, op, now):
        return _UNIT

    def _exec_serialacquire(self, op, now):
        return ExecOutcome(value=self._htm.try_acquire_serial(self.cpu_id))

    def _exec_serialrelease(self, op, now):
        self._htm.release_serial(self.cpu_id)
        return _UNIT

    # --- the retained reference interpreter ---------------------------

    def _execute_chain(self, op, now):
        """The pre-table ``isinstance`` chain, kept verbatim (plus the
        extension-registry tail) as the differential-testing reference
        and the ``naive_interp`` baseline.  Allocates a fresh
        :class:`ExecOutcome` per op, exactly like the original."""
        machine = self.machine
        htm = machine.htm
        mem = machine.memmodel

        if isinstance(op, O.Load):
            action, value = htm.load(self.cpu_id, op.addr)
            if action == STALL:
                return ExecOutcome(stall=True)
            if action == SELF_ABORT:
                self._self_abort(op.addr)
                return ExecOutcome(stall=True)
            latency = mem.access(self.cpu_id, op.addr, False, now)
            return ExecOutcome(latency=latency, value=value)

        if isinstance(op, O.Store):
            action = htm.store(self.cpu_id, op.addr, op.value)
            if action == STALL:
                return ExecOutcome(stall=True)
            if action == SELF_ABORT:
                self._self_abort(op.addr)
                return ExecOutcome(stall=True)
            latency = mem.access(self.cpu_id, op.addr, True, now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.ImLoad):
            value = htm.im_load(self.cpu_id, op.addr)
            latency = mem.access(self.cpu_id, op.addr, False, now)
            return ExecOutcome(latency=latency, value=value)

        if isinstance(op, O.ImStore):
            htm.im_store(self.cpu_id, op.addr, op.value)
            latency = mem.access(self.cpu_id, op.addr, True, now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.ImStoreId):
            htm.im_store_id(self.cpu_id, op.addr, op.value)
            latency = mem.access(self.cpu_id, op.addr, True, now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.Release):
            released = htm.release(self.cpu_id, op.addr)
            return ExecOutcome(value=released)

        if isinstance(op, O.Alu):
            return ExecOutcome(latency=max(1, op.cycles))

        if isinstance(op, O.XBegin):
            level = htm.begin(self.cpu_id, op.open, now)
            return ExecOutcome(value=level)

        if isinstance(op, O.XValidate):
            publishing = self.commit_publishes()
            if not htm.validate(self.cpu_id):
                return ExecOutcome(stall=True)
            latency = 1
            if publishing and machine.config.detection == "lazy":
                latency = mem.arbitrate_commit(now)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.XCommit):
            committed_level = self.depth()
            result = htm.commit(self.cpu_id)
            if result.kind != "flattened":
                self.isa.retire_level(
                    committed_level, merged=result.kind == "closed")
            if result.kind in ("outer", "open"):
                latency = mem.commit_broadcast(
                    self.cpu_id, result.written_words, now)
                if machine.config.double_buffering:
                    self.stats.add("htm.hidden_commit_cycles", latency - 1)
                    latency = 1
            else:
                latency = 1
            self.stats.add("htm.commit_cycles", latency)
            return ExecOutcome(latency=latency, value=result.kind)

        if isinstance(op, O.XAbort):
            if self.depth() < 1:
                raise IsaError("xabort outside a transaction")
            self.isa.xabort_code = op.code
            self.isa.viol_reporting = False
            self.pending_abort = True
            return ExecOutcome()

        if isinstance(op, O.XRwSetClear):
            target = op.level if op.level is not None else self.depth()
            work = self.do_rollback(target)
            latency = 1 + work * machine.config.undo_cycles_per_entry
            self.stats.add("htm.rollback_cycles", latency)
            return ExecOutcome(latency=latency)

        if isinstance(op, O.XRegRestore):
            return ExecOutcome()

        if isinstance(op, O.XVRet):
            self.isa.viol_reporting = True
            return ExecOutcome()

        if isinstance(op, O.XEnViolRep):
            self.isa.viol_reporting = True
            return ExecOutcome()

        if isinstance(op, O.XVClear):
            self.isa.clear_current(op.mask)
            return ExecOutcome()

        if isinstance(op, O.YieldCpu):
            if self.wake_tokens > 0:
                self.wake_tokens -= 1
                return ExecOutcome()
            return ExecOutcome(deschedule=True)

        if isinstance(op, O.Wake):
            machine.wake(op.cpu_id)
            return ExecOutcome()

        if isinstance(op, O.Fence):
            return ExecOutcome()

        if isinstance(op, O.SerialAcquire):
            return ExecOutcome(value=htm.try_acquire_serial(self.cpu_id))

        if isinstance(op, O.SerialRelease):
            htm.release_serial(self.cpu_id)
            return ExecOutcome()

        func = _EXTENSION_HANDLERS.get(op.__class__)
        if func is not None:
            return func(self, op, now)

        raise SimulationError(f"cpu {self.cpu_id}: not an operation: {op!r}")

    # ------------------------------------------------------------------

    def do_rollback(self, target_level):
        """Hardware rollback to ``target_level``: discard speculative
        state, clear the violation masks for the cleared levels, and
        restart the target as a fresh transaction."""
        work = self.machine.htm.rollback_to(
            self.cpu_id, target_level, now=self.machine.now)
        self.isa.clear_masks_at_and_above(target_level)
        return work

    def _self_abort(self, addr):
        """Eager deadlock avoidance: the requester violates itself.

        The mask covers only the levels *above* the deepest VALIDATED
        one: a validated transaction must never be violated (paper
        §6.1), and this path posts directly into the violation
        registers, bypassing the detector's validated-set check.  In
        practice the validated levels are the ones a commit handler is
        flushing while its open-nested transaction (the only level that
        can still conflict) restarts around them.
        """
        level = max(1, self.depth())
        mask = (1 << level) - 1
        state = self.machine.htm.states[self.cpu_id]
        for lvl in range(len(state.levels), 0, -1):
            if state.levels[lvl - 1].status == VALIDATED:
                mask &= ~((1 << lvl) - 1)
                break
        if not mask:
            # Unreachable in practice — the conflicting access can only
            # issue from an ACTIVE innermost level — but never post an
            # empty mask.
            mask = 1 << (level - 1)
        self.isa.post(mask, addr)
        self.stats.add("htm.self_aborts")


#: Op type -> unbound handler, covering the whole core vocabulary.  The
#: per-CPU dispatch table binds these once in ``Cpu.__init__``.
_CORE_HANDLERS = {
    O.Load: Cpu._exec_load,
    O.Store: Cpu._exec_store,
    O.ImLoad: Cpu._exec_imload,
    O.ImStore: Cpu._exec_imstore,
    O.ImStoreId: Cpu._exec_imstoreid,
    O.Release: Cpu._exec_release,
    O.Alu: Cpu._exec_alu,
    O.XBegin: Cpu._exec_xbegin,
    O.XValidate: Cpu._exec_xvalidate,
    O.XCommit: Cpu._exec_xcommit,
    O.XAbort: Cpu._exec_xabort,
    O.XRwSetClear: Cpu._exec_xrwsetclear,
    O.XRegRestore: Cpu._exec_xregrestore,
    O.XVRet: Cpu._exec_xvret,
    O.XEnViolRep: Cpu._exec_xenviolrep,
    O.XVClear: Cpu._exec_xvclear,
    O.YieldCpu: Cpu._exec_yieldcpu,
    O.Wake: Cpu._exec_wake,
    O.Fence: Cpu._exec_fence,
    O.SerialAcquire: Cpu._exec_serialacquire,
    O.SerialRelease: Cpu._exec_serialrelease,
}

# A new op added to the vocabulary without a handler must fail at import
# time, not as a mid-simulation chain fallback.
_MISSING_HANDLERS = set(O.ALL_OPS) - set(_CORE_HANDLERS)
if _MISSING_HANDLERS:   # pragma: no cover - import-time safety net
    raise ImportError(
        f"ops without dispatch handlers: {sorted(c.__name__ for c in _MISSING_HANDLERS)}")
