"""Exhaustive schedule-space exploration: a stateless model checker.

The fuzzer (:mod:`repro.check.fuzz`) *samples* interleavings; this
module *enumerates* them.  Every run of the simulator is a pure function
of ``(program, config, fault, seed, schedule)``, and a schedule is fully
determined by the sequence of choices the engine's
:class:`~repro.sim.schedule.SchedulePolicy` makes — so the checker
explores the schedule space the way stateless model checkers do
(Godefroid's VeriSoft): re-run the program from the start under a
:class:`~repro.sim.schedule.ControlledPolicy` that replays a chosen
*prefix* of scheduling decisions and records the in-window alternatives
at every choice point, then branch on the recorded alternatives.

**Enumeration.**  The root node is the empty prefix — the deterministic
schedule.  After running a node's prefix ``P`` to completion (trace
``T``), each step ``i >= len(P)`` with an unexplored alternative ``a``
spawns the child prefix ``T[:i] + (a,)``.  Every child deviates from
its parent's continuation at exactly one new point, so generation ``b``
of the search contains exactly the schedules reachable with ``b``
forced deviations from the deterministic pick — and iterating the
generations ``0, 1, .., bound`` is *iterative preemption bounding* in
the delay-bounding style of CHESS (Musuvathi & Qadeer): shallow bugs
surface first, and ``bound = 0`` is precisely the fuzzer's ``det``
schedule.  Each complete schedule is visited exactly once (two distinct
prefixes always complete to distinct choice sequences).

**Pruning.**  Exploring both orders of two *independent* steps is
wasted work (they commute), so each branch seeds its child with a
*sleep set* (Godefroid): the siblings already explored at that state,
remembered with their read/write **footprints** at the hardware's
conflict-unit granularity.  A sleeping CPU is skipped by the default
pick until an executed step is *dependent* on its entry (footprints
overlap on a unit, or either is a global action); if every candidate is
asleep the run is abandoned (:class:`~repro.sim.schedule.SchedulePruned`)
— that continuation is covered elsewhere.  Dependence is judged
conservatively but at unit granularity: transactional loads/stores that
PROCEED touch one unit; a commit touches its published write-set plus a
``TOKEN`` pseudo-unit that serializes the whole commit path (validates,
devalidates and rollbacks touch TOKEN too, rollbacks also their
retracted units); serial-mode transitions, wakes and any
stalled/aborted access are *global* (dependent with everything); a
posted violation is a targeted *delivery* to its victim, which wakes
any sleep entry for that CPU.  A non-running CPU's pending footprint is
inferred from
the first later step where it ran, invalidated by any intervening
delivery (wake or violation) to it — a CPU's next operation is fixed by
its own last step until it runs again or receives a delivery, which is
what makes the estimate sound.  Unknown footprints never enter a sleep
set.

Pruning is enabled only where it is sound:

* **Lazy detection only.**  Eager arbitration compares transaction
  timestamps (``htm/conflict.py``), and timestamps shift when
  independent steps reorder — so on ``eager-*`` configs the checker
  explores unpruned.  (Lazy arbitration is commit order, and the ``TOKEN``
  pseudo-unit keeps every pair of commit-path actions ordered.)
* **No fault injection.**  An injector perturbs runs through state the
  footprints do not model, so fault exploration is unpruned too.
* Sleep sets guarantee *coverage of every Mazurkiewicz class* only for
  unbounded exploration; under a finite ``preemption_bound`` a pruned
  branch's representative may need more deviations than the bound
  allows.  ``prune=False`` restores plain bounded enumeration.

**Counterexamples.**  A failing schedule is reported as its *deviation
list* — the ``(step, cpu)`` pairs where it departs from the
deterministic pick — which replays exactly (:func:`replay`, CLI
``python -m repro explore --replay prog:config:3@1,7@0``) and shrinks
through the same greedy loop as the fuzzer's change-points
(:func:`repro.check.fuzz.shrink_change_points`).

**Parallelism.**  Each generation is a wave of independent node runs —
worker-disjoint subtree claims — sharded across processes with
:class:`~repro.harness.parallel.WorkerPool` and merged in enumeration
order, so ``--jobs N`` produces the identical schedule/verdict sequence
as a serial run.

The explorer uses the fuzzer's candidate window
(:data:`~repro.sim.schedule.DEFAULT_WINDOW`): the explored space is
exactly the interleavings the randomized policies can reach, and the
finite window doubles as the termination guarantee under sleep sets —
a CPU spinning on units independent of every sleep entry advances its
local time until the sleeper is the only in-window candidate, at which
point the run prunes instead of starving it forever.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from repro.common.errors import ReproError
from repro.common.params import LAZY
from repro.htm.conflict import PROCEED
from repro.faults import FaultInjector, make_plan
from repro.harness.parallel import CaseSpec, WorkerPool, run_campaign
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import (
    DEFAULT_WINDOW,
    ControlledPolicy,
    SchedulePruned,
)
from repro.sim.snapshot import SnapshotError

from repro.obs.profiler import CycleProfiler
from repro.obs.sinks import RingSink
from repro.sim.trace import Tracer

from repro.check.fuzz import (
    CONFIGS,
    FAULTS,
    TRACE_RING,
    build_config,
    collect_violations,
)
from repro.check.history import History, HistoryRecorder, TxRecord
from repro.check.oracles import OracleViolation, check_cycle_conservation
from repro.check.programs import make_program
from repro.spec.replay import freeze

#: The explorer's candidate window (cycles) — the fuzzer's default.  A
#: *finite* window is what guarantees termination under sleep sets: a
#: CPU spinning on a unit independent of every sleep entry advances its
#: local time until the sleeper is the only in-window candidate, at
#: which point the run prunes instead of livelocking.  (An infinite
#: window starves the sleeper forever and hits the cycle limit.)  The
#: deterministic pick is window-independent, so bound 0 still equals
#: the fuzzer's ``det`` schedule.
EXPLORE_WINDOW = DEFAULT_WINDOW

_EMPTY = frozenset()

#: Pseudo-unit serializing the commit path: commits, validates,
#: devalidates and rollbacks all touch it, so their mutual order is
#: never treated as exchangeable.  Real units are non-negative address
#: or line indices, so -1 can never collide.
TOKEN = -1


@dataclasses.dataclass(frozen=True)
class Footprint:
    """What one scheduling step touched, at conflict-unit granularity.

    ``global_`` marks actions ordered against everything (serial-mode
    transitions, wakes, any stalled/aborted access, non-transactional
    publishing stores): they are dependent with every other step.
    Commits are *not* global: a commit's footprint is its published
    write-set plus the :data:`TOKEN` pseudo-unit, so it commutes with
    accesses to unrelated units.
    """

    reads: frozenset = _EMPTY
    writes: frozenset = _EMPTY
    global_: bool = False

    def depends(self, other):
        """Conservative dependence: do the two steps fail to commute?"""
        if self.global_ or other.global_:
            return True
        return bool(self.writes & (other.reads | other.writes)
                    or other.writes & (self.reads | self.writes))


GLOBAL_FOOTPRINT = Footprint(global_=True)


def _encode_sleep(entries):
    """dict cpu -> (Footprint, active_from)  =>  picklable spec tuple.

    ``active_from`` is the step index at which the entry's coverage
    claim starts: the recorder's live removal only considers steps at or
    past it, so an entry inherited through a replayed prefix is not
    erased by steps that logically precede its creation.
    """
    return tuple(
        (cpu, active_from,
         tuple(sorted(fp.reads)), tuple(sorted(fp.writes)))
        for cpu, (fp, active_from) in sorted(entries.items()))


def _decode_sleep(encoded):
    return {cpu: (Footprint(frozenset(reads), frozenset(writes)),
                  active_from)
            for cpu, active_from, reads, writes in encoded}


class StepRecorder:
    """Per-step footprint/delivery recorder and live sleep-set updater.

    Attaches to the same :class:`~repro.htm.system.HtmSystem` seams the
    :class:`~repro.check.history.HistoryRecorder` wraps (plus
    ``Machine.wake`` and the violation sink) and closes one footprint
    per scheduling step via the engine's ``step_hook``.  While running,
    any step dependent on a sleep entry — or delivering to it — wakes
    that entry (``policy.sleep``), keeping the pruning sound.
    """

    def __init__(self, machine, policy, sleep_entries=None,
                 sleep_from=0):
        self.machine = machine
        self.policy = policy
        self.sleep_from = sleep_from
        #: Live sleep entries: cpu -> (Footprint of its covered pending
        #: op, step index the coverage claim starts at).
        self._sleep = dict(sleep_entries or {})
        #: Closed per-step records, index-aligned with ``policy.choices``.
        self.footprints = []
        self.deliveries = []
        #: Sleep-entry snapshot *before* each step executed.
        self.sleep_before = []
        self._acc_reads = set()
        self._acc_writes = set()
        self._acc_delivered = set()
        self._acc_global = False
        #: Per-CPU accumulated speculative units (reads, writes) of the
        #: live transaction(s) — what a commit publishes and a rollback
        #: retracts.  Conservative supersets: never trimmed on partial
        #: rollback, cleared only when the CPU leaves transactional mode.
        self._cpu_reads = {cpu.cpu_id: set() for cpu in machine.cpus}
        self._cpu_writes = {cpu.cpu_id: set() for cpu in machine.cpus}
        self._saved = {}
        self._attach()

    # ------------------------------------------------------------------

    def _unit(self, cpu_id, addr):
        return self.machine.htm.states[cpu_id].rwsets.unit_of(addr)

    def _close_step(self, cpu):
        """Engine ``step_hook``: seal the step that just executed."""
        self.sleep_before.append(dict(self._sleep))
        footprint = Footprint(
            frozenset(self._acc_reads), frozenset(self._acc_writes),
            self._acc_global)
        delivered = frozenset(self._acc_delivered)
        self.footprints.append(footprint)
        self.deliveries.append(delivered)
        self._acc_reads.clear()
        self._acc_writes.clear()
        self._acc_delivered.clear()
        self._acc_global = False
        if self._sleep:
            # A dependent step — or a delivery, which changes the
            # sleeper's pending op — invalidates the entry's coverage
            # claim, so the sleeper becomes schedulable again.  Steps
            # before an entry's ``active_from`` logically precede its
            # creation and are ignored.
            step_index = len(self.footprints) - 1
            for cpu in list(self._sleep):
                fp, active_from = self._sleep[cpu]
                if step_index < active_from:
                    continue
                if cpu in delivered or footprint.depends(fp):
                    del self._sleep[cpu]
                    self.policy.sleep.discard(cpu)

    # ------------------------------------------------------------------

    def _attach(self):
        machine = self.machine
        htm = machine.htm
        if machine.step_hook is not None:
            raise RuntimeError("machine already has a step_hook")
        machine.step_hook = self._close_step

        self._saved["load"] = htm.load

        def load(cpu_id, addr, _orig=htm.load):
            action, value = _orig(cpu_id, addr)
            if action == PROCEED:
                unit = self._unit(cpu_id, addr)
                self._acc_reads.add(unit)
                if htm.states[cpu_id].levels:
                    self._cpu_reads[cpu_id].add(unit)
            else:
                self._acc_global = True
            return action, value

        htm.load = load

        self._saved["store"] = htm.store

        def store(cpu_id, addr, value, _orig=htm.store):
            action = _orig(cpu_id, addr, value)
            if action != PROCEED:
                self._acc_global = True
            elif htm.states[cpu_id].levels:
                unit = self._unit(cpu_id, addr)
                self._acc_writes.add(unit)
                self._cpu_writes[cpu_id].add(unit)
            else:
                # Non-transactional store: a one-word commit under
                # strong atomicity — a publishing (global) action.
                self._acc_global = True
            return action

        htm.store = store

        self._saved["im_load"] = htm.im_load

        def im_load(cpu_id, addr, _orig=htm.im_load):
            self._acc_reads.add(self._unit(cpu_id, addr))
            return _orig(cpu_id, addr)

        htm.im_load = im_load

        self._saved["im_store"] = htm.im_store

        def im_store(cpu_id, addr, value, _orig=htm.im_store):
            self._acc_writes.add(self._unit(cpu_id, addr))
            return _orig(cpu_id, addr, value)

        htm.im_store = im_store

        self._saved["im_store_id"] = htm.im_store_id

        def im_store_id(cpu_id, addr, value, _orig=htm.im_store_id):
            self._acc_writes.add(self._unit(cpu_id, addr))
            return _orig(cpu_id, addr, value)

        htm.im_store_id = im_store_id

        self._saved["release"] = htm.release

        def release(cpu_id, addr, _orig=htm.release):
            # Dropping a read-set entry changes future conflict
            # detection on the unit: record it as an access.
            self._acc_writes.add(self._unit(cpu_id, addr))
            return _orig(cpu_id, addr)

        htm.release = release

        # `begin` stays local: it touches only the CPU's own state plus
        # the diagnostic txid counter (never consulted by lazy
        # arbitration — the only mode that prunes).
        #
        # The commit path is unit-scoped rather than global: a commit
        # publishes its accumulated write-set (dependent with any access
        # to those units) and serializes on TOKEN against every other
        # commit-path action.  Victims it violates are covered by the
        # write-set overlap plus the delivery marks from the sink wrap.
        self._saved["commit"] = htm.commit

        def commit(cpu_id, _orig=htm.commit):
            self._acc_reads.add(TOKEN)
            self._acc_writes.add(TOKEN)
            self._acc_writes.update(self._cpu_writes[cpu_id])
            result = _orig(cpu_id)
            if not htm.states[cpu_id].levels:
                self._cpu_reads[cpu_id].clear()
                self._cpu_writes[cpu_id].clear()
            return result

        htm.commit = commit

        for name in ("validate", "devalidate"):
            self._saved[name] = getattr(htm, name)

            def token_wrapper(*args, _orig=getattr(htm, name), **kwargs):
                self._acc_reads.add(TOKEN)
                self._acc_writes.add(TOKEN)
                return _orig(*args, **kwargs)

            setattr(htm, name, token_wrapper)

        # A rollback retracts the transaction's index entries: dependent
        # with commits probing those units (and with the commit path via
        # TOKEN), independent of accesses to unrelated units.  The
        # accumulated sets are conservative supersets of what the
        # rollback actually discards.
        for name in ("rollback_to", "abandon_all"):
            self._saved[name] = getattr(htm, name)

            def undo_wrapper(cpu_id, *args,
                             _orig=getattr(htm, name),
                             _clear=(name == "abandon_all"), **kwargs):
                self._acc_reads.add(TOKEN)
                self._acc_writes.add(TOKEN)
                self._acc_writes.update(self._cpu_reads[cpu_id])
                self._acc_writes.update(self._cpu_writes[cpu_id])
                result = _orig(cpu_id, *args, **kwargs)
                if _clear or not htm.states[cpu_id].levels:
                    self._cpu_reads[cpu_id].clear()
                    self._cpu_writes[cpu_id].clear()
                return result

            setattr(htm, name, undo_wrapper)

        for name in ("try_acquire_serial", "release_serial"):
            self._saved[name] = getattr(htm, name)

            def serial_wrapper(*args, _orig=getattr(htm, name), **kwargs):
                self._acc_global = True
                return _orig(*args, **kwargs)

            setattr(htm, name, serial_wrapper)

        self._saved["wake"] = machine.wake

        def wake(cpu_id, _orig=machine.wake):
            self._acc_global = True
            self._acc_delivered.add(cpu_id)
            return _orig(cpu_id)

        machine.wake = wake

        # A violation post is a targeted delivery, not a global action:
        # its cause is already visible as a unit overlap with the
        # poster's footprint, and the delivery mark both wakes any sleep
        # entry for the victim and invalidates its pending-op estimate.
        self._saved["sink"] = htm.detector._sink

        def sink(violation, _orig=htm.detector._sink):
            self._acc_delivered.add(violation.victim)
            return _orig(violation)

        htm.attach_violation_sink(sink)

    def detach(self):
        if not self._saved:
            return
        machine = self.machine
        htm = machine.htm
        machine.step_hook = None
        for name in ("load", "store", "im_load", "im_store",
                     "im_store_id", "release", "validate", "devalidate",
                     "commit", "rollback_to", "abandon_all",
                     "try_acquire_serial", "release_serial"):
            setattr(htm, name, self._saved[name])
        machine.wake = self._saved["wake"]
        htm.attach_violation_sink(self._saved["sink"])
        self._saved = {}


# ----------------------------------------------------------------------
# Checkpointed exploration: a worker-local prefix-tree snapshot cache
# ----------------------------------------------------------------------
#
# A node run is a pure function of its choice prefix, and every child
# shares all but the last choice with its parent — so the stateless
# "replay from cycle 0" discipline re-executes the same prefix over and
# over.  Each worker therefore keeps a bounded LRU cache of mid-run
# machine snapshots (:mod:`repro.sim.snapshot`), keyed by the choice
# prefix that produced them: a node forks from the deepest cached
# ancestor instead of replaying from the start, and deposits fresh
# checkpoints along its own continuation for its descendants.
#
# Soundness rests on three facts:
#
# * **Machine state is a function of the choices alone.**  Two runs that
#   made the same choice sequence stepped the same CPUs through the same
#   ops, whatever sleep sets or forced maps *led* to those choices — so
#   a checkpoint deposited by any node serves any other node whose
#   prefix extends the checkpoint's choices.  The recorded candidate
#   lists, footprints, deliveries, histories and cycle books are equally
#   choice-determined, so the observers restore from the same entry.
# * **Fork points stop strictly before the branch step.**  A child's
#   *new* sleep entries activate at the branch step ``len(prefix) - 1``
#   (see :func:`_make_children`), and the recorder's removal rule may
#   fire at exactly that step — so restoring at or past it could skip a
#   wake-up and prune a schedule the stateless run explores.  Probing
#   only depths ``s <= len(prefix) - 1`` keeps every sleep-set decision
#   inside the live (resumed) portion of the run.  Inherited entries
#   survive all earlier steps by construction: the parent executed the
#   identical steps with the entry live and did not remove it, and the
#   removal rule is deterministic in (footprint, deliveries, entry).
# * **The policy is never restored.**  ``restore_policy=False`` keeps
#   the child's own :class:`ControlledPolicy` — forced map, sleep set,
#   ``sleep_from`` — and only the recorded ``choices``/``candidates``
#   (identical to what a faithful replay of the prefix would have
#   recorded) are preloaded from the checkpoint.
#
# The cache is verified differentially: ``--no-checkpoint`` keeps the
# stateless path, and the conformance gate asserts verdict-for-verdict
# equality between the two modes (tests/test_explore_checkpoint.py).
# Any :class:`SnapshotError` falls back to the stateless path for that
# node (counted in ``fallbacks``) — checkpointing is an accelerator,
# never a semantic dependency.

#: Deposit a checkpoint every this many scheduling steps.
CHECKPOINT_INTERVAL = 8

#: Never deposit past this step: children branch near their prefix, so
#: deep checkpoints are rarely re-entered, and both capture cost and
#: ghost-replay cost grow with the journal.
CHECKPOINT_MAX_STEP = 512

#: Per-worker byte budget for cached checkpoints (LRU-evicted).
CHECKPOINT_BUDGET = 48 * 1024 * 1024


class _Checkpoint:
    """One cached mid-run state: the machine snapshot plus the observer
    state (recorder, history, profiler, tracer) that goes with it."""

    __slots__ = ("snapshot", "recorder", "history", "profiler", "tracer",
                 "nbytes")


class CheckpointCache:
    """Bounded-LRU map from ``(base, choices)`` to :class:`_Checkpoint`.

    ``base`` pins everything else a run depends on — ``(program,
    config, fault, seed, recording)`` — so a lookup can only ever hit a
    state its own schedule would reach.  Budgeting is by approximate
    bytes, evicting least-recently-used entries first.
    """

    def __init__(self, budget=CHECKPOINT_BUDGET,
                 interval=CHECKPOINT_INTERVAL,
                 max_step=CHECKPOINT_MAX_STEP):
        self.budget = budget
        self.interval = interval
        self.max_step = max_step
        self._entries = OrderedDict()
        self._bytes = 0
        self.stats = {"hits": 0, "misses": 0, "deposits": 0,
                      "evictions": 0, "fallbacks": 0, "bytes": 0}

    def lookup(self, base, prefix):
        """The deepest cached ancestor strictly before the branch step
        (``s <= len(prefix) - 1``; see the fork-point note above), as
        ``(entry, s)`` — ``(None, 0)`` on a miss."""
        limit = len(prefix) - 1
        depth = (limit // self.interval) * self.interval if limit > 0 else 0
        while depth > 0:
            key = (base, tuple(prefix[:depth]))
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                return entry, depth
            depth -= self.interval
        self.stats["misses"] += 1
        return None, 0

    def deposit(self, key, entry):
        if key in self._entries or entry.nbytes > self.budget:
            return
        self._entries[key] = entry
        self._bytes += entry.nbytes
        self.stats["deposits"] += 1
        while self._bytes > self.budget:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.stats["evictions"] += 1
        self.stats["bytes"] = self._bytes

    def clear(self):
        self._entries.clear()
        self._bytes = 0
        self.stats["bytes"] = 0


#: The worker-local cache (one per process; explore workers persist
#: across generations, so deposits survive wave boundaries).
_CHECKPOINTS = CheckpointCache()

class _NodeContext:
    """One worker's reusable restore target: a machine with the explore
    observer stack permanently attached (same attach order as the
    stateless path: recorder, history, profiler, tracer).

    Constructing the observers costs more than a short resumed run, so
    hit-path nodes share one context per (program, config) and
    overwrite its state from the checkpoint instead of rebuilding it.
    Only the restore path may use a context: ``reset_machine`` leaves
    htm/memsys state for :func:`repro.sim.snapshot.restore` to
    overwrite, so a stateless (cache-miss) run always builds fresh.
    """

    __slots__ = ("machine", "recorder", "history", "profiler", "tracer")

    def __init__(self, config):
        placeholder = ControlledPolicy(window=EXPLORE_WINDOW)
        self.machine = Machine(config, policy=placeholder)
        self.recorder = StepRecorder(self.machine, placeholder)
        self.history = HistoryRecorder(self.machine)
        self.profiler = CycleProfiler(self.machine)
        self.tracer = Tracer(self.machine,
                             sink=RingSink(TRACE_RING, mode="tail"))

    def begin_node(self, policy):
        """Point the attached observers at a new node's run.

        Shared-able containers are **rebound, never cleared**: cached
        checkpoints hold references to the previous node's lists (see
        :func:`_deposit_hook`), and the restore's ``setup_fn`` replays
        program bring-up with the observers attached — anything they
        record before the checkpoint state lands must go into fresh
        books, not cached ones.
        """
        machine = self.machine
        machine.policy = policy
        machine.step_hook = None
        recorder = self.recorder
        recorder.policy = policy
        recorder.sleep_from = 0
        recorder._sleep = {}
        recorder.footprints = []
        recorder.deliveries = []
        recorder.sleep_before = []
        recorder._acc_reads.clear()
        recorder._acc_writes.clear()
        recorder._acc_delivered.clear()
        recorder._acc_global = False
        for cpu_id in recorder._cpu_reads:
            recorder._cpu_reads[cpu_id] = set()
            recorder._cpu_writes[cpu_id] = set()
        history = self.history
        history.history = History()
        history._frames = [[] for _ in machine.cpus]
        history._seq = 0
        # The profiler's books are overwritten wholesale by
        # :func:`_restore_profiler_state`; only the account memo must
        # reset here.
        self.profiler._account = None
        self.tracer.sink = RingSink(TRACE_RING, mode="tail")


#: Restore-target contexts, one per (program, config) per worker.
_CONTEXTS = {}


def checkpoint_cache_stats():
    """This process's cumulative checkpoint-cache counters."""
    return dict(_CHECKPOINTS.stats)


def _checkpoint_supported(program_name, config_name, fault):
    """Where checkpointing is enabled.  Fault runs are excluded for
    correctness — the injector holds plan state outside the snapshot.
    The litmus/lazy gate is conservatism: those runs' verdicts read
    only machine state (memory, results, history), never program-object
    side state, and lazy detection is where exploration volume lives."""
    return (fault is None
            and program_name.startswith("litmus-")
            and CONFIGS.get(config_name, {}).get("detection", LAZY) == LAZY)


def _node_setup(program_name, seed):
    """The ``setup_fn`` a restore re-runs to rebuild coroutine frames
    (identical to the stateless path's bring-up; programs derive all
    randomness from ``seed``, so the rebuild is deterministic)."""
    def setup(machine):
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        program = make_program(program_name, seed=seed)
        program.setup(machine, runtime, arena)
        return program
    return setup


def _restore_node(program_name, config_name, policy, entry, seed):
    """Restore ``entry`` onto this worker's pooled node context
    (building it on first use), install the node's own ``policy``, and
    preload the recorded choice/candidate prefix."""
    key = (program_name, config_name)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        program = make_program(program_name, seed=seed)
        ctx = _NodeContext(build_config(config_name, program))
        _CONTEXTS[key] = ctx
    ctx.begin_node(policy)
    program = ctx.machine.restore(
        entry.snapshot, _node_setup(program_name, seed),
        restore_policy=False)
    (choices, n_choices, candidates, n_candidates,
     divergences, n_divergences, _sleep) = entry.snapshot.policy
    policy.choices[:] = choices[:n_choices]
    policy.candidates[:] = candidates[:n_candidates]
    policy.divergences[:] = divergences[:n_divergences]
    return ctx, program


def _restore_recorder_state(recorder, policy, sleep_entries, sleep_from,
                            rec_state, start):
    """Point the pooled :class:`StepRecorder` at this node and load the
    checkpoint's recorded prefix.  ``sleep_before`` is synthesized as
    ``start`` copies of the node's initial entries — exact, because no
    entry of *this* node can be removed before the branch step (the
    fork-point constraint above)."""
    footprints, deliveries, n, cpu_reads, cpu_writes = rec_state
    recorder.policy = policy
    recorder.sleep_from = sleep_from
    recorder._sleep = dict(sleep_entries)
    recorder.footprints = list(footprints[:n])
    recorder.deliveries = list(deliveries[:n])
    recorder.sleep_before = [dict(recorder._sleep) for _ in range(start)]
    for cpu, units in cpu_reads.items():
        recorder._cpu_reads[cpu] = set(units)
    for cpu, units in cpu_writes.items():
        recorder._cpu_writes[cpu] = set(units)


def _clone_tx(record):
    """A mutation-isolated copy of one live frame's :class:`TxRecord`
    (``reads`` spans are 2-element lists the recorder updates in
    place)."""
    return TxRecord(
        txid=record.txid, cpu=record.cpu, level=record.level,
        open=record.open, begin_cycle=record.begin_cycle,
        reads={unit: list(span) for unit, span in record.reads.items()},
        writes=set(record.writes), status=record.status,
        kind=record.kind, commit_seq=record.commit_seq,
        commit_cycle=record.commit_cycle, resumed=record.resumed,
        released=record.released)


def _capture_history_state(history_recorder):
    """Snapshot the history books at a step boundary.

    Committed/aborted records are immutable once appended (the recorder
    only mutates *live* frames, and a record leaves the frame stacks
    exactly when it enters one of those lists), so the lists are shared
    by reference; only the live frames need cloning.
    """
    history = history_recorder.history
    return (history.committed, len(history.committed),
            history.aborted, len(history.aborted),
            [[_clone_tx(record) for record in stack]
             for stack in history_recorder._frames],
            history_recorder._seq)


def _restore_history_state(history_recorder, hist_state):
    committed, n_committed, aborted, n_aborted, frames, seq = hist_state
    history_recorder.history.committed = list(committed[:n_committed])
    history_recorder.history.aborted = list(aborted[:n_aborted])
    # Cloned per restore: one cache entry seeds many nodes, and each
    # resumed run mutates its own live frames.
    history_recorder._frames = [
        [_clone_tx(record) for record in stack] for stack in frames]
    history_recorder._seq = seq


def _restore_profiler_state(profiler, prof_state):
    for books, saved in zip(profiler._cpu, prof_state):
        books.restore_state(saved)


def _restore_tracer_state(tracer, trace_state):
    events, dropped = trace_state
    sink = RingSink(TRACE_RING, mode="tail")
    sink._events.extend(events)
    sink.dropped = dropped
    tracer.sink = sink


def _deposit_hook(base, policy, recorder, history_recorder, profiler,
                  tracer):
    """The engine ``checkpoint_hook`` that deposits along this node's
    continuation.  Fires at step boundaries (after ``step_hook``), so
    every observer is quiescent: the recorder's accumulators are empty
    and the profiler's books are settled."""
    cache = _CHECKPOINTS

    def hook(machine, n_steps):
        if n_steps == 0 or n_steps % cache.interval:
            return
        if n_steps > cache.max_step:
            machine.checkpoint_hook = None
            return
        key = (base, tuple(policy.choices))
        if key in cache._entries:
            return
        try:
            snapshot = machine.snapshot()
        except SnapshotError:
            machine.checkpoint_hook = None
            return
        entry = _Checkpoint()
        entry.snapshot = snapshot
        entry.recorder = None
        if recorder is not None:
            # The per-step lists are append-only with immutable entries
            # for the node's lifetime (the next pooled node *rebinds*
            # them), so they are shared by reference with a length
            # bound — same zero-copy discipline as the step journal.
            entry.recorder = (
                recorder.footprints, recorder.deliveries,
                len(recorder.footprints),
                {cpu: set(units)
                 for cpu, units in recorder._cpu_reads.items()},
                {cpu: set(units)
                 for cpu, units in recorder._cpu_writes.items()})
        entry.history = _capture_history_state(history_recorder)
        entry.profiler = tuple(
            books.snapshot_state() for books in profiler._cpu)
        # Bounded copy: the tail ring holds at most TRACE_RING events.
        entry.tracer = (list(tracer.sink._events), tracer.sink.dropped)
        entry.nbytes = (
            snapshot.approx_bytes()
            + 96 * (entry.history[1] + entry.history[3])
            + 64 * len(entry.tracer[0])
            + (64 * entry.recorder[2] if entry.recorder else 0))
        cache.deposit(key, entry)

    return hook


# ----------------------------------------------------------------------
# Running one node
# ----------------------------------------------------------------------


def deviations_to_str(deviations):
    """``((3, 1), (7, 0))`` -> ``"3@1,7@0"``; empty -> ``"det"``."""
    return ",".join(f"{step}@{cpu}" for step, cpu in deviations) or "det"


def parse_deviations(text):
    """Inverse of :func:`deviations_to_str` (used by ``--replay``)."""
    text = (text or "").strip()
    if not text or text == "det":
        return ()
    out = []
    for part in text.split(","):
        step, sep, cpu = part.partition("@")
        if not sep:
            raise ValueError(
                f"bad deviation {part!r}: expected step@cpu")
        out.append((int(step), int(cpu)))
    return tuple(sorted(out))


@dataclasses.dataclass
class ScheduleVerdict:
    """The oracles' verdict on one completely executed schedule."""

    program: str
    config: str
    fault: str
    seed: int
    #: (step, cpu) pairs where the schedule departs from the
    #: deterministic pick — the replayable counterexample encoding.
    deviations: tuple = ()
    violations: list = dataclasses.field(default_factory=list)
    error: str = None
    n_committed: int = 0
    n_steps: int = 0
    #: The committed history's fingerprint (History.signature()).
    signature: tuple = ()
    #: Forced choices that were unavailable on replay (normally empty).
    divergences: tuple = ()
    #: Last-K trace ring of a *failing* schedule (empty on a pass).
    trace: tuple = ()
    #: The program's frozen final observation (None on an errored run);
    #: an exhaustive drain's outcome set is gated against the spec's
    #: admissible set (:func:`repro.spec.outcomes.spec_outcomes`).
    outcome: object = None

    @property
    def failed(self):
        return bool(self.violations)

    @property
    def name(self):
        """The replayable name: ``program:config:deviations``."""
        base = (f"{self.program}:{self.config}:"
                f"{deviations_to_str(self.deviations)}")
        return f"{self.fault}:{base}" if self.fault else base

    def __str__(self):
        if not self.failed:
            return (f"{self.name}: ok ({self.n_committed} commits, "
                    f"{self.n_steps} steps)")
        lines = [f"{self.name}: FAILED ({self.n_committed} commits)"]
        lines += [f"  {violation}" for violation in self.violations]
        if self.trace:
            lines.append(f"  trace tail ({len(self.trace)} events):")
            lines += [f"    {event}" for event in self.trace]
        return "\n".join(lines)


@dataclasses.dataclass
class NodeOutcome:
    """One explored node: its verdict (None if pruned) and children."""

    prefix: tuple
    pruned: bool = False
    verdict: ScheduleVerdict = None
    #: (child_prefix, encoded_sleep) pairs, in enumeration order.
    children: tuple = ()
    #: Checkpoint-cache counter deltas for this node (None when the
    #: node ran stateless); ``bytes`` is the worker's absolute gauge.
    cache: dict = None


def _should_prune(prune, fault, config):
    return bool(prune) and fault is None and config.detection == LAZY


def _execute(program_name, config_name, forced, sleep, sleep_from,
             fault, seed, max_cycles, record, checkpoint_ctx=None):
    """Run one controlled schedule; returns the post-run state tuple
    ``(program, machine, policy, history, error, pruned_at, recorder,
    obs)`` where ``obs`` is the ``(tracer, profiler)`` pair every node
    carries (trace-on-failure ring + cycle-conservation books).

    ``checkpoint_ctx`` (``{"base", "prefix", "deposit"}``) switches the
    node to the checkpoint cache: fork from the deepest cached ancestor
    of ``prefix`` when one exists, and (when ``deposit``) leave
    checkpoints along this run's continuation.  Verdicts are identical
    either way — the cache only changes where execution starts.
    """
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; choose from {FAULTS}")
    sleep_entries = _decode_sleep(sleep)
    policy = ControlledPolicy(
        forced=forced, sleep=sleep_entries, sleep_from=sleep_from,
        window=EXPLORE_WINDOW)
    entry = None
    start = 0
    ctx = None
    if checkpoint_ctx is not None:
        entry, start = _CHECKPOINTS.lookup(
            checkpoint_ctx["base"], checkpoint_ctx["prefix"])
    if entry is not None:
        try:
            ctx, program = _restore_node(
                program_name, config_name, policy, entry, seed)
        except SnapshotError:
            _CHECKPOINTS.stats["fallbacks"] += 1
            entry, start, ctx = None, 0, None
            policy.choices.clear()
            policy.candidates.clear()
            policy.divergences.clear()
    injector = None
    if ctx is not None:
        # Hit path: the pooled context's observers are already attached;
        # load their state from the checkpoint (checkpointing never runs
        # under a fault plan, so no injector here).
        machine = ctx.machine
        config = machine.config
        recorder = None
        if record and _should_prune(True, fault, config):
            recorder = ctx.recorder
            _restore_recorder_state(recorder, policy, sleep_entries,
                                    sleep_from, entry.recorder, start)
            machine.step_hook = recorder._close_step
        history_recorder = ctx.history
        profiler = ctx.profiler
        tracer = ctx.tracer
        _restore_history_state(history_recorder, entry.history)
        _restore_profiler_state(profiler, entry.profiler)
        _restore_tracer_state(tracer, entry.tracer)
    else:
        program = make_program(program_name, seed=seed)
        config = build_config(config_name, program)
        machine = Machine(config, policy=policy)
        if checkpoint_ctx is not None:
            machine.enable_journal()
        recorder = None
        if record and _should_prune(True, fault, config):
            recorder = StepRecorder(machine, policy,
                                    sleep_entries=sleep_entries,
                                    sleep_from=sleep_from)
        if fault is not None:
            injector = FaultInjector(make_plan(fault, seed), machine)
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        history_recorder = HistoryRecorder(machine)
        profiler = CycleProfiler(machine)
        tracer = Tracer(machine, sink=RingSink(TRACE_RING, mode="tail"))
    if checkpoint_ctx is not None and checkpoint_ctx["deposit"]:
        machine.checkpoint_interval = _CHECKPOINTS.interval
        machine.checkpoint_hook = _deposit_hook(
            checkpoint_ctx["base"], policy, recorder, history_recorder,
            profiler, tracer)
    error = None
    pruned_at = None
    try:
        if ctx is None:
            program.setup(machine, runtime, arena)
        machine.run(max_cycles=max_cycles or program.max_cycles)
    except SchedulePruned as exc:
        pruned_at = exc.step
    except ReproError as exc:
        error = exc
    finally:
        machine.checkpoint_hook = None
        if ctx is None:
            tracer.detach()
            profiler.detach()
            history_recorder.detach()
            if injector is not None:
                injector.detach()
            if recorder is not None:
                recorder.detach()
        else:
            machine.step_hook = None
    return (program, machine, policy, history_recorder.history, error,
            pruned_at, recorder, (tracer, profiler))


def _trace_deviations(policy):
    return tuple(
        (step, chosen)
        for step, (chosen, cands) in enumerate(
            zip(policy.choices, policy.candidates))
        if cands and chosen != cands[0])


def _make_verdict(program_name, config_name, fault, seed, program,
                  machine, policy, history, error, obs=None):
    violations, error = collect_violations(
        program, machine, history, error, fault)
    trace = ()
    if obs is not None:
        tracer, profiler = obs
        violations += check_cycle_conservation(profiler.account())
        if violations:
            trace = tuple(tracer.events)
    outcome = None if error else freeze(program.outcome(machine))
    return ScheduleVerdict(
        program=program_name, config=config_name, fault=fault, seed=seed,
        deviations=_trace_deviations(policy),
        violations=violations,
        error=str(error) if error else None,
        n_committed=len(history),
        n_steps=len(policy.choices),
        signature=history.signature(),
        divergences=tuple(policy.divergences),
        trace=trace,
        outcome=outcome)


def _pending_footprints(choices, footprints, deliveries, cpu_ids):
    """``pending[i][cpu]`` = the footprint ``cpu`` would execute if
    scheduled at step boundary ``i``, or None if unknown.

    A non-running CPU's next operation is fixed until it runs or
    receives a delivery, so its footprint is the one it executed at the
    first later step where it ran — invalidated by any intervening
    delivery to it.
    """
    n = len(choices)
    pending = [None] * n
    nxt = {cpu: None for cpu in cpu_ids}
    for i in range(n - 1, -1, -1):
        cur = dict(nxt)
        for cpu in deliveries[i]:
            if cpu != choices[i] and cpu in cur:
                cur[cpu] = None
        cur[choices[i]] = footprints[i]
        pending[i] = cur
        nxt = cur
    return pending


def _make_children(prefix, policy, recorder, max_depth, n_cpus):
    """The child prefixes branching off this node's trace, with their
    sleep-set seeds, in enumeration order."""
    choices = policy.choices
    candidates = policy.candidates
    n = len(choices)
    hi = n if max_depth is None else min(n, max_depth)
    lo = len(prefix)
    children = []
    if recorder is None:
        for i in range(lo, hi):
            for alt in candidates[i]:
                if alt != choices[i]:
                    children.append((tuple(choices[:i]) + (alt,), ()))
        return children
    # A run that died mid-step (e.g. the cycle limit) chose its last
    # step but never closed it: branch only over fully recorded steps.
    n = min(n, len(recorder.footprints))
    hi = min(hi, n)
    pending = _pending_footprints(
        choices[:n], recorder.footprints, recorder.deliveries,
        range(n_cpus))
    for i in range(lo, hi):
        sleep_i = recorder.sleep_before[i]
        # Godefroid's rule: child sleep = {already-explored siblings and
        # inherited entries, filtered to those provably independent of
        # the child's own first action}.  The already-run sibling
        # (this trace's choice) enters with its *exact* footprint;
        # earlier alternatives with their pending estimates.  New
        # sibling entries become active at the branch step itself, so
        # the child run's removal logic sees the branch action's own
        # deliveries and dependences.
        explored = [(choices[i], (recorder.footprints[i], i))]
        for alt in candidates[i]:
            if alt == choices[i] or alt in sleep_i:
                continue
            alt_fp = pending[i].get(alt) or GLOBAL_FOOTPRINT
            seed = {}
            for cpu, entry in list(sleep_i.items()) + explored:
                if cpu == alt:
                    continue
                fp, active_from = entry
                if fp is None or fp.global_:
                    continue
                if not fp.depends(alt_fp):
                    seed[cpu] = (fp, active_from)
            children.append(
                (tuple(choices[:i]) + (alt,), _encode_sleep(seed)))
            explored.append((alt, (pending[i].get(alt), i)))
    return children


def run_node(program_name, config_name, prefix=(), sleep=(), fault=None,
             seed=1, max_depth=None, prune=True, max_cycles=None,
             checkpoint=False):
    """Run one exploration node: replay ``prefix``, complete the run
    deterministically, judge it, and derive the child prefixes.

    Pure in its (picklable) arguments — the unit the campaign executor
    shards across workers.  ``sleep`` is the encoded sleep-set seed for
    this subtree; ``max_depth`` bounds the step index at which new
    branches may be taken.  ``checkpoint`` enables the worker-local
    snapshot cache where :func:`_checkpoint_supported` allows; the
    node's verdict and children are identical with it on or off.
    """
    prefix = tuple(prefix)
    ctx = None
    before = None
    if checkpoint and _checkpoint_supported(program_name, config_name,
                                            fault):
        ctx = {
            "base": (program_name, config_name, fault, seed, bool(prune)),
            "prefix": prefix,
            # The last bounded generation's children never run, so its
            # nodes skip deposits entirely.
            "deposit": max_depth != 0,
        }
        before = dict(_CHECKPOINTS.stats)
    program, machine, policy, history, error, pruned_at, recorder, obs = (
        _execute(program_name, config_name, dict(enumerate(prefix)),
                 sleep, len(prefix), fault, seed, max_cycles,
                 record=prune, checkpoint_ctx=ctx))
    verdict = None
    if pruned_at is None:
        verdict = _make_verdict(program_name, config_name, fault, seed,
                                program, machine, policy, history, error,
                                obs=obs)
    children = _make_children(prefix, policy, recorder, max_depth,
                              machine.config.n_cpus)
    cache = None
    if before is not None:
        cache = {key: _CHECKPOINTS.stats[key] - before[key]
                 for key in before}
        cache["bytes"] = _CHECKPOINTS.stats["bytes"]
    return NodeOutcome(prefix=prefix, pruned=pruned_at is not None,
                       verdict=verdict, children=tuple(children),
                       cache=cache)


def replay(program_name, config_name, deviations, fault=None, seed=1,
           max_cycles=None):
    """Re-run the schedule identified by ``deviations`` and return its
    :class:`ScheduleVerdict`.

    Forcing exactly the deviating steps (every other step takes the
    deterministic pick) reconstructs the original schedule bit-for-bit,
    so a counterexample replays from its name alone.
    """
    deviations = tuple(sorted(tuple(d) for d in deviations))
    program, machine, policy, history, error, _pruned, _rec, obs = (
        _execute(program_name, config_name, dict(deviations), (), 0,
                 fault, seed, max_cycles, record=False))
    return _make_verdict(program_name, config_name, fault, seed,
                         program, machine, policy, history, error,
                         obs=obs)


# ----------------------------------------------------------------------
# The frontier driver
# ----------------------------------------------------------------------


def node_spec(program_name, config_name, prefix, sleep, fault, seed,
              max_depth, prune, max_cycles=None, checkpoint=False,
              affinity=None):
    """The picklable :class:`CaseSpec` for one exploration node.

    ``affinity`` routes the node toward the worker that ran its parent
    (whose checkpoint cache holds the ancestors it can fork from); it
    is a placement hint only and never affects the node's result.
    """
    name = (f"{program_name}:{config_name}:"
            f"prefix={','.join(map(str, prefix)) or '-'}")
    if fault:
        name = f"{fault}:{name}"
    kwargs = (("prefix", tuple(prefix)), ("sleep", tuple(sleep)),
              ("fault", fault), ("seed", seed), ("max_depth", max_depth),
              ("prune", prune), ("max_cycles", max_cycles),
              ("checkpoint", checkpoint))
    return CaseSpec(runner="repro.check.explore:run_node", name=name,
                    args=(program_name, config_name), kwargs=kwargs,
                    affinity=affinity)


def node_failure(spec, message):
    """Classify a crashed/hung node as a failed schedule (its subtree
    is lost, but the campaign and the verdict stream survive)."""
    program_name, config_name = spec.args
    kwargs = dict(spec.kwargs)
    verdict = ScheduleVerdict(
        program=program_name, config=config_name,
        fault=kwargs.get("fault"), seed=kwargs.get("seed", 1),
        deviations=(),
        violations=[OracleViolation(
            "run-failure",
            f"node prefix={list(kwargs.get('prefix', ()))}: {message}")],
        error=message)
    return NodeOutcome(prefix=tuple(kwargs.get("prefix", ())),
                       verdict=verdict)


@dataclasses.dataclass
class ExploreReport:
    """The outcome of one exploration campaign."""

    program: str
    config: str
    fault: str = None
    seed: int = 1
    preemption_bound: int = None
    max_depth: int = None
    prune: bool = True
    jobs: int = 1
    skipped: bool = False
    #: Schedules run to completion and judged.
    explored: int = 0
    #: Runs abandoned by the sleep set (continuation covered elsewhere).
    pruned: int = 0
    #: Nodes per generation (generation = number of forced deviations).
    generations: list = dataclasses.field(default_factory=list)
    #: One verdict per explored schedule, in enumeration order.
    verdicts: list = dataclasses.field(default_factory=list)
    #: True if ``max_schedules`` cut the frontier before it drained.
    truncated: bool = False
    #: Whether the snapshot cache was requested for this campaign.
    checkpoint: bool = False
    #: Aggregated checkpoint-cache counters (hits/misses/deposits/
    #: evictions/fallbacks summed across nodes; ``bytes`` is the peak
    #: per-worker gauge).  None when checkpointing was off everywhere.
    checkpoint_stats: dict = None

    @property
    def failures(self):
        return [v for v in self.verdicts if v.failed]

    @property
    def exhaustive(self):
        """Every reachable schedule (up to pruning) was visited."""
        return not self.truncated and self.preemption_bound is None

    @property
    def distinct_histories(self):
        return len({v.signature for v in self.verdicts})

    def summary(self):
        name = f"{self.program}:{self.config}"
        if self.fault:
            name = f"{self.fault}:{name}"
        if self.skipped:
            return f"{name}: skipped (scenario needs another config)"
        bound = ("unbounded" if self.preemption_bound is None
                 else f"bound {self.preemption_bound}")
        scope = "exhaustive" if self.exhaustive else bound
        tail = " [truncated]" if self.truncated else ""
        return (f"{name}: {self.explored} schedules explored, "
                f"{self.pruned} pruned ({scope}, "
                f"{self.distinct_histories} distinct histories, "
                f"{len(self.failures)} failing){tail}")


def explore(program_name, config_name, fault=None, seed=1,
            preemption_bound=2, max_depth=None, prune=True, jobs=1,
            max_schedules=None, max_cycles=None, timeout=None,
            report=None, pool=None, checkpoint=True):
    """Explore the schedule space of one (program, config[, fault]).

    Breadth-first over generations: generation ``b`` holds the
    schedules with ``b`` forced deviations, so ``preemption_bound``
    (None = unbounded, i.e. run until the frontier drains) is iterative
    preemption bounding.  ``report``, if given, sees every
    :class:`ScheduleVerdict` in enumeration order; ``jobs > 1`` shards
    each generation across a :class:`WorkerPool` (pass ``pool`` to
    reuse one across calls) without changing any result.
    ``max_schedules`` caps the total number of runs as a safety net and
    marks the report ``truncated``.

    ``checkpoint`` (default on; gated per node by
    :func:`_checkpoint_supported`) lets each worker fork nodes from
    cached ancestor snapshots instead of replaying from cycle 0, and
    routes children to the worker holding their ancestor's checkpoints
    via spec affinity.  Every verdict is identical with it on or off —
    ``--no-checkpoint`` is the differential control.
    """
    if config_name not in CONFIGS:
        raise ValueError(f"unknown config {config_name!r}; "
                         f"choose from {sorted(CONFIGS)}")
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; choose from {FAULTS}")
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    effective_prune = _should_prune(prune, fault, config)
    effective_checkpoint = bool(
        checkpoint and _checkpoint_supported(program_name, config_name,
                                             fault))
    out = ExploreReport(
        program=program_name, config=config_name, fault=fault, seed=seed,
        preemption_bound=preemption_bound, max_depth=max_depth,
        prune=effective_prune, jobs=jobs, checkpoint=effective_checkpoint)
    if not program.supports(config):
        out.skipped = True
        return out
    if effective_checkpoint:
        out.checkpoint_stats = {"hits": 0, "misses": 0, "deposits": 0,
                                "evictions": 0, "fallbacks": 0,
                                "bytes": 0}

    own_pool = None
    if jobs > 1 and pool is None:
        own_pool = pool = WorkerPool(jobs)
    frontier = [((), (), None)]
    generation = 0
    try:
        while frontier:
            if (preemption_bound is not None
                    and generation > preemption_bound):
                break
            if max_schedules is not None:
                room = max_schedules - (out.explored + out.pruned)
                if room <= 0:
                    out.truncated = True
                    break
                if len(frontier) > room:
                    frontier = frontier[:room]
                    out.truncated = True
            # The last bounded generation's children can never run:
            # suppress them at the source (a livelocked run has tens of
            # thousands of steps, and materializing one child prefix per
            # step is quadratic in memory for no benefit).
            last = (preemption_bound is not None
                    and generation == preemption_bound)
            depth = 0 if last else max_depth
            specs = [
                node_spec(program_name, config_name, prefix, sleep,
                          fault, seed, depth, effective_prune,
                          max_cycles=max_cycles,
                          checkpoint=effective_checkpoint,
                          affinity=affinity)
                for prefix, sleep, affinity in frontier
            ]
            if pool is not None:
                outcomes = pool.map(specs, timeout=timeout,
                                    failure_result=node_failure)
                assigned = pool.last_assignments
            else:
                outcomes = run_campaign(specs, jobs=1, timeout=timeout,
                                        failure_result=node_failure)
                assigned = None
            next_frontier = []
            for position, outcome in enumerate(outcomes):
                if outcome.pruned:
                    out.pruned += 1
                else:
                    out.explored += 1
                    out.verdicts.append(outcome.verdict)
                    if report is not None:
                        report(outcome.verdict)
                # Children fork from checkpoints this node deposited, so
                # route them to the worker that ran it.
                worker = assigned[position] if assigned is not None else None
                next_frontier.extend(
                    (child_prefix, child_sleep, worker)
                    for child_prefix, child_sleep in outcome.children)
                if outcome.cache and out.checkpoint_stats is not None:
                    for key, value in outcome.cache.items():
                        if key == "bytes":
                            out.checkpoint_stats[key] = max(
                                out.checkpoint_stats[key], value)
                        else:
                            out.checkpoint_stats[key] += value
            out.generations.append(len(outcomes))
            frontier = next_frontier
            generation += 1
    finally:
        if own_pool is not None:
            own_pool.close()
    return out
