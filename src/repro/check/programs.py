"""Small adversarial programs for the schedule-exploration fuzzer.

Each program is a :class:`~repro.workloads.base.Workload` whose
correctness claim is *schedule-independent*: under any interleaving the
engine can produce, the run must finish, the final state must satisfy the
program's invariant, and the recorded history must pass the oracles.
They are deliberately tiny — a fuzz case must cost milliseconds — and
deliberately contended, so randomized schedules actually reorder their
commits.

The roster targets the mechanisms DESIGN.md §6b found fragile:

* ``counter``     — the atomic-increment classic (serializability).
* ``atomicity``   — a non-transactional writer racing transactional
  readers (strong atomicity: no torn reads across one-word commits).
* ``bank``        — conserved-sum transfers (serializability).
* ``writeskew``   — the write-skew shape snapshot systems get wrong; a
  conflict-serializable HTM must not.
* ``nestedopen``  — closed nesting inside, open-nested logging to a hot
  line (open commits publish exactly once, survive parent restarts).
* ``compensation``— open-nested effect + compensating violation handler,
  DESIGN.md §6b.6: the effect must land exactly once per commit, with
  idempotent (absolute-value) compensation registered *before* the
  effect.
* ``requeue``     — a wakeup whose delivery depends on the §6b.2
  violation-record re-queue rule: a dispatcher destroyed by a nested
  rollback must re-queue the record it was handling, or the wake is
  silently dropped and a parked CPU sleeps forever.
* ``condsync``    — the full watch/retry scheduler on one
  producer/consumer pair (no lost or duplicated wakeups).
* ``iochaos``     — the two paper §5 libraries together: open-nested
  allocation with compensation plus buffered transactional output
  (exactly-once log appends, heap conservation).  The natural prey for
  the ``io-fault``/``alloc-pressure`` chaos kinds.

Programs that rely on commit-time violation *delivery* declare
``supports(config)`` accordingly: under eager ``requester_stalls``
detection a writer stalls or self-aborts against a long-running reader
instead of violating it, so the handler-driven scenarios only exist on a
lazy machine.
"""

from __future__ import annotations

import random

from repro.common.errors import ReproError
from repro.common.params import LAZY
from repro.runtime.core import RESUME
from repro.sim import ops as O
from repro.workloads.base import Workload
from repro.workloads.condsync_bench import CondSyncWorkload

from repro.check.oracles import check_exact_count, check_invariant


class CheckProgram(Workload):
    """Base: a workload with fuzzing metadata and extra oracles."""

    #: Simulated-cycle budget for one fuzz case (generous: legitimate
    #: runs finish in a small fraction of this).
    max_cycles = 2_000_000

    #: CPUs allowed to park awaiting a wakeup (None: any).  The
    #: lost-wakeup oracle flags these if the run ends with one asleep.
    waiter_cpus = None

    #: Whether :mod:`repro.spec` models this program.  Programs that
    #: reach around the runtime into raw ISA state (``requeue``) or the
    #: daemon scheduler (``condsync``) sit outside the reference
    #: semantics and are skipped by the conformance oracle.
    spec_supported = True

    def supports(self, config):
        """Whether this program's scenario exists under ``config``."""
        return True

    def check_final(self, machine, history):
        """Program-specific oracles; returns a list of violations."""
        return []

    def outcome(self, machine):
        """The observable final result of a run: the memory cells and
        per-CPU observations this program's correctness is judged on.

        Two runs (or a run and a spec replay) with equal outcomes are
        indistinguishable to the program.  ``None`` means the program
        defines no comparable outcome.
        """
        return None


# ----------------------------------------------------------------------


class CounterProgram(CheckProgram):
    """N workers × M atomic increments of one shared counter."""

    name = "counter"

    def __init__(self, n_threads=3, seed=1, scale=1.0, increments=6):
        super().__init__(n_threads, seed=seed, scale=scale)
        self.increments = increments

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.addr = arena.alloc_word(0, isolate=True)
        rng = random.Random(self.seed)
        jitter = [[rng.randrange(40) for _ in range(self.increments)]
                  for _ in range(self.n_threads)]
        for worker in range(self.n_threads):
            runtime.spawn(self._worker, jitter[worker], cpu_id=worker)

    def _worker(self, t, jitter):
        rt = self._rt
        for gap in jitter:
            def body(t):
                value = yield t.load(self.addr)
                yield t.alu(5)
                yield t.store(self.addr, value + 1)

            yield from rt.atomic(t, body)
            yield t.alu(1 + gap)

    def verify(self, machine):
        expected = self.n_threads * self.increments
        final = machine.memory.read(self.addr)
        if final != expected:
            raise ReproError(
                f"counter: final {final}, expected {expected} "
                f"(lost increments)")

    def outcome(self, machine):
        return {"counter": machine.memory.read(self.addr)}


class StrongAtomicityProgram(CheckProgram):
    """A non-transactional writer racing transactional double-readers.

    CPU 0 stores successive values to ``F`` with plain (depth-0) stores;
    the other CPUs run transactions that read ``F`` twice with a compute
    gap.  Strong atomicity makes each depth-0 store a one-word commit, so
    no committed transaction may observe two different values."""

    name = "atomicity"

    def __init__(self, n_threads=3, seed=1, scale=1.0, rounds=5):
        super().__init__(n_threads, seed=seed, scale=scale)
        self.rounds = rounds

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.flag = arena.alloc_word(0, isolate=True)
        runtime.spawn(self._writer, cpu_id=0)
        for reader in range(1, self.n_threads):
            runtime.spawn(self._reader, cpu_id=reader)

    def _writer(self, t):
        for value in range(1, self.rounds + 1):
            yield t.alu(30)
            yield t.store(self.flag, value)   # depth 0: one-word commit

    def _reader(self, t):
        rt = self._rt
        pairs = []
        for _ in range(self.rounds):
            def body(t):
                first = yield t.load(self.flag)
                yield t.alu(20)
                second = yield t.load(self.flag)
                return (first, second)

            pairs.append((yield from rt.atomic(t, body)))
            yield t.alu(9)
        return pairs

    def verify(self, machine):
        for reader in range(1, self.n_threads):
            for first, second in machine.cpus[reader].result:
                if first != second:
                    raise ReproError(
                        f"atomicity: cpu {reader} saw torn pair "
                        f"({first}, {second}) across a one-word commit")

    def outcome(self, machine):
        return {
            "flag": machine.memory.read(self.flag),
            "pairs": [machine.cpus[reader].result
                      for reader in range(1, self.n_threads)],
        }


class BankProgram(CheckProgram):
    """Random transfers between accounts; the total is conserved."""

    name = "bank"

    ACCOUNTS = 4
    INITIAL = 100

    def __init__(self, n_threads=3, seed=1, scale=1.0, rounds=5):
        super().__init__(n_threads, seed=seed, scale=scale)
        self.rounds = rounds

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.accounts = [arena.alloc_word(self.INITIAL, isolate=True)
                         for _ in range(self.ACCOUNTS)]
        rng = random.Random(self.seed)
        for worker in range(self.n_threads):
            plan = [(rng.randrange(self.ACCOUNTS),
                     rng.randrange(self.ACCOUNTS),
                     rng.randrange(1, 10),
                     rng.randrange(30))
                    for _ in range(self.rounds)]
            runtime.spawn(self._worker, plan, cpu_id=worker)

    def _worker(self, t, plan):
        rt = self._rt
        for src, dst, amount, gap in plan:
            def body(t, src=src, dst=dst, amount=amount):
                balance = yield t.load(self.accounts[src])
                yield t.alu(8)
                yield t.store(self.accounts[src], balance - amount)
                other = yield t.load(self.accounts[dst])
                yield t.store(self.accounts[dst], other + amount)

            yield from rt.atomic(t, body)
            yield t.alu(1 + gap)

    def verify(self, machine):
        total = sum(machine.memory.read(addr) for addr in self.accounts)
        expected = self.ACCOUNTS * self.INITIAL
        if total != expected:
            raise ReproError(
                f"bank: total {total}, expected {expected} "
                f"(non-atomic transfer)")

    def outcome(self, machine):
        return {"balances": [machine.memory.read(addr)
                             for addr in self.accounts]}


class WriteSkewProgram(CheckProgram):
    """The write-skew shape: each transaction reads both cells and
    conditionally withdraws from its own.  Snapshot isolation admits the
    interleaving where both withdraw; conflict serializability does not.
    From (5, 5) exactly one withdrawal can succeed serially, so the final
    sum is exactly 5."""

    name = "writeskew"

    def __init__(self, n_threads=2, seed=1, scale=1.0, attempts=3):
        super().__init__(2, seed=seed, scale=scale)
        self.attempts = attempts

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.cells = [arena.alloc_word(5, isolate=True) for _ in range(2)]
        rng = random.Random(self.seed)
        for worker in range(2):
            gaps = [rng.randrange(25) for _ in range(self.attempts)]
            runtime.spawn(self._worker, worker, gaps, cpu_id=worker)

    def _worker(self, t, who, gaps):
        rt = self._rt
        for gap in gaps:
            def body(t):
                mine = yield t.load(self.cells[who])
                other = yield t.load(self.cells[1 - who])
                yield t.alu(10)
                if mine + other >= 6:
                    yield t.store(self.cells[who], mine - 5)

            yield from rt.atomic(t, body)
            yield t.alu(1 + gap)

    def verify(self, machine):
        total = sum(machine.memory.read(addr) for addr in self.cells)
        if total != 5:
            raise ReproError(
                f"writeskew: final sum {total}, expected exactly 5 "
                f"(write skew committed)" if total < 5 else
                f"writeskew: final sum {total}, expected exactly 5 "
                f"(no withdrawal succeeded)")

    def outcome(self, machine):
        return {"cells": [machine.memory.read(addr)
                          for addr in self.cells]}


class NestedOpenProgram(CheckProgram):
    """Closed-nested work on a hot counter with open-nested logging.

    Every attempt open-logs to ``L`` before touching the contended ``D``;
    restarts of the outer transaction re-log, so committed L >= D, and
    open commits must survive parent restarts (L strictly greater when
    any attempt was rolled back)."""

    name = "nestedopen"

    def __init__(self, n_threads=3, seed=1, scale=1.0, rounds=4):
        super().__init__(n_threads, seed=seed, scale=scale)
        self.rounds = rounds

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.data = arena.alloc_word(0, isolate=True)
        self.log = arena.alloc_word(0, isolate=True)
        for worker in range(self.n_threads):
            runtime.spawn(self._worker, cpu_id=worker)

    def _worker(self, t):
        rt = self._rt

        def log_attempt(t):
            count = yield t.load(self.log)
            yield t.store(self.log, count + 1)

        def inner(t):
            value = yield t.load(self.data)
            yield t.alu(15)
            yield t.store(self.data, value + 1)

        def body(t):
            yield from rt.atomic_open(t, log_attempt)
            yield from rt.atomic(t, inner)   # closed-nested

        for _ in range(self.rounds):
            yield from rt.atomic(t, body)
            yield t.alu(5)

    def verify(self, machine):
        data = machine.memory.read(self.data)
        log = machine.memory.read(self.log)
        expected = self.n_threads * self.rounds
        if data != expected:
            raise ReproError(
                f"nestedopen: data {data}, expected {expected}")
        if log < data:
            raise ReproError(
                f"nestedopen: open-nested log {log} < committed work "
                f"{data} (an open commit was lost in a parent restart)")

    def check_final(self, machine, history):
        return check_invariant(
            "nestedopen-open-commits",
            any(r.kind == "open" for r in history.committed),
            "no open-nested commit was recorded")

    def outcome(self, machine):
        return {
            "data": machine.memory.read(self.data),
            "log": machine.memory.read(self.log),
        }


class CompensationProgram(CheckProgram):
    """Exactly-once open-nested effects with compensation (§6b.6).

    The *mover* (CPU 0, sole owner of ``POS``) runs transactions that:
    read ``POS``; register a compensating violation handler carrying the
    absolute pre-value (**before** the effect, so every kill window is
    covered); perform the effect ``POS = pre + 1`` in an open-nested
    transaction; then do contended work on ``D`` (where the attackers
    live) and bump a commit counter ``CNT``.  A violation rolls the
    transaction back after compensation restored ``POS = pre`` —
    idempotent because the restore is an absolute store.  The invariant
    on any schedule: ``POS == CNT``.

    The restore itself is an idempotent immediate store (``imstid``),
    not an open-nested transaction: fuzzing showed that a restore
    transaction inside the handler re-enables violation reporting, so a
    stream of conflicts on ``D`` can re-enter the handler from its own
    open transaction and stack nesting levels until the hardware depth
    limit forces a capacity abort.  A single-owner absolute restore
    (DESIGN.md §6b.6) needs no isolation, so ``imstid`` is both safe
    and re-entrancy-proof."""

    name = "compensation"

    def __init__(self, n_threads=3, seed=1, scale=1.0, rounds=4):
        super().__init__(n_threads, seed=seed, scale=scale)
        self.rounds = rounds

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.pos = arena.alloc_word(0, isolate=True)
        self.cnt = arena.alloc_word(0, isolate=True)
        self.data = arena.alloc_word(0, isolate=True)
        runtime.spawn(self._mover, cpu_id=0)
        for attacker in range(1, self.n_threads):
            runtime.spawn(self._attacker, cpu_id=attacker)

    def _compensate(self, t, pre):
        yield t.imstid(self.pos, pre)
        # Fall through: the dispatcher proceeds to roll back.

    def _mover(self, t):
        rt = self._rt
        for _ in range(self.rounds):
            def body(t):
                pre = yield t.load(self.pos)
                yield from rt.register_violation_handler(
                    t, self._compensate, pre)

                def effect(t):
                    yield t.store(self.pos, pre + 1)

                yield from rt.atomic_open(t, effect)
                value = yield t.load(self.data)
                yield t.alu(150)
                yield t.store(self.data, value + 1)
                count = yield t.load(self.cnt)
                yield t.store(self.cnt, count + 1)

            yield from rt.atomic(t, body)
            yield t.alu(9)

    def _attacker(self, t):
        rt = self._rt
        for _ in range(3 * self.rounds):
            def body(t):
                value = yield t.load(self.data)
                yield t.alu(12)
                yield t.store(self.data, value + 1)

            yield from rt.atomic(t, body)
            yield t.alu(7)

    def verify(self, machine):
        pos = machine.memory.read(self.pos)
        cnt = machine.memory.read(self.cnt)
        if pos != cnt:
            raise ReproError(
                f"compensation: POS {pos} != committed count {cnt} "
                f"(effect not exactly-once)")
        if cnt != self.rounds:
            raise ReproError(
                f"compensation: committed count {cnt}, expected "
                f"{self.rounds}")

    def check_final(self, machine, history):
        return check_exact_count(
            "compensated-open-effect",
            machine.memory.read(self.pos),
            machine.memory.read(self.cnt))

    def outcome(self, machine):
        return {
            "pos": machine.memory.read(self.pos),
            "cnt": machine.memory.read(self.cnt),
            "data": machine.memory.read(self.data),
        }


class RequeueWakeupProgram(CheckProgram):
    """A wakeup that rides on the §6b.2 violation-record re-queue rule.

    CPU 0 parks and waits for a wake that only the *victim's* level-1
    violation handler sends.  The attackers are timed so that, on the
    deterministic schedule, the level-1 record is being handled by a
    dispatcher that a nested (level-2) rollback destroys — the §6b.2
    window.  With re-queueing intact the record is re-delivered and the
    handler wakes CPU 0 on every schedule; with the test-only
    ``requeue_enabled`` hook off, the record is dropped and CPU 0 sleeps
    forever (caught by the lost-wakeup oracle as a deadlock).

    Schedules exist (PCT demotion of the victim) where the attackers
    commit before the victim ever reads ``W`` — then no violation fires
    and nobody owes the wake through the handler.  The victim therefore
    tracks *delivery* of the level-1 record (reading ``xvcurrent`` in
    its handlers) and sends a fallback wake after committing **only if
    the record was never delivered**.  Once delivered, responsibility
    sits with the re-queue rule: if the hardware drops the record, the
    wake is rightly lost and the oracle fires.

    Timing margins (cycles are exact under ``timing=False`` and bounded
    by the policies' scheduling window): the victim registers its
    handlers within ~100 cycles, the first attacker fires at ~2000, and
    the victim's inner window is ~6000 long — so the record always finds
    both handlers registered and the victim mid-transaction."""

    name = "requeue"
    waiter_cpus = frozenset({0})
    # Reads xvcurrent through t.isa — hardware state below the level the
    # reference semantics model.
    spec_supported = False

    def __init__(self, n_threads=4, seed=1, scale=1.0):
        super().__init__(4, seed=seed, scale=scale)

    def supports(self, config):
        # Eager requester_stalls resolves the attackers' stores by
        # stalling them against the long-running victim: no commit-time
        # violation, no handler, no scenario.
        return config.detection == LAZY

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.w_addr = arena.alloc_word(0, isolate=True)
        self.x_addr = arena.alloc_word(0, isolate=True)
        runtime.spawn(self._waiter, cpu_id=0)
        runtime.spawn(self._victim, cpu_id=1)
        runtime.spawn(self._attacker, self.w_addr, 2000, cpu_id=2)
        runtime.spawn(self._attacker, self.x_addr, 2060, cpu_id=3)

    def _waiter(self, t):
        yield t.alu(5)
        yield O.YieldCpu()   # parks unless a wake token is already banked
        return "woken"

    def _victim(self, t):
        rt = self._rt
        saw_r1 = [False]   # the level-1 (bit 0) record was delivered
        woke = [False]     # the wake handler actually ran

        def wake_handler(t):   # level-1 handler: deliver the wakeup
            woke[0] = True
            yield t.alu(2)
            yield O.Wake(0)
            return RESUME

        def window_handler(t):  # level-2 handler: interruptible window
            if t.isa.xvcurrent & 1:
                saw_r1[0] = True

            def dally(t):
                for _ in range(40):
                    yield t.alu(5)

            yield from rt.atomic_open(t, dally)
            # Fall through: roll the level-2 transaction back.

        def inner(t):           # level 2 (closed-nested)
            yield from rt.register_violation_handler(t, window_handler)
            yield t.load(self.x_addr)
            for _ in range(600):
                yield t.alu(10)

        def body(t):            # level 1
            yield from rt.register_violation_handler(t, wake_handler)
            value = yield t.load(self.w_addr)
            yield from rt.atomic(t, inner)
            return value

        result = yield from rt.atomic(t, body)
        if not woke[0] and not saw_r1[0]:
            # The race never happened on this schedule: the wake is
            # still owed, but not through the re-queue path.
            yield O.Wake(0)
        return result

    def _attacker(self, t, addr, delay, *, _chunk=100):
        for _ in range(delay // _chunk):
            yield t.alu(_chunk)

        def body(t):
            yield t.store(addr, 1)

        yield from self._rt.atomic(t, body)

    def verify(self, machine):
        if machine.cpus[0].result != "woken":
            raise ReproError("requeue: the waiter was never woken")


class CondSyncProgram(CheckProgram):
    """One producer/consumer pair under the full watch/retry scheduler."""

    name = "condsync"
    max_cycles = 1_200_000
    waiter_cpus = frozenset({1, 2})
    # The watch/retry scheduler daemon never commits its transaction;
    # the spec models only committing transactions.
    spec_supported = False

    def __init__(self, n_threads=2, seed=1, scale=0.5):
        self._inner = CondSyncWorkload(n_pairs=1, seed=seed, scale=scale)
        super().__init__(self._inner.n_threads, seed=seed, scale=scale)

    def min_cpus(self):
        return self._inner.min_cpus()

    def supports(self, config):
        # The scheduler transaction never commits; under eager detection
        # every producer targeting a watched line stalls against it
        # forever.  The paper's condsync runtime presumes lazy detection.
        return config.detection == LAZY

    def setup(self, machine, runtime, arena):
        self._inner.setup(machine, runtime, arena)

    def verify(self, machine):
        self._inner.verify(machine)


class IoChaosProgram(CheckProgram):
    """Allocator + transactional I/O under contention (paper §5).

    Each worker, per round, inside one transaction: mallocs a block
    (open-nested, compensated), tags it, writes the tag to a shared log
    file (buffered output, flushed by a commit handler between
    ``xvalidate`` and ``xcommit``), bumps a shared commit counter, and
    frees the block (deferred to commit).  On any schedule — and under
    any *recoverable* fault — the committed counter, the device log and
    the heap must agree:

    * exactly one log record per committed round (``len(log) == CNT``);
    * every block freed: the free list accounts for every byte the heap
      ever broke off (conservation — a leaked compensation shows up
      here).
    """

    name = "iochaos"

    HEAP_WORDS = 512
    BLOCK_WORDS = 4

    def __init__(self, n_threads=3, seed=1, scale=1.0, rounds=3):
        super().__init__(n_threads, seed=seed, scale=scale)
        self.rounds = rounds

    def setup(self, machine, runtime, arena):
        from repro.mem.heap import SharedHeap
        from repro.runtime.alloc import TxAlloc
        from repro.runtime.txio import SimFile, TxIo

        self._rt = runtime
        self.heap = SharedHeap(arena, self.HEAP_WORDS)
        self.alloc = TxAlloc(runtime, self.heap)
        self.io = TxIo(runtime)
        self.log = SimFile(arena, "chaos.log")
        self.cnt = arena.alloc_word(0, isolate=True)
        rng = random.Random(self.seed)
        for worker in range(self.n_threads):
            gaps = [rng.randrange(40) for _ in range(self.rounds)]
            runtime.spawn(self._worker, worker, gaps, cpu_id=worker)

    def _worker(self, t, who, gaps):
        rt = self._rt
        for round_no, gap in enumerate(gaps):
            tag = who * 100 + round_no

            def body(t, tag=tag):
                addr = yield from self.alloc.malloc(t, self.BLOCK_WORDS)
                yield t.store(addr, tag)
                yield from self.io.write(t, self.log, [tag])
                value = yield t.load(self.cnt)
                yield t.alu(10)
                yield t.store(self.cnt, value + 1)
                yield from self.alloc.free(t, addr)

            yield from rt.atomic(t, body)
            yield t.alu(1 + gap)

    def verify(self, machine):
        expected = self.n_threads * self.rounds
        cnt = machine.memory.read(self.cnt)
        if cnt != expected:
            raise ReproError(
                f"iochaos: committed count {cnt}, expected {expected}")

    def _free_bytes(self, machine):
        """Walk the final free list; total bytes (payload + headers)."""
        from repro.common.params import WORD_SIZE
        from repro.mem.heap import _HDR_WORDS

        total = 0
        block = machine.memory.read(self.heap.free_head_addr)
        seen = set()
        while block:
            if block in seen:
                return -1  # cycle: corrupt free list
            seen.add(block)
            size = machine.memory.read(block)
            total += (size + _HDR_WORDS) * WORD_SIZE
            block = machine.memory.read(block + WORD_SIZE)
        return total

    def check_final(self, machine, history):
        cnt = machine.memory.read(self.cnt)
        violations = check_exact_count(
            "iochaos-log-exactly-once", len(self.log.data), cnt)
        brk = machine.memory.read(self.heap.brk_addr)
        violations += check_invariant(
            "iochaos-heap-conserved",
            self._free_bytes(machine) == brk - self.heap.base,
            f"free list holds {self._free_bytes(machine)} bytes but the "
            f"heap broke off {brk - self.heap.base} (leak or corruption)")
        return violations

    def outcome(self, machine):
        return {
            "cnt": machine.memory.read(self.cnt),
            "log": list(self.log.data),
            "brk": machine.memory.read(self.heap.brk_addr),
            "free_bytes": self._free_bytes(machine),
        }


#: Fuzzable programs by name.
# ----------------------------------------------------------------------
# Litmus family: classic 2-CPU shapes, sized for exhaustive exploration.


class LitmusProgram(CheckProgram):
    """Base for the litmus family (docs/checking.md, "Exhaustive
    exploration").

    Litmus programs are the explorer's natural prey: two CPUs, one
    transaction each, *no internal randomness* — the entire behaviour is
    a pure function of the schedule, and the runs are short enough that
    the model checker (:mod:`repro.check.explore`) can enumerate every
    interleaving outright.  The fuzzer runs them too (they are ordinary
    :data:`PROGRAMS` members), which is what lets the differential test
    compare the two drivers on identical ground.
    """

    max_cycles = 100_000

    def __init__(self, n_threads=2, seed=1, scale=1.0):
        super().__init__(2, seed=seed, scale=scale)


class LitmusStoreBufferProgram(LitmusProgram):
    """Store buffering / commit order: ``t0 {x=1; r0=y}``,
    ``t1 {y=1; r1=x}``, one transaction each.

    Serializability orders the two commits, so the later committer's
    read must observe the earlier committer's store: ``r0 == r1 == 0``
    (both transactions read the initial values) is the classic forbidden
    outcome a store-buffered machine without TM ordering would allow.
    """

    name = "litmus-sb"

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.x = arena.alloc_word(0, isolate=True)
        self.y = arena.alloc_word(0, isolate=True)
        self.reads = [None, None]
        runtime.spawn(self._worker, 0, self.x, self.y, cpu_id=0)
        runtime.spawn(self._worker, 1, self.y, self.x, cpu_id=1)

    def _worker(self, t, me, mine, other):
        def body(t):
            yield t.store(mine, 1)
            self.reads[me] = yield t.load(other)

        yield from self._rt.atomic(t, body)

    def check_final(self, machine, history):
        return check_invariant(
            "litmus-sb", self.reads != [0, 0],
            f"both transactions read 0 (reads={self.reads}): no commit "
            "order can explain it")

    def outcome(self, machine):
        return {
            "reads": list(self.reads),
            "mem": [machine.memory.read(self.x),
                    machine.memory.read(self.y)],
        }


class LitmusPublicationProgram(LitmusProgram):
    """Message passing / publication: ``t0 {data=42; flag=1}``,
    ``t1 {r_flag=flag; r_data=data}``, one transaction each.

    If the reader sees the flag set it must also see the data — the
    publication idiom every §5 data structure relies on.  A machine
    that let the flag store commit without the data store (torn commit,
    write reordering) breaks it.
    """

    name = "litmus-mp"

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.data = arena.alloc_word(0, isolate=True)
        self.flag = arena.alloc_word(0, isolate=True)
        self.reads = [None, None]

        def writer(t):
            def body(t):
                yield t.store(self.data, 42)
                yield t.store(self.flag, 1)

            yield from runtime.atomic(t, body)

        def reader(t):
            def body(t):
                self.reads[0] = yield t.load(self.flag)
                self.reads[1] = yield t.load(self.data)

            yield from runtime.atomic(t, body)

        runtime.spawn(writer, cpu_id=0)
        runtime.spawn(reader, cpu_id=1)

    def check_final(self, machine, history):
        flag, data = self.reads
        return check_invariant(
            "litmus-mp", not (flag == 1 and data != 42),
            f"reader saw flag=1 but data={data}: publication tore")

    def outcome(self, machine):
        return {
            "reads": list(self.reads),
            "mem": [machine.memory.read(self.data),
                    machine.memory.read(self.flag)],
        }


class LitmusIncrementProgram(LitmusProgram):
    """The minimal contended increment: two CPUs, one ``+1`` each.

    The smallest program whose conflict the two detection modes resolve
    differently — a lazy machine lets both run and violates the loser at
    commit, an eager ``requester_stalls`` machine stalls the second
    writer inside its transaction — so exploring it under ``eager-wb``
    vs ``lazy-wb-assoc`` exercises both arbitration paths on an
    identical program.  Either way the counter must end at 2.
    """

    name = "litmus-inc"

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.addr = arena.alloc_word(0, isolate=True)
        for worker in range(2):
            runtime.spawn(self._worker, cpu_id=worker)

    def _worker(self, t):
        def body(t):
            value = yield t.load(self.addr)
            yield t.store(self.addr, value + 1)

        yield from self._rt.atomic(t, body)

    def check_final(self, machine, history):
        final = machine.memory.read(self.addr)
        return check_invariant(
            "litmus-inc", final == 2,
            f"final counter {final}, expected 2 (lost increment)")

    def outcome(self, machine):
        return {"counter": machine.memory.read(self.addr)}


class LitmusLoadBufferProgram(LitmusProgram):
    """Load buffering: ``t0 {r0=y; x=1}``, ``t1 {r1=x; y=1}``.

    With atomic transactions the admissible set is stronger than any
    hardware LB rule: whichever transaction serializes second must read
    the first one's store, so exactly one of the reads is 1 — both
    ``(0, 0)`` (reads reordered past writes) and the classic ``(1, 1)``
    (causality cycle) are forbidden.
    """

    name = "litmus-lb"

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.x = arena.alloc_word(0, isolate=True)
        self.y = arena.alloc_word(0, isolate=True)
        self.reads = [None, None]
        runtime.spawn(self._worker, 0, self.x, self.y, cpu_id=0)
        runtime.spawn(self._worker, 1, self.y, self.x, cpu_id=1)

    def _worker(self, t, me, mine, other):
        def body(t):
            self.reads[me] = yield t.load(other)
            yield t.store(mine, 1)

        yield from self._rt.atomic(t, body)

    def check_final(self, machine, history):
        return check_invariant(
            "litmus-lb", sorted(self.reads) == [0, 1],
            f"reads={self.reads}: transactions must serialize, so "
            "exactly one read observes the other's store")

    def outcome(self, machine):
        return {
            "reads": list(self.reads),
            "mem": [machine.memory.read(self.x),
                    machine.memory.read(self.y)],
        }


class LitmusCoRRProgram(LitmusProgram):
    """Coherent read-read: a writer transaction ``{x=1}`` against a
    reader running *two successive* transactions ``{r0=x}``, ``{r1=x}``.

    Serializability over three transactions forbids exactly one outcome:
    ``(1, 0)`` — once a committed read observes the store, a later
    transaction on the same CPU cannot un-observe it.
    """

    name = "litmus-corr"

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.x = arena.alloc_word(0, isolate=True)
        self.reads = [None, None]

        def writer(t):
            def body(t):
                yield t.store(self.x, 1)

            yield from runtime.atomic(t, body)

        def reader(t):
            for slot in range(2):
                def body(t, slot=slot):
                    self.reads[slot] = yield t.load(self.x)

                yield from runtime.atomic(t, body)
                yield t.alu(3)

        runtime.spawn(writer, cpu_id=0)
        runtime.spawn(reader, cpu_id=1)

    def check_final(self, machine, history):
        return check_invariant(
            "litmus-corr", self.reads != [1, 0],
            f"reads={self.reads}: a later read un-observed a committed "
            "store (coherence violation)")

    def outcome(self, machine):
        return {
            "reads": list(self.reads),
            "mem": [machine.memory.read(self.x)],
        }


class LitmusTokenHandoffProgram(LitmusProgram):
    """Park/wake handoff: ``t0 {x=1}; wake(1)`` against
    ``t1: yieldcpu; {r=x}``.

    The wake token must close the race in both directions: if t1 parks
    first the wake unparks it, if the wake lands first the token is
    banked and t1's ``yieldcpu`` is a no-op.  Either way t1's
    transaction runs strictly after t0's commit, so the *only*
    admissible outcome is ``r == 1`` — the spec-enumerated set for this
    program is a singleton, which makes it the sharpest drain gate in
    the family.
    """

    name = "litmus-token-handoff"
    waiter_cpus = frozenset({1})

    def setup(self, machine, runtime, arena):
        self._rt = runtime
        self.x = arena.alloc_word(0, isolate=True)
        self.reads = [None]

        def publisher(t):
            def body(t):
                yield t.store(self.x, 1)

            yield from runtime.atomic(t, body)
            yield O.Wake(1)

        def consumer(t):
            yield O.YieldCpu()  # no-op if the wake token is banked

            def body(t):
                self.reads[0] = yield t.load(self.x)

            yield from runtime.atomic(t, body)

        runtime.spawn(publisher, cpu_id=0)
        runtime.spawn(consumer, cpu_id=1)

    def check_final(self, machine, history):
        return check_invariant(
            "litmus-token-handoff", self.reads == [1],
            f"consumer read {self.reads[0]} after the handoff wake; "
            "only 1 is admissible")

    def outcome(self, machine):
        return {
            "reads": list(self.reads),
            "mem": [machine.memory.read(self.x)],
        }


#: The litmus family, in canonical order (the explore CLI's default).
LITMUS_PROGRAMS = ("litmus-sb", "litmus-mp", "litmus-inc", "litmus-lb",
                   "litmus-corr", "litmus-token-handoff")


PROGRAMS = {
    cls.name: cls
    for cls in (
        CounterProgram,
        StrongAtomicityProgram,
        BankProgram,
        WriteSkewProgram,
        NestedOpenProgram,
        CompensationProgram,
        RequeueWakeupProgram,
        CondSyncProgram,
        IoChaosProgram,
        LitmusStoreBufferProgram,
        LitmusPublicationProgram,
        LitmusIncrementProgram,
        LitmusLoadBufferProgram,
        LitmusCoRRProgram,
        LitmusTokenHandoffProgram,
    )
}


def make_program(name, seed=1):
    """Instantiate a fuzz program by registry name."""
    try:
        cls = PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown check program {name!r}; "
            f"choose from {sorted(PROGRAMS)}") from None
    return cls(seed=seed)
