"""Schedule-exploration fuzzing: sweep seeds × configs × policies.

The driver runs the adversarial programs (:mod:`repro.check.programs`)
on small machines spanning the paper's design space — lazy/eager
detection, write-buffer/undo-log versioning, multi-tracking/associativity
nesting, functional and timing (simple and MSI) memory models — under the
schedule policies of :mod:`repro.sim.schedule`, and checks every run with
the oracles of :mod:`repro.check.oracles`.

Every case is a pure function of its ``(program, config, policy, seed)``
quadruple — the engine is deterministic given the policy's seed — so a
failure is *replayable* by re-running the same quadruple (exposed on the
CLI as ``python -m repro check --replay prog:config:policy:seed``).  For
PCT (``pct``) failures, :func:`shrink_change_points` greedily minimises
the set of priority change-points needed to reproduce the failure, which
usually pins the bug to one or two scheduling decisions.

Fault injection: ``fault="drop-requeue"`` disables the §6b.2
violation-record re-queue on every CPU (the :class:`~repro.isa.state
.IsaState.requeue_enabled` test hook), re-introducing the lost-wakeup bug
the design fixed.  The ``requeue`` and ``condsync`` programs catch it.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ReproError
from repro.common.params import (
    EAGER,
    MULTI_TRACKING,
    UNDO_LOG,
    functional_config,
)
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import PriorityPolicy, make_policy

from repro.check.history import HistoryRecorder
from repro.check.oracles import (
    OracleViolation,
    check_lost_wakeups,
    check_serializability,
)
from repro.check.programs import PROGRAMS, make_program

#: The configuration matrix, named so failures replay by name.
CONFIGS = {
    "lazy-wb-assoc": {},
    "lazy-wb-mt": {"nesting_scheme": MULTI_TRACKING},
    "eager-wb": {"detection": EAGER},
    "eager-undo": {"detection": EAGER, "versioning": UNDO_LOG},
    "lazy-timing-simple": {"timing": True},
    "lazy-timing-msi": {"timing": True, "coherence": "msi"},
}

#: Configs cheap enough for every (program, policy, seed) product; the
#: timing models cost ~10x per case and are swept at reduced depth.
FAST_CONFIGS = ("lazy-wb-assoc", "lazy-wb-mt", "eager-wb", "eager-undo")

POLICIES = ("det", "random", "pct")

FAULTS = ("drop-requeue",)


@dataclasses.dataclass
class CaseResult:
    """Outcome of one fuzz case."""

    program: str
    config: str
    policy: str
    seed: int
    skipped: bool = False
    violations: list = dataclasses.field(default_factory=list)
    n_committed: int = 0
    commit_cpus: tuple = ()      # committing CPU per commit, in order
    error: str = None
    fired_points: list = None    # pct: (step, demoted cpu) pairs that fired

    @property
    def failed(self):
        return bool(self.violations)

    @property
    def triple(self):
        """The replayable name of this case."""
        return f"{self.program}:{self.config}:{self.policy}:{self.seed}"

    def __str__(self):
        if self.skipped:
            return f"{self.triple}: skipped (scenario needs another config)"
        if not self.failed:
            return f"{self.triple}: ok ({self.n_committed} commits)"
        lines = [f"{self.triple}: FAILED"]
        lines += [f"  {violation}" for violation in self.violations]
        if self.fired_points:
            lines.append(f"  pct change-points fired: {self.fired_points}")
        return "\n".join(lines)


def build_config(config_name, program):
    overrides = dict(CONFIGS[config_name])
    n_cpus = max(4, program.min_cpus())
    return functional_config(n_cpus=n_cpus, **overrides)


def run_case(program_name, config_name, policy_name, seed,
             fault=None, change_points=None):
    """Run one case and return its :class:`CaseResult`.

    Deterministic in its arguments: the seed fixes both the program's
    internal randomness and the schedule policy's.
    """
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; choose from {FAULTS}")
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    if not program.supports(config):
        return CaseResult(program_name, config_name, policy_name, seed,
                          skipped=True)
    policy_kwargs = {}
    if change_points is not None:
        policy_kwargs["change_points"] = change_points
    policy = make_policy(policy_name, seed=seed, **policy_kwargs)
    machine = Machine(config, policy=policy)
    if fault == "drop-requeue":
        for cpu in machine.cpus:
            cpu.isa.requeue_enabled = False
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    recorder = HistoryRecorder(machine)
    error = None
    try:
        program.setup(machine, runtime, arena)
        machine.run(max_cycles=program.max_cycles)
    except ReproError as exc:
        error = exc
    finally:
        recorder.detach()
    if error is None:
        try:
            program.verify(machine)
        except ReproError as exc:
            error = exc
    history = recorder.history
    violations = list(check_serializability(history))
    violations += check_lost_wakeups(machine, error, program.waiter_cpus)
    if error is None:
        violations += program.check_final(machine, history)
    elif not violations:
        # The run failed in a way no specific oracle classified; surface
        # it rather than letting a crash read as a pass.
        violations.append(OracleViolation(
            "run-failure", f"{type(error).__name__}: {error}"))
    return CaseResult(
        program_name, config_name, policy_name, seed,
        violations=violations,
        n_committed=len(history),
        commit_cpus=tuple(r.cpu for r in history.committed),
        error=str(error) if error else None,
        fired_points=(list(policy.fired)
                      if isinstance(policy, PriorityPolicy) else None),
    )


def sweep(programs=None, configs=None, policies=POLICIES, seeds=3,
          fault=None, timing_seeds=1, report=None):
    """The full product sweep; returns a list of :class:`CaseResult`.

    ``seeds`` counts per (program, config, policy); timing configs (the
    slow ones) get ``timing_seeds``.  ``report``, if given, is called with
    each finished :class:`CaseResult` (progress streaming).
    """
    programs = list(programs) if programs else sorted(PROGRAMS)
    configs = list(configs) if configs else list(CONFIGS)
    results = []
    for program_name in programs:
        for config_name in configs:
            depth = seeds if config_name in FAST_CONFIGS else min(
                seeds, timing_seeds)
            for policy_name in policies:
                for seed in range(1, depth + 1):
                    result = run_case(program_name, config_name,
                                      policy_name, seed, fault=fault)
                    results.append(result)
                    if report is not None:
                        report(result)
    return results


def shrink_change_points(failure, fault=None):
    """Greedy minimisation of a failing ``pct`` case's change-points.

    Re-runs the case with explicit change-point subsets, dropping any
    point whose removal keeps the failure, until no single removal does.
    Returns ``(points, final_result)`` — the minimal point list (possibly
    empty: the failure never needed preemption) and the re-run showing
    the failure under exactly those points.
    """
    if failure.policy != "pct":
        raise ValueError("shrinking applies to pct failures only")

    def rerun(points):
        return run_case(failure.program, failure.config, "pct",
                        failure.seed, fault=fault, change_points=points)

    points = sorted({step for step, _cpu in (failure.fired_points or [])})
    result = rerun(points)
    if not result.failed:
        # The failure depends on change-points that never fired (it is
        # schedule-noise-free); nothing to shrink.
        return points, failure
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(points)):
            trial = points[:index] + points[index + 1:]
            attempt = rerun(trial)
            if attempt.failed:
                points, result = trial, attempt
                shrinking = True
                break
    return points, result


def summarize(results):
    """(n_run, n_skipped, failures) over a sweep's results."""
    failures = [r for r in results if r.failed]
    n_skipped = sum(1 for r in results if r.skipped)
    n_run = len(results) - n_skipped
    return n_run, n_skipped, failures
