"""Schedule-exploration fuzzing: sweep seeds × configs × policies.

The driver runs the adversarial programs (:mod:`repro.check.programs`)
on small machines spanning the paper's design space — lazy/eager
detection, write-buffer/undo-log versioning, multi-tracking/associativity
nesting, functional and timing (simple and MSI) memory models — under the
schedule policies of :mod:`repro.sim.schedule`, and checks every run with
the oracles of :mod:`repro.check.oracles`.

Every case is a pure function of its ``(program, config, policy, seed)``
quadruple — the engine is deterministic given the policy's seed — so a
failure is *replayable* by re-running the same quadruple (exposed on the
CLI as ``python -m repro check --replay prog:config:policy:seed``).  For
PCT (``pct``) failures, :func:`shrink_change_points` greedily minimises
the set of priority change-points needed to reproduce the failure, which
usually pins the bug to one or two scheduling decisions.

Fault injection (:mod:`repro.faults`): every case takes an optional
``fault`` axis naming a :class:`~repro.faults.plan.FaultPlan` — one of
the eight recoverable chaos kinds (``spurious-violation``, ...,
``alloc-pressure``), its deliberately mis-recovered ``+broken`` variant,
or the legacy ``drop-requeue`` (which disables the §6b.2
violation-record re-queue, re-introducing the lost-wakeup bug the design
fixed; the ``requeue`` and ``condsync`` programs catch it).  A
fault-injected case is replayable from ``(fault, program, config,
seed)`` — the plan pre-draws all its decisions from that seed — exposed
on the CLI as ``python -m repro chaos --replay
fault:program:config:seed``.  Recoverable kinds additionally run the
fault-quiescence oracle: the hardware must end the run with no open or
half-committed transaction left behind.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ReproError
from repro.common.params import (
    EAGER,
    MULTI_TRACKING,
    UNDO_LOG,
    functional_config,
)
from repro.faults import FAULT_KINDS, FAULT_NAMES, FaultInjector, make_plan
from repro.harness.parallel import CaseSpec, run_campaign
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine
from repro.sim.schedule import PriorityPolicy, make_policy

from repro.obs.profiler import CycleProfiler
from repro.obs.sinks import RingSink
from repro.sim.trace import Tracer

from repro.check.history import HistoryRecorder
from repro.check.oracles import (
    OracleViolation,
    check_cycle_conservation,
    check_fault_quiescence,
    check_lost_wakeups,
    check_serializability,
)
from repro.check.programs import PROGRAMS, make_program
from repro.spec.replay import check_conformance

#: Events kept in each case's trace-on-failure ring (the last K; a
#: failing case ships them home attached to its result).
TRACE_RING = 64

#: The configuration matrix, named so failures replay by name.
CONFIGS = {
    "lazy-wb-assoc": {},
    "lazy-wb-mt": {"nesting_scheme": MULTI_TRACKING},
    "eager-wb": {"detection": EAGER},
    "eager-undo": {"detection": EAGER, "versioning": UNDO_LOG},
    "lazy-timing-simple": {"timing": True},
    "lazy-timing-msi": {"timing": True, "coherence": "msi"},
}

#: Configs cheap enough for every (program, policy, seed) product; the
#: timing models cost ~10x per case and are swept at reduced depth.
FAST_CONFIGS = ("lazy-wb-assoc", "lazy-wb-mt", "eager-wb", "eager-undo")

POLICIES = ("det", "random", "pct")

#: Every fault name a case accepts (chaos kinds, +broken variants,
#: legacy drop-requeue).
FAULTS = FAULT_NAMES

#: The recoverable kinds the chaos matrix must survive cleanly.
CHAOS_FAULTS = FAULT_KINDS


@dataclasses.dataclass
class CaseResult:
    """Outcome of one fuzz case."""

    program: str
    config: str
    policy: str
    seed: int
    skipped: bool = False
    violations: list = dataclasses.field(default_factory=list)
    n_committed: int = 0
    commit_cpus: tuple = ()      # committing CPU per commit, in order
    error: str = None
    fired_points: list = None    # pct: (step, demoted cpu) pairs that fired
    fault: str = None            # fault name, if one was injected
    n_injections: int = 0        # how many times the plan fired
    fired: tuple = ()            # (opportunity, cpu, detail) per injection
    #: Last-K trace ring of a *failing* run (empty on a pass), shipped
    #: back picklable from campaign workers.
    trace: tuple = ()

    @property
    def failed(self):
        return bool(self.violations)

    @property
    def triple(self):
        """The replayable name of this case."""
        return f"{self.program}:{self.config}:{self.policy}:{self.seed}"

    @property
    def chaos_triple(self):
        """The replayable chaos name: ``fault:program:config:seed``."""
        return f"{self.fault}:{self.program}:{self.config}:{self.seed}"

    def __str__(self):
        name = self.chaos_triple if self.fault else self.triple
        if self.skipped:
            return f"{name}: skipped (scenario needs another config)"
        injected = (f", {self.n_injections} injections"
                    if self.fault else "")
        if not self.failed:
            return f"{name}: ok ({self.n_committed} commits{injected})"
        lines = [f"{name}: FAILED ({self.n_committed} commits{injected})"]
        lines += [f"  {violation}" for violation in self.violations]
        if self.fired_points:
            lines.append(f"  pct change-points fired: {self.fired_points}")
        if self.trace:
            lines.append(f"  trace tail ({len(self.trace)} events):")
            lines += [f"    {event}" for event in self.trace]
        return "\n".join(lines)


def build_config(config_name, program):
    overrides = dict(CONFIGS[config_name])
    n_cpus = max(4, program.min_cpus())
    return functional_config(n_cpus=n_cpus, **overrides)


def collect_violations(program, machine, history, error, fault):
    """Final-state verification plus the oracle battery for one finished
    run; shared by :func:`run_case` and the explorer
    (:mod:`repro.check.explore`), so both drivers judge a schedule by
    exactly the same rules.  Returns ``(violations, error)`` — ``error``
    may have been raised by ``program.verify``.
    """
    if error is None:
        try:
            program.verify(machine)
        except ReproError as exc:
            error = exc
    violations = list(check_serializability(history))
    violations += check_lost_wakeups(machine, error, program.waiter_cpus)
    if error is None:
        violations += program.check_final(machine, history)
        if fault is not None:
            violations += check_fault_quiescence(machine, error)
    elif not violations:
        # The run failed in a way no specific oracle classified; surface
        # it rather than letting a crash read as a pass.
        violations.append(OracleViolation(
            "run-failure", f"{type(error).__name__}: {error}"))
    # The strongest oracle last: differential replay against the
    # abstract reference semantics (repro.spec).
    violations += check_conformance(program, machine, history, error,
                                    fault)
    return violations, error


def run_case(program_name, config_name, policy_name, seed,
             fault=None, change_points=None, max_cycles=None):
    """Run one case and return its :class:`CaseResult`.

    Deterministic in its arguments: the seed fixes the program's
    internal randomness, the schedule policy's, and — when ``fault`` is
    given — the fault plan's entire decision stream.  ``max_cycles``
    overrides the program's budget (the broken-fault self-tests use a
    small budget so a deliberate livelock fails fast).
    """
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r}; choose from {FAULTS}")
    program = make_program(program_name, seed=seed)
    config = build_config(config_name, program)
    if not program.supports(config):
        return CaseResult(program_name, config_name, policy_name, seed,
                          skipped=True, fault=fault)
    policy_kwargs = {}
    if change_points is not None:
        policy_kwargs["change_points"] = change_points
    policy = make_policy(policy_name, seed=seed, **policy_kwargs)
    machine = Machine(config, policy=policy)
    injector = None
    if fault is not None:
        # Attach before the recorder so the recorder's commit wrap sits
        # outermost and observes fault-perturbed commits like real ones.
        injector = FaultInjector(make_plan(fault, seed), machine)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    recorder = HistoryRecorder(machine)
    # Observability rides along on every case: the profiler's books are
    # checked by the conservation oracle, and the last-K trace ring is
    # attached to the result if the case fails.  Both attach last (so
    # they sit topmost on the shared seams) and detach first.
    profiler = CycleProfiler(machine)
    tracer = Tracer(machine, sink=RingSink(TRACE_RING, mode="tail"))
    error = None
    try:
        program.setup(machine, runtime, arena)
        machine.run(max_cycles=max_cycles or program.max_cycles)
    except ReproError as exc:
        error = exc
    finally:
        tracer.detach()
        profiler.detach()
        recorder.detach()
        if injector is not None:
            injector.detach()
    history = recorder.history
    violations, error = collect_violations(
        program, machine, history, error, fault)
    violations += check_cycle_conservation(profiler.account())
    return CaseResult(
        program_name, config_name, policy_name, seed,
        violations=violations,
        trace=tuple(tracer.events) if violations else (),
        n_committed=len(history),
        commit_cpus=tuple(r.cpu for r in history.committed),
        error=str(error) if error else None,
        fired_points=(list(policy.fired)
                      if isinstance(policy, PriorityPolicy) else None),
        fault=fault,
        n_injections=injector.n_injections if injector else 0,
        fired=tuple(injector.plan.fired) if injector else (),
    )


def case_spec(program_name, config_name, policy_name, seed, fault=None):
    """The picklable :class:`CaseSpec` for one fuzz/chaos case.

    Carries exactly the replayable quadruple (plus the fault axis), so a
    campaign can be sharded across processes without changing any
    result — each worker re-derives everything from the name.
    """
    name = (f"{fault}:{program_name}:{config_name}:{seed}" if fault
            else f"{program_name}:{config_name}:{policy_name}:{seed}")
    return CaseSpec(
        runner="repro.check.fuzz:run_case", name=name,
        args=(program_name, config_name, policy_name, seed),
        kwargs=((("fault", fault),) if fault is not None else ()))


def case_failure(spec, message):
    """Classify a crashed, hung, or raising case as a ``run-failure``.

    This is the campaign boundary: :func:`run_case` itself only handles
    :class:`ReproError` (anything else is a harness or program bug), and
    here that bug becomes one failed :class:`CaseResult` instead of
    sinking the whole matrix.
    """
    program_name, config_name, policy_name, seed = spec.args
    return CaseResult(
        program_name, config_name, policy_name, seed,
        violations=[OracleViolation("run-failure", message)],
        error=message, fault=dict(spec.kwargs).get("fault"))


def enumerate_sweep(programs=None, configs=None, policies=POLICIES,
                    seeds=3, fault=None, timing_seeds=1):
    """Yield the sweep's :class:`CaseSpec` tuples in canonical order."""
    programs = list(programs) if programs else sorted(PROGRAMS)
    configs = list(configs) if configs else list(CONFIGS)
    for program_name in programs:
        for config_name in configs:
            depth = seeds if config_name in FAST_CONFIGS else min(
                seeds, timing_seeds)
            for policy_name in policies:
                for seed in range(1, depth + 1):
                    yield case_spec(program_name, config_name,
                                    policy_name, seed, fault=fault)


def enumerate_chaos(faults=None, programs=None, configs=None, seeds=2):
    """Yield the chaos matrix's :class:`CaseSpec` tuples in order."""
    faults = list(faults) if faults else list(CHAOS_FAULTS)
    programs = list(programs) if programs else sorted(PROGRAMS)
    configs = list(configs) if configs else list(FAST_CONFIGS)
    for fault in faults:
        for program_name in programs:
            for config_name in configs:
                for seed in range(1, seeds + 1):
                    yield case_spec(program_name, config_name, "det",
                                    seed, fault=fault)


def sweep(programs=None, configs=None, policies=POLICIES, seeds=3,
          fault=None, timing_seeds=1, report=None, jobs=1, timeout=None):
    """The full product sweep; returns a list of :class:`CaseResult`.

    ``seeds`` counts per (program, config, policy); timing configs (the
    slow ones) get ``timing_seeds``.  ``report``, if given, is called with
    each finished :class:`CaseResult` (progress streaming, in canonical
    order).  ``jobs`` fans the campaign out across worker processes —
    every case is a pure function of its name, so the result list is
    identical to the serial one.  ``timeout`` bounds each case in
    seconds; a case that exceeds it (or crashes its worker) yields a
    ``run-failure`` result instead of aborting the campaign.
    """
    return run_campaign(
        enumerate_sweep(programs=programs, configs=configs,
                        policies=policies, seeds=seeds, fault=fault,
                        timing_seeds=timing_seeds),
        jobs=jobs, timeout=timeout, report=report,
        failure_result=case_failure)


def chaos_sweep(faults=None, programs=None, configs=None, seeds=2,
                report=None, jobs=1, timeout=None):
    """The chaos matrix: fault × program × config × seed, det schedule.

    Defaults to the recoverable :data:`CHAOS_FAULTS` over the fast
    configs — the acceptance bar is *zero* oracle violations.  The
    schedule policy is pinned to ``det`` so a chaos case is replayable
    from its ``fault:program:config:seed`` name alone.  ``jobs`` and
    ``timeout`` behave as in :func:`sweep`.
    """
    return run_campaign(
        enumerate_chaos(faults=faults, programs=programs,
                        configs=configs, seeds=seeds),
        jobs=jobs, timeout=timeout, report=report,
        failure_result=case_failure)


def injection_totals(results):
    """Per-fault injection counts over a chaos sweep's results.

    A kind whose total is zero never actually perturbed a run — its
    matrix column proves nothing — so the CLI treats that as a failure.
    """
    totals = {}
    for result in results:
        if result.fault is None or result.skipped:
            continue
        totals[result.fault] = (
            totals.get(result.fault, 0) + result.n_injections)
    return totals


def greedy_minimize(points, rerun, fallback):
    """Greedy drop-one minimisation of a failing schedule's decisions.

    The one shrinking loop both failure flavours go through: re-run with
    subsets of ``points``, drop any point whose removal keeps the
    failure, until no single removal does.  ``rerun(points)`` must
    return a result with a ``failed`` property.  Returns ``(points,
    final_result)``; if even the full point set no longer reproduces the
    failure, returns ``(points, fallback)`` untouched.
    """
    points = list(points)
    result = rerun(points)
    if not result.failed:
        # The failure depends on decisions these points don't capture
        # (e.g. pct change-points that never fired); nothing to shrink.
        return points, fallback
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(points)):
            trial = points[:index] + points[index + 1:]
            attempt = rerun(trial)
            if attempt.failed:
                points, result = trial, attempt
                shrinking = True
                break
    return points, result


def shrink_change_points(failure, fault=None):
    """Greedy minimisation of a failing case's scheduling decisions.

    Accepts either a failing ``pct`` :class:`CaseResult` — minimised
    over the priority change-points that fired — or a failing explorer
    :class:`~repro.check.explore.ScheduleVerdict` — minimised over its
    forced deviations — and routes both through
    :func:`greedy_minimize`, so fuzz and explore counterexamples shrink
    on one code path.  Returns ``(points, final_result)``: the minimal
    decision list and the re-run showing the failure under exactly
    those decisions.
    """
    if hasattr(failure, "deviations"):
        # Explorer counterexample: points are (step, cpu) deviations.
        from repro.check.explore import replay

        def rerun(points):
            return replay(failure.program, failure.config, points,
                          fault=failure.fault if fault is None else fault,
                          seed=failure.seed)

        return greedy_minimize(list(failure.deviations), rerun, failure)

    if failure.policy != "pct":
        raise ValueError("shrinking applies to pct failures only")

    def rerun(points):
        return run_case(failure.program, failure.config, "pct",
                        failure.seed, fault=fault, change_points=points)

    points = sorted({step for step, _cpu in (failure.fired_points or [])})
    return greedy_minimize(points, rerun, failure)


def summarize(results):
    """(n_run, n_skipped, failures) over a sweep's results."""
    failures = [r for r in results if r.failed]
    n_skipped = sum(1 for r in results if r.skipped)
    n_run = len(results) - n_skipped
    return n_run, n_skipped, failures
