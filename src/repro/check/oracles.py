"""Correctness oracles over recorded histories and finished machines.

The paper's architectural claim is that two-phase commit, software
handlers, and closed/open nesting suffice for *correct* concurrency.
These oracles state what "correct" means, checkable on any schedule:

* **Conflict serializability** (:func:`check_serializability`): the
  precedence graph over committed transactions — ordered by write→read,
  read→write (anti) and write→write dependencies on the hardware's own
  tracking units — must be acyclic.  Because the recorder registers
  non-transactional accesses as singleton committed transactions, this
  single check also covers **strong atomicity**: a torn or interleaved
  non-transactional access shows up as a cycle like any other.
  Transactions that deliberately opted out of isolation (RESUME-d
  violations, ``release``) are waived — see
  :mod:`repro.check.history`.
* **No lost wakeups** (:func:`check_lost_wakeups`): a run must not end —
  by deadlock or by cycle overrun — with a parked thread that software
  promised to wake (DESIGN.md §6b: the violation-record re-queue and
  register-restore rules exist precisely to keep this).
* **Compensation counting** (:func:`check_exact_count`): open-nested
  effects with compensation must land exactly once per committed
  transaction and at most once overall (DESIGN.md §6b.6); the adversarial
  programs feed their counters through this helper.
* **Fault quiescence** (:func:`check_fault_quiescence`): a run that
  absorbed injected faults (:mod:`repro.faults`) must still end with the
  hardware quiescent — no transaction open, no stale validated level, no
  serial owner.  Leftover speculative state means a recovery path lost
  track of a transaction even though the program's invariants happened to
  survive.
* **Cycle conservation** (:func:`check_cycle_conservation`): the
  :class:`~repro.obs.profiler.CycleProfiler`'s per-CPU buckets
  (committed / wasted / handler / overhead / idle) must be non-negative
  and sum to exactly ``cycles × cpus``.  Idle is measured from real
  scheduling gaps, not computed as a residual, so any cycle the books
  lose — a rollback that failed to reclassify speculative work, an op
  charged twice — surfaces as an imbalance.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import DeadlockError, ReproError, SimulationError


@dataclasses.dataclass
class OracleViolation:
    """One oracle failure, with enough detail to reason about it."""

    oracle: str          # serializability | lost-wakeup | compensation |
    #                      invariant | run-failure
    detail: str
    cycle: list = None   # txids, for serializability violations

    def __str__(self):
        extra = f" cycle={self.cycle}" if self.cycle else ""
        return f"[{self.oracle}] {self.detail}{extra}"


# ----------------------------------------------------------------------
# Conflict serializability
# ----------------------------------------------------------------------

def precedence_graph(records):
    """Adjacency (txid -> set of txids) of the conflict-precedence graph.

    Edge ``A -> B`` means A must precede B in any equivalent serial
    order:

    * writer committed before a reader first read the unit: ``W -> R``;
    * reader's last read preceded the writer's commit (the read saw the
      pre-state): ``R -> W`` (anti-dependency);
    * the writer's commit landed *inside* the reader's read window (the
      reader observed both pre- and post-state): both edges — an
      inconsistent read, guaranteed to surface as a 2-cycle;
    * two writers: earlier commit -> later commit.

    Read seqs and commit seqs are drawn from one global monotone counter,
    so the comparisons are total and unambiguous.
    """
    readers = {}   # unit -> [(first, last, txid)]
    writers = {}   # unit -> [(commit_seq, txid)]
    for record in records:
        for unit, (first, last) in record.reads.items():
            readers.setdefault(unit, []).append((first, last, record.txid))
        for unit in record.writes:
            writers.setdefault(unit, []).append(
                (record.commit_seq, record.txid))
    edges = {record.txid: set() for record in records}
    for unit, unit_writers in writers.items():
        unit_writers.sort()
        for i, (_, earlier) in enumerate(unit_writers):
            for _, later in unit_writers[i + 1:]:
                if earlier != later:
                    edges[earlier].add(later)
        for first, last, reader in readers.get(unit, ()):
            for commit_seq, writer in unit_writers:
                if writer == reader:
                    continue   # a transaction may read its own write
                if commit_seq < first:
                    edges[writer].add(reader)
                elif commit_seq > last:
                    edges[reader].add(writer)
                else:
                    edges[writer].add(reader)
                    edges[reader].add(writer)
    return edges


def find_cycle(edges):
    """A cycle in ``edges`` as a node list (closed: first == last), or
    None.  Iterative DFS with an explicit stack; node order is made
    deterministic by sorting."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    parent = {}
    for root in sorted(edges):
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(edges[root])))]
        color[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in color:
                    continue
                if color[child] == WHITE:
                    color[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(sorted(edges[child]))))
                    advanced = True
                    break
                if color[child] == GREY:
                    cycle = [child, node]
                    walk = node
                    while walk != child:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def check_serializability(history, waive=True):
    """Zero or one :class:`OracleViolation` for ``history``."""
    records = [r for r in history.committed
               if not (waive and r.waived)]
    edges = precedence_graph(records)
    cycle = find_cycle(edges)
    if cycle is None:
        return []
    by_txid = {r.txid: r for r in records}
    chain = " -> ".join(str(by_txid[txid]) for txid in cycle)
    return [OracleViolation(
        oracle="serializability",
        detail=f"precedence cycle over {len(records)} committed "
               f"transactions: {chain}",
        cycle=cycle)]


# ----------------------------------------------------------------------
# Lost wakeups
# ----------------------------------------------------------------------

def check_lost_wakeups(machine, error, waiter_cpus=None):
    """Flag a run that ended with a parked thread nobody will wake.

    ``error`` is the exception (if any) that ended the run.  A
    :class:`DeadlockError`, or a cycle-overrun :class:`SimulationError`
    (daemon threads keep a machine "runnable" forever while a waiter
    sleeps), with a non-daemon CPU still WAITING is a lost wakeup.  A
    workload ``verify`` failure that names lost/duplicated wakeups (the
    condsync invariant) counts too.  ``waiter_cpus`` optionally restricts
    which CPUs the program considers legitimate parkers.
    """
    from repro.isa.context import WAITING

    if error is None:
        return []
    if isinstance(error, ReproError) and "wakeup" in str(error):
        return [OracleViolation("lost-wakeup", str(error))]
    if not isinstance(error, (DeadlockError, SimulationError)):
        return []
    stuck = [
        cpu.cpu_id for cpu in machine.cpus
        if cpu.frames and cpu.state == WAITING and not cpu.daemon
        and (waiter_cpus is None or cpu.cpu_id in waiter_cpus)
    ]
    if not stuck:
        return []
    return [OracleViolation(
        oracle="lost-wakeup",
        detail=f"cpu(s) {stuck} parked with no wakeup in flight; run "
               f"ended with: {error}")]


# ----------------------------------------------------------------------
# Compensation / invariant helpers
# ----------------------------------------------------------------------

def check_exact_count(name, actual, expected, at_most=False):
    """Exactly-once (or, with ``at_most=True``, at-most-once)
    compensation accounting: ``actual`` open-nested net effects against
    ``expected`` committed transactions."""
    ok = actual <= expected if at_most else actual == expected
    if ok:
        return []
    relation = "<=" if at_most else "=="
    return [OracleViolation(
        oracle="compensation",
        detail=f"{name}: net open-nested effects {actual}, expected "
               f"{relation} {expected} (compensation ran the wrong "
               f"number of times)")]


def check_invariant(name, ok, detail=""):
    """Generic program invariant as an oracle result."""
    if ok:
        return []
    return [OracleViolation("invariant", f"{name}: {detail}")]


# ----------------------------------------------------------------------
# Cycle conservation
# ----------------------------------------------------------------------

def check_cycle_conservation(account):
    """Every simulated cycle must land in exactly one profiler bucket.

    ``account`` is a :class:`~repro.obs.profiler.CycleAccount` (or None,
    when no profiler ran).  Zero or more :class:`OracleViolation`\\ s.
    """
    if account is None:
        return []
    return [OracleViolation("cycle-conservation", problem)
            for problem in account.problems()]


# ----------------------------------------------------------------------
# Fault quiescence
# ----------------------------------------------------------------------

def check_fault_quiescence(machine, error=None):
    """After a fault-injected run, the hardware must be quiescent.

    Applies only to runs that *finished* (``error is None`` — a failed
    run is already reported by the run-failure path).  Daemon CPUs are
    exempt: the condsync scheduler holds its watch transaction open for
    the machine's whole life by design.
    """
    if error is not None:
        return []
    htm = machine.htm
    violations = []
    daemons = {cpu.cpu_id for cpu in machine.cpus if cpu.daemon}
    for state in htm.states:
        if state.cpu_id in daemons:
            continue
        if state.in_tx():
            violations.append(OracleViolation(
                "quiescence",
                f"cpu {state.cpu_id} ended the run with an open "
                f"transaction at depth {state.depth()}"))
    stale = sorted(
        (cpu_id, level) for cpu_id, level in htm.validated
        if cpu_id not in daemons)
    if stale:
        violations.append(OracleViolation(
            "quiescence",
            f"stale validated level(s) {stale} after the run "
            f"(a commit never completed its second phase)"))
    if htm.serial_owner is not None and htm.serial_owner not in daemons:
        violations.append(OracleViolation(
            "quiescence",
            f"cpu {htm.serial_owner} still owns serial mode"))
    return violations
