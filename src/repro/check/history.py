"""Transactional histories and the recorder that builds them.

A *history* is the list of transactions a run committed, each with the
tracking units it read and wrote (at the hardware's own conflict
granularity) and a global commit sequence number.  The serializability
oracle (:mod:`repro.check.oracles`) checks the precedence graph over such
a history; this module is only concerned with building it faithfully.

:class:`HistoryRecorder` attaches to a live
:class:`~repro.sim.engine.Machine` by wrapping the same well-defined
seams :class:`~repro.sim.trace.Tracer` uses (``HtmSystem.begin / load /
store / commit / rollback_to / abandon_all`` and the engine's
dispatcher-outcome application).  Recording rules, matching the paper's
semantics:

* Every hardware nesting level gets a frame.  A **closed-nested** commit
  merges the child's read/write sets (and read-time intervals) into its
  parent: the child is not an isolation unit of its own.
* An **open-nested** commit publishes a record of its own and leaves the
  parent's footprint untouched (§4.5 — the parent is *not* responsible
  for the child's effects, which is the whole point of open nesting).
* A **non-transactional store** on a lazy machine is a one-word commit
  (strong atomicity), so it is recorded as a singleton committed
  transaction; likewise a non-transactional load is a singleton reader.
  This folds strong-atomicity checking into plain serializability over
  the union of transactional and non-transactional accesses.
* Rolled-back levels drop out entirely (their restarts get fresh txids).

Two waivers keep the oracle sound on intentionally non-serializable
software: a frame whose violation was answered with RESUME (the condsync
scheduler ignores conflicts by design, §5) and a frame that used the
``release`` instruction (§4.7 deliberately forfeits tracking) are marked
``waived`` and excluded from the precedence graph.
"""

from __future__ import annotations

import dataclasses

from repro.htm.conflict import PROCEED
from repro.isa.dispatch import HandlerOutcome


@dataclasses.dataclass
class TxRecord:
    """One transaction (or non-transactional singleton access)."""

    txid: int
    cpu: int
    level: int
    open: bool
    begin_cycle: int
    #: unit -> [first read seq, last read seq]
    reads: dict = dataclasses.field(default_factory=dict)
    #: units written
    writes: set = dataclasses.field(default_factory=set)
    status: str = "active"           # active | committed | aborted
    kind: str = None                 # outer | open | nontx (when committed)
    commit_seq: int = None
    commit_cycle: int = None
    #: A violation was answered with RESUME while this frame was live:
    #: the software chose to ignore a conflict, so serializability is not
    #: promised for this transaction (condsync scheduler, §5).
    resumed: bool = False
    #: The frame dropped read-set entries via ``release`` (§4.7).
    released: bool = False

    @property
    def waived(self):
        """Excluded from the serializability check by design."""
        return self.resumed or self.released

    def note_read(self, unit, seq):
        span = self.reads.get(unit)
        if span is None:
            self.reads[unit] = [seq, seq]
        else:
            span[1] = seq

    def absorb(self, child):
        """Closed-nested commit: fold ``child``'s footprint into ours."""
        for unit, (first, last) in child.reads.items():
            span = self.reads.get(unit)
            if span is None:
                self.reads[unit] = [first, last]
            else:
                span[0] = min(span[0], first)
                span[1] = max(span[1], last)
        self.writes |= child.writes
        self.resumed |= child.resumed
        self.released |= child.released

    def __str__(self):
        tag = self.kind or self.status
        flags = "".join(
            flag for flag, on in (("R", self.resumed), ("E", self.released))
            if on)
        return (f"tx{self.txid}@cpu{self.cpu} {tag}"
                f"{'[' + flags + ']' if flags else ''} "
                f"r={sorted(self.reads)} w={sorted(self.writes)} "
                f"seq={self.commit_seq}")


class History:
    """The committed (and, for diagnostics, aborted) transactions of one
    run, in commit order."""

    def __init__(self):
        self.committed = []
        self.aborted = []

    def commit_order(self):
        return [record.txid for record in self.committed]

    def by_cpu(self, cpu_id):
        return [r for r in self.committed if r.cpu == cpu_id]

    def of_kind(self, kind):
        return [r for r in self.committed if r.kind == kind]

    def signature(self):
        """Hashable fingerprint of the committed history; two runs with
        the same policy and seed must produce equal signatures."""
        return tuple(
            (r.cpu, r.kind, r.commit_seq,
             tuple(sorted((u, f, l) for u, (f, l) in r.reads.items())),
             tuple(sorted(r.writes)))
            for r in self.committed)

    def __len__(self):
        return len(self.committed)


class HistoryRecorder:
    """Builds a :class:`History` from a live machine.

    Attach before the workload's ``setup`` populates memory-writing
    threads; detach (or use as a context manager) before inspecting.
    """

    def __init__(self, machine, record_nontx=True):
        self.machine = machine
        self.history = History()
        self.record_nontx = record_nontx
        #: Per CPU, the stack of live frames, parallel to
        #: ``htm.states[cpu].levels``.
        self._frames = [[] for _ in machine.cpus]
        self._seq = 0
        self._saved = {}
        self._attach()

    # ------------------------------------------------------------------

    def _next_seq(self):
        self._seq += 1
        return self._seq

    def _singleton(self, cpu_id, unit, is_write):
        """A non-transactional access as a one-access committed tx."""
        seq = self._next_seq()
        record = TxRecord(
            txid=-seq, cpu=cpu_id, level=0, open=False,
            begin_cycle=self.machine.now, status="committed", kind="nontx",
            commit_seq=seq, commit_cycle=self.machine.now)
        if is_write:
            record.writes.add(unit)
        else:
            record.reads[unit] = [seq, seq]
        self.history.committed.append(record)

    def _push_frame(self, cpu_id, level, open_):
        state = self.machine.htm.states[cpu_id]
        self._frames[cpu_id].append(TxRecord(
            txid=state.levels[-1].txid, cpu=cpu_id, level=level,
            open=open_, begin_cycle=self.machine.now))

    def _abort_frame(self, frame):
        frame.status = "aborted"
        self.history.aborted.append(frame)

    # ------------------------------------------------------------------

    def _attach(self):
        machine = self.machine
        htm = machine.htm

        self._saved["begin"] = htm.begin

        def begin(cpu_id, open_, now, _orig=htm.begin):
            state = htm.states[cpu_id]
            pre_depth = state.depth()
            level = _orig(cpu_id, open_, now)
            if state.depth() == pre_depth + 1:
                # A real new level (not subsumed by flattening).
                self._push_frame(cpu_id, level, open_)
            return level

        htm.begin = begin

        self._saved["load"] = htm.load

        def load(cpu_id, addr, _orig=htm.load):
            action, value = _orig(cpu_id, addr)
            if action == PROCEED:
                unit = htm.states[cpu_id].rwsets.unit_of(addr)
                frames = self._frames[cpu_id]
                if frames:
                    frames[-1].note_read(unit, self._next_seq())
                elif self.record_nontx:
                    self._singleton(cpu_id, unit, is_write=False)
            return action, value

        htm.load = load

        self._saved["store"] = htm.store

        def store(cpu_id, addr, value, _orig=htm.store):
            action = _orig(cpu_id, addr, value)
            if action == PROCEED:
                unit = htm.states[cpu_id].rwsets.unit_of(addr)
                frames = self._frames[cpu_id]
                if frames:
                    self._next_seq()
                    frames[-1].writes.add(unit)
                elif self.record_nontx:
                    self._singleton(cpu_id, unit, is_write=True)
            return action

        htm.store = store

        self._saved["release"] = htm.release

        def release(cpu_id, addr, _orig=htm.release):
            released = _orig(cpu_id, addr)
            frames = self._frames[cpu_id]
            if released and frames:
                frames[-1].released = True
            return released

        htm.release = release

        self._saved["commit"] = htm.commit

        def commit(cpu_id, _orig=htm.commit):
            result = _orig(cpu_id)
            if result.kind == "flattened":
                return result
            frames = self._frames[cpu_id]
            frame = frames.pop()
            if result.kind == "closed":
                frames[-1].absorb(frame)
            else:
                frame.status = "committed"
                frame.kind = result.kind
                frame.commit_seq = self._next_seq()
                frame.commit_cycle = machine.now
                self.history.committed.append(frame)
            return result

        htm.commit = commit

        self._saved["rollback_to"] = htm.rollback_to

        def rollback_to(cpu_id, target_level, now=0, _orig=htm.rollback_to):
            work = _orig(cpu_id, target_level, now)
            frames = self._frames[cpu_id]
            while len(frames) >= target_level:
                self._abort_frame(frames.pop())
            # The hardware restarted the target as a fresh transaction.
            state = htm.states[cpu_id]
            self._push_frame(cpu_id, target_level,
                             state.levels[-1].open)
            return work

        htm.rollback_to = rollback_to

        self._saved["abandon_all"] = htm.abandon_all

        def abandon_all(cpu_id, _orig=htm.abandon_all):
            work = _orig(cpu_id)
            frames = self._frames[cpu_id]
            while frames:
                self._abort_frame(frames.pop())
            return work

        htm.abandon_all = abandon_all

        self._saved["apply_outcome"] = machine._apply_outcome

        def apply_outcome(cpu, outcome, _orig=machine._apply_outcome):
            if (isinstance(outcome, HandlerOutcome)
                    and outcome.kind == "resume"):
                # The software chose to keep running despite a conflict:
                # every live frame of this CPU loses its serializability
                # promise (the condsync scheduler's RESUME, §5).
                for frame in self._frames[cpu.cpu_id]:
                    frame.resumed = True
            return _orig(cpu, outcome)

        machine._apply_outcome = apply_outcome

    def detach(self):
        """Restore the machine's unrecorded seams."""
        if not self._saved:
            return
        htm = self.machine.htm
        htm.begin = self._saved["begin"]
        htm.load = self._saved["load"]
        htm.store = self._saved["store"]
        htm.release = self._saved["release"]
        htm.commit = self._saved["commit"]
        htm.rollback_to = self._saved["rollback_to"]
        htm.abandon_all = self._saved["abandon_all"]
        self.machine._apply_outcome = self._saved["apply_outcome"]
        self._saved = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False
