"""Correctness checking: histories, oracles, adversarial programs, fuzz.

See ``docs/checking.md``.  Entry points:

* :class:`~repro.check.history.HistoryRecorder` — record a run's
  transactional history from a live machine.
* :func:`~repro.check.oracles.check_serializability` /
  :func:`~repro.check.oracles.check_lost_wakeups` — the oracles.
* :func:`~repro.check.fuzz.run_case` / :func:`~repro.check.fuzz.sweep` —
  the schedule-exploration fuzzer (CLI: ``python -m repro check``).
"""

from repro.check.history import History, HistoryRecorder, TxRecord
from repro.check.oracles import (
    OracleViolation,
    check_exact_count,
    check_invariant,
    check_lost_wakeups,
    check_serializability,
    find_cycle,
    precedence_graph,
)
from repro.check.programs import PROGRAMS, CheckProgram, make_program
from repro.check.fuzz import (
    CONFIGS,
    CaseResult,
    chaos_sweep,
    run_case,
    shrink_change_points,
    summarize,
    sweep,
)

__all__ = [
    "CONFIGS",
    "CaseResult",
    "CheckProgram",
    "History",
    "HistoryRecorder",
    "OracleViolation",
    "PROGRAMS",
    "TxRecord",
    "check_exact_count",
    "check_invariant",
    "check_lost_wakeups",
    "chaos_sweep",
    "check_serializability",
    "find_cycle",
    "make_program",
    "precedence_graph",
    "run_case",
    "shrink_change_points",
    "summarize",
    "sweep",
]
