"""Command-line interface: regenerate the paper's evaluation from a shell.

::

    python -m repro figure5              # Figure 5, all nine bars
    python -m repro io                   # §7.2 transactional-I/O scaling
    python -m repro condsync             # conditional-scheduling scaling
    python -m repro overheads            # §7 instruction-count table
    python -m repro isa                  # Tables 1 and 2 inventories
    python -m repro profile mp3d         # run one workload, print profile
    python -m repro check                # schedule fuzzer + oracles
    python -m repro all                  # the whole evaluation

Everything prints simulated-cycle results; all runs are deterministic.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.params import paper_config
from repro.harness.bench import cmd_bench
from repro.harness.experiment import compare_nesting, scaling_curve
from repro.harness.profile import format_profiles, profile_machine
from repro.harness.report import (
    format_bar_chart,
    format_figure5,
    format_scaling,
    format_table,
)
from repro.workloads import (
    CondSyncWorkload,
    DetectionStressKernel,
    IoLogWorkload,
    JbbWorkload,
    SCIENTIFIC_KERNELS,
)

#: Workloads addressable from the command line.
WORKLOADS = {kernel.name: kernel for kernel in SCIENTIFIC_KERNELS}
WORKLOADS["jbb-closed"] = lambda **kw: JbbWorkload(variant="closed", **kw)
WORKLOADS["jbb-open"] = lambda **kw: JbbWorkload(variant="open", **kw)
WORKLOADS["iolog"] = IoLogWorkload
WORKLOADS["detstress"] = DetectionStressKernel


def cmd_figure5(args):
    comparisons = []
    for kernel in SCIENTIFIC_KERNELS:
        comparisons.append(compare_nesting(
            lambda n, cls=kernel: cls(n_threads=n, scale=args.scale),
            n_cpus=args.cpus))
    for variant in ("closed", "open"):
        comparisons.append(compare_nesting(
            lambda n, v=variant: JbbWorkload(
                n_threads=n, variant=v, scale=args.scale),
            n_cpus=args.cpus))
    print(format_figure5(comparisons))
    print()
    print(format_bar_chart(
        [(c.name, c.improvement) for c in comparisons],
        title="bar heights (nesting vs flattening):"))
    json_path = getattr(args, "json", "")
    if json_path:
        from repro.harness.export import comparison_to_dict, dump_json

        dump_json([comparison_to_dict(c) for c in comparisons], json_path)
        print(f"wrote {json_path}")
    return 0


def cmd_io(args):
    counts = [n for n in (1, 2, 4, 8, 16) if n <= args.max_threads]
    points = scaling_curve(
        lambda n: IoLogWorkload(n_threads=n, scale=args.scale),
        counts=counts,
        config_factory=lambda n: paper_config(n_cpus=n),
        items_of=lambda w: w.n_threads * w._records,
    )
    print(format_scaling(points, "transactional I/O: log records vs CPUs",
                         item_label="records"))
    return 0


def cmd_condsync(args):
    counts = [p for p in (1, 2, 4, 7) if p <= args.max_pairs]
    points = scaling_curve(
        lambda pairs: CondSyncWorkload(n_pairs=pairs, scale=args.scale),
        counts=counts,
        config_factory=lambda pairs: paper_config(n_cpus=2 * pairs + 1),
        items_of=lambda w: w.n_pairs * w._items,
        max_cycles=100_000_000,
    )
    print(format_scaling(
        points, "conditional scheduling: items vs producer/consumer pairs",
        item_label="items"))
    return 0


def cmd_overheads(args):
    from repro.harness.inventory import (
        PUBLISHED_OVERHEADS,
        measure_overheads,
    )

    measured = measure_overheads()
    rows = [(event, PUBLISHED_OVERHEADS[event], measured[event])
            for event in PUBLISHED_OVERHEADS]
    print(format_table(["event", "paper", "measured"], rows,
                       title="instructions per transactional event"))
    return 0 if measured == PUBLISHED_OVERHEADS else 1


def cmd_isa(args):
    from repro.harness.inventory import (
        TABLE1,
        TABLE2,
        exercise_every_instruction,
    )

    print(format_table(
        ["state", "type", "description"],
        [(name, storage, desc) for name, storage, desc in TABLE1],
        title="Table 1: architectural state"))
    print()
    _, executed = exercise_every_instruction()
    print(format_table(
        ["instruction", "exercised", "description"],
        [(name, "yes" if name in executed else "no", desc)
         for name, _, desc in TABLE2],
        title="Table 2: instructions"))
    return 0


def cmd_profile(args):
    factory = WORKLOADS[args.workload]
    profiles = []
    for label, flatten in (("nested", False), ("flat", True)):
        if args.flatten_only and not flatten:
            continue
        workload = factory(n_threads=args.cpus, scale=args.scale)
        machine = workload.run(
            paper_config(n_cpus=max(args.cpus, workload.min_cpus()),
                         flatten=flatten, **workload.config_overrides))
        profiles.append((f"{args.workload} [{label}]",
                         profile_machine(machine)))
    print(format_profiles(profiles,
                          title=f"{args.workload} on {args.cpus} CPUs"))
    return 0


def cmd_trace(args):
    from repro.check.fuzz import build_config
    from repro.check.programs import PROGRAMS, make_program
    from repro.harness.report import format_cycle_accounting
    from repro.mem.layout import SharedArena
    from repro.obs import (
        ChromeTraceSink,
        CycleProfiler,
        JsonlSink,
        RingSink,
        TeeSink,
        account_metrics,
        machine_metrics,
    )
    from repro.runtime.core import Runtime
    from repro.sim.engine import Machine
    from repro.sim.trace import ALL_KINDS, Tracer

    kinds = (frozenset(args.kinds.split(",")) if args.kinds
             else ALL_KINDS)
    if args.target in WORKLOADS:
        workload = WORKLOADS[args.target](
            n_threads=args.cpus, scale=args.scale)
        config = paper_config(n_cpus=max(args.cpus, workload.min_cpus()),
                              **workload.config_overrides)
    else:
        workload = make_program(args.target, seed=args.seed)
        config = build_config(args.config, workload)

    sinks = [RingSink(args.limit, mode="head")]
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    if args.chrome:
        sinks.append(ChromeTraceSink(args.chrome))
    sink = sinks[0] if len(sinks) == 1 else TeeSink(*sinks)

    machine = Machine(config)
    runtime = Runtime(machine)
    arena = SharedArena(machine)
    profiler = CycleProfiler(machine)
    tracer = Tracer(machine, kinds=kinds, sink=sink)
    error = None
    try:
        workload.setup(machine, runtime, arena)
        machine.run(max_cycles=2_000_000_000)
        workload.verify(machine)
    except Exception as exc:
        error = exc
    finally:
        tracer.detach()
        profiler.detach()
        sink.close()
    account = profiler.account()

    print(tracer.format())
    print(f"... {len(tracer.events)} events shown "
          f"(ring limit {args.limit}, {tracer.dropped} dropped); "
          f"kinds: {sorted(kinds)}")
    if args.jsonl:
        print(f"wrote JSONL event stream to {args.jsonl}")
    if args.chrome:
        print(f"wrote Chrome trace to {args.chrome} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    print()
    print(format_cycle_accounting(
        account, title=f"cycle accounting ({args.target})"))
    if args.metrics:
        registry = machine_metrics(machine)
        account_metrics(account, registry)
        registry.to_json(args.metrics)
        print(f"wrote metrics JSON to {args.metrics}")
    if error is not None:
        print(f"trace: run FAILED: {error}", file=sys.stderr)
        return 1
    return 0 if account.balanced else 1


def cmd_check(args):
    from repro.check.fuzz import (
        CONFIGS,
        POLICIES,
        run_case,
        shrink_change_points,
        summarize,
        sweep,
    )
    from repro.check.programs import PROGRAMS

    fault = args.inject_fault or None

    if args.replay:
        try:
            program, config, policy, seed = args.replay.split(":")
            seed = int(seed)
        except ValueError:
            print("--replay wants program:config:policy:seed",
                  file=sys.stderr)
            return 2
        result = run_case(program, config, policy, seed, fault=fault)
        print(result)
        return 1 if result.failed else 0

    def pick(raw, universe, what):
        if not raw:
            return None
        names = raw.split(",")
        unknown = [n for n in names if n not in universe]
        if unknown:
            raise SystemExit(
                f"unknown {what} {unknown}; choose from {sorted(universe)}")
        return names

    results = sweep(
        programs=pick(args.programs, PROGRAMS, "program"),
        configs=pick(args.configs, CONFIGS, "config"),
        policies=pick(args.policies, set(POLICIES), "policy") or POLICIES,
        seeds=args.seeds,
        fault=fault,
        report=(print if args.verbose else None),
        jobs=args.jobs,
        timeout=args.timeout or None,
    )
    n_run, n_skipped, failures = summarize(results)
    print(f"check: {n_run} cases run, {n_skipped} skipped, "
          f"{len(failures)} failed"
          + (f" (fault injected: {fault})" if fault else ""))
    for failure in failures:
        print()
        print(failure)
        if failure.policy == "pct" and failure.fired_points:
            points, _ = shrink_change_points(failure, fault=fault)
            print(f"  shrunk to change-points {points}; replay with:")
        else:
            print("  replay with:")
        print(f"    python -m repro check --replay {failure.triple}"
              + (f" --inject-fault {fault}" if fault else ""))
    return 1 if failures else 0


def cmd_chaos(args):
    from repro.check.fuzz import (
        CHAOS_FAULTS,
        CONFIGS,
        FAULTS,
        chaos_sweep,
        injection_totals,
        run_case,
        summarize,
    )
    from repro.check.programs import PROGRAMS

    if args.replay:
        try:
            fault, program, config, seed = args.replay.split(":")
            seed = int(seed)
        except ValueError:
            print("--replay wants fault:program:config:seed",
                  file=sys.stderr)
            return 2
        result = run_case(program, config, "det", seed, fault=fault)
        print(result)
        return 1 if result.failed else 0

    def pick(raw, universe, what):
        if not raw:
            return None
        names = raw.split(",")
        unknown = [n for n in names if n not in universe]
        if unknown:
            raise SystemExit(
                f"unknown {what} {unknown}; choose from {sorted(universe)}")
        return names

    faults = pick(args.faults, set(FAULTS), "fault")
    results = chaos_sweep(
        faults=faults,
        programs=pick(args.programs, PROGRAMS, "program"),
        configs=pick(args.configs, CONFIGS, "config"),
        seeds=args.seeds,
        report=(print if args.verbose else None),
        jobs=args.jobs,
        timeout=args.timeout or None,
    )
    n_run, n_skipped, failures = summarize(results)
    totals = injection_totals(results)
    print(f"chaos: {n_run} cases run, {n_skipped} skipped, "
          f"{len(failures)} failed")
    unreachable = []
    for fault in faults or CHAOS_FAULTS:
        count = totals.get(fault, 0)
        print(f"  {fault}: {count} injections")
        if not count:
            unreachable.append(fault)
    for failure in failures:
        print()
        print(failure)
        print("  replay with:")
        print(f"    python -m repro chaos --replay {failure.chaos_triple}")
    if unreachable:
        print(f"chaos: fault kinds never fired: {unreachable}",
              file=sys.stderr)
    return 1 if failures or unreachable else 0


def cmd_explore(args):
    from repro.check.explore import (
        deviations_to_str,
        explore,
        parse_deviations,
        replay,
    )
    from repro.check.fuzz import CONFIGS, shrink_change_points
    from repro.check.programs import LITMUS_PROGRAMS, PROGRAMS

    fault = args.inject_fault or None

    if args.replay:
        parts = args.replay.split(":")
        if len(parts) == 4:
            fault, program, config, devstr = parts
        elif len(parts) == 3:
            program, config, devstr = parts
        else:
            print("--replay wants [fault:]program:config:deviations "
                  "(deviations like 3@1,7@0, or det)", file=sys.stderr)
            return 2
        verdict = replay(program, config, parse_deviations(devstr),
                         fault=fault, seed=args.seed)
        print(verdict)
        return 1 if verdict.failed else 0

    def pick(raw, universe, what):
        names = raw.split(",")
        unknown = [n for n in names if n not in universe]
        if unknown:
            raise SystemExit(
                f"unknown {what} {unknown}; choose from {sorted(universe)}")
        return names

    programs = (pick(args.programs, PROGRAMS, "program")
                if args.programs else list(LITMUS_PROGRAMS))
    configs = (pick(args.configs, CONFIGS, "config")
               if args.configs else ["lazy-wb-assoc"])
    bound = None if args.preemption_bound < 0 else args.preemption_bound
    if args.min_checkpoint_speedup and args.no_checkpoint:
        raise SystemExit(
            "--min-checkpoint-speedup needs checkpointing on; "
            "drop --no-checkpoint")

    pool = None
    if args.jobs > 1:
        from repro.harness.parallel import WorkerPool
        pool = WorkerPool(args.jobs)

    def campaign(checkpoint):
        """One full sweep; returns (reports, wall-clock seconds)."""
        reports = []
        start = time.perf_counter()
        for program in programs:
            for config in configs:
                reports.append(explore(
                    program, config, fault=fault, seed=args.seed,
                    preemption_bound=bound,
                    max_depth=args.max_depth or None,
                    prune=not args.no_prune, jobs=args.jobs,
                    max_schedules=args.max_schedules or None,
                    timeout=args.timeout or None,
                    report=(print if args.verbose else None),
                    pool=pool, checkpoint=checkpoint))
        return reports, time.perf_counter() - start

    failures = []
    truncated = False
    gate_failed = False
    try:
        results, elapsed = campaign(not args.no_checkpoint)
        for result in results:
            print("explore:", result.summary())
            if args.verbose and result.checkpoint_stats:
                stats = result.checkpoint_stats
                print("  checkpoint: "
                      + ", ".join(f"{k}={stats[k]}" for k in sorted(stats)))
            failures.extend(result.failures)
            truncated |= result.truncated
        if args.min_checkpoint_speedup:
            # Differential gate: the stateless control must agree
            # verdict-for-verdict, and checkpointing must pay its way.
            control, control_elapsed = campaign(False)
            mismatches = _diff_explore_reports(results, control)
            for line in mismatches:
                print(f"explore: DIFFERENTIAL MISMATCH {line}",
                      file=sys.stderr)
            speedup = control_elapsed / elapsed if elapsed else float("inf")
            print(f"explore: checkpoint speedup {speedup:.2f}x "
                  f"(checkpointed {elapsed:.2f}s, "
                  f"stateless {control_elapsed:.2f}s, "
                  f"floor {args.min_checkpoint_speedup:.2f}x)")
            if speedup < args.min_checkpoint_speedup:
                print("explore: checkpoint speedup below floor",
                      file=sys.stderr)
                gate_failed = True
            gate_failed |= bool(mismatches)
    finally:
        if pool is not None:
            pool.close()
    if truncated:
        print("explore: schedule cap hit; raise --max-schedules or set "
              "--max-depth for a drainable space", file=sys.stderr)
    for failure in failures:
        print()
        print(failure)
        deviations, _ = shrink_change_points(failure, fault=fault)
        devstr = deviations_to_str(deviations)
        name = f"{failure.program}:{failure.config}:{devstr}"
        if failure.fault:
            name = f"{failure.fault}:{name}"
        print(f"  shrunk to deviations {list(deviations)}; replay with:")
        print(f"    python -m repro explore --replay {name}")
    return 1 if failures or gate_failed else 0


def _diff_explore_reports(checked, control):
    """Human-readable differences between two explore sweeps that must
    agree (checkpointed vs ``--no-checkpoint``)."""
    out = []
    for a, b in zip(checked, control):
        name = f"{a.program}:{a.config}"
        for field in ("explored", "pruned", "skipped", "truncated"):
            va, vb = getattr(a, field), getattr(b, field)
            if va != vb:
                out.append(f"{name}: {field} {va} != {vb}")
        va = sorted(str(v) for v in a.verdicts)
        vb = sorted(str(v) for v in b.verdicts)
        if va != vb:
            out.append(f"{name}: verdict sets differ "
                       f"({len(va)} vs {len(vb)} schedules)")
    return out


def cmd_conform(args):
    from repro.check.fuzz import CONFIGS
    from repro.check.programs import PROGRAMS
    from repro.spec.conform import conform_sweep, summarize_conform

    if args.litmus_only and args.skip_litmus:
        raise SystemExit(
            "--litmus-only and --skip-litmus exclude each other")

    def pick(raw, universe, what):
        if not raw:
            return None
        names = raw.split(",")
        unknown = [n for n in names if n not in universe]
        if unknown:
            raise SystemExit(
                f"unknown {what} {unknown}; choose from {sorted(universe)}")
        return names

    def progress(result):
        if args.verbose:
            status = ("skip" if result.get("skipped")
                      else "ok" if result["ok"] else "FAIL")
            print(f"conform: {result['name']}: {status}")

    results = conform_sweep(
        programs=pick(args.programs, PROGRAMS, "program"),
        configs=pick(args.configs, CONFIGS, "config"),
        seeds=args.seeds,
        litmus=not args.skip_litmus,
        cells=not args.litmus_only,
        jobs=args.jobs,
        timeout=args.timeout or None,
        report=progress,
    )
    n_run, n_skipped, failures = summarize_conform(results)
    n_drains = sum(1 for r in results if r.get("kind") == "drain")
    print(f"conform: {n_run} cells run ({n_drains} litmus drains), "
          f"{n_skipped} skipped, {len(failures)} failed")
    for failure in failures:
        print()
        print(f"conform FAILURE {failure['name']}:")
        for detail in failure["violations"]:
            print(f"  {detail}")
    return 1 if failures else 0


def cmd_all(args):
    status = 0
    for step in (cmd_isa, cmd_overheads, cmd_figure5, cmd_io, cmd_condsync):
        print()
        status |= step(args)
        print()
    return status


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the ISCA 2006 HTM-semantics evaluation.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--cpus", type=int, default=8,
                       help="worker CPUs (default 8, the paper's figure)")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload size multiplier")

    p = sub.add_parser("figure5", help="nesting vs flattening, all bars")
    common(p)
    p.add_argument("--json", default="",
                   help="also write the results as JSON to this path")
    p.set_defaults(fn=cmd_figure5)

    p = sub.add_parser("io", help="transactional-I/O scaling (7.2)")
    common(p)
    p.add_argument("--max-threads", type=int, default=16)
    p.set_defaults(fn=cmd_io)

    p = sub.add_parser("condsync", help="conditional-scheduling scaling")
    common(p)
    p.add_argument("--max-pairs", type=int, default=7)
    p.set_defaults(fn=cmd_condsync)

    p = sub.add_parser("overheads", help="published instruction counts")
    common(p)
    p.set_defaults(fn=cmd_overheads)

    p = sub.add_parser("isa", help="Table 1/2 inventories")
    common(p)
    p.set_defaults(fn=cmd_isa)

    p = sub.add_parser("profile", help="run one workload, print a profile")
    common(p)
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("--flatten-only", action="store_true",
                   help="skip the nested run")
    p.set_defaults(fn=cmd_profile)

    from repro.check.fuzz import CONFIGS
    from repro.check.programs import PROGRAMS

    p = sub.add_parser("trace", help="run a workload or check program; "
                       "print, stream, or export its event trace plus "
                       "cycle accounting")
    common(p)
    p.add_argument("target", choices=sorted(WORKLOADS) + sorted(PROGRAMS),
                   metavar="TARGET",
                   help="a workload kernel or a check/litmus program")
    p.add_argument("--kinds", default="",
                   help="comma-separated event kinds (default: all)")
    p.add_argument("--limit", type=int, default=60,
                   help="in-memory ring capacity for the printed trace")
    p.add_argument("--config", default="lazy-wb-assoc",
                   choices=sorted(CONFIGS),
                   help="machine config for check programs "
                        "(default lazy-wb-assoc; workloads use the "
                        "paper config)")
    p.add_argument("--seed", type=int, default=1,
                   help="check-program seed (default 1)")
    p.add_argument("--jsonl", default="",
                   help="also stream every event to this JSONL file")
    p.add_argument("--chrome", default="",
                   help="also write a Chrome trace-event JSON timeline "
                        "(chrome://tracing / Perfetto loadable)")
    p.add_argument("--metrics", default="",
                   help="write machine + cycle-accounting metrics JSON "
                        "to this path")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="perf-regression bench: golden-cycle matrix + detector "
             "speedup (writes BENCH_sim.json)")
    p.add_argument("--smoke", action="store_true",
                   help="reduced matrix for CI (4-CPU column + flagship)")
    p.add_argument("--out", default="BENCH_sim.json",
                   help="result JSON path (default BENCH_sim.json)")
    p.add_argument("--repeat", type=int, default=3,
                   help="flagship repetitions, best-of (default 3)")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="fail unless the flagship speedup reaches this")
    p.add_argument("--min-dispatch-ratio", type=float, default=0.0,
                   help="fail any matrix cell whose table-dispatch "
                        "steps/s falls below this multiple of its "
                        "in-run naive_interp baseline")
    p.add_argument("--update-golden", action="store_true",
                   help="rewrite the golden cycle counts from this run")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the golden-cycle matrix "
                        "(the flagship speedup always runs serially)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "check",
        help="schedule-exploration fuzzer + serializability oracle")
    p.add_argument("--seeds", type=int, default=3,
                   help="seeds per (program, config, policy) cell")
    p.add_argument("--programs", default="",
                   help="comma-separated program names (default: all)")
    p.add_argument("--configs", default="",
                   help="comma-separated config names (default: all)")
    p.add_argument("--policies", default="",
                   help="comma-separated policies from det,random,pct")
    from repro.check.fuzz import FAULTS
    p.add_argument("--inject-fault", default="", choices=("",) + FAULTS,
                   metavar="FAULT",
                   help="inject a seeded fault (a bare kind must survive "
                        "the oracles; a '+broken' variant re-introduces a "
                        "known bug the oracles must catch)")
    p.add_argument("--replay", default="",
                   help="re-run one case as program:config:policy:seed")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep (default 1; "
                        "results are identical at any job count)")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-case budget in seconds; a case over budget "
                        "becomes a run-failure result (default: none)")
    p.add_argument("--verbose", action="store_true",
                   help="print every case as it finishes")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "chaos",
        help="fault-injection matrix: every recoverable fault kind "
             "across the oracle programs and configs")
    p.add_argument("--seeds", type=int, default=3,
                   help="seeds per (fault, program, config) cell")
    p.add_argument("--faults", default="",
                   help="comma-separated fault kinds (default: all eight)")
    p.add_argument("--programs", default="",
                   help="comma-separated program names (default: all)")
    p.add_argument("--configs", default="",
                   help="comma-separated config names (default: the fast "
                        "four)")
    p.add_argument("--replay", default="",
                   help="re-run one case as fault:program:config:seed")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the matrix (default 1; "
                        "results are identical at any job count)")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-case budget in seconds; a case over budget "
                        "becomes a run-failure result (default: none)")
    p.add_argument("--verbose", action="store_true",
                   help="print every case as it finishes")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "explore",
        help="exhaustive schedule-space model checker (sleep-set "
             "pruning + iterative preemption bounding)")
    p.add_argument("--programs", default="",
                   help="comma-separated check programs "
                        "(default: the litmus family)")
    p.add_argument("--configs", default="",
                   help="comma-separated configs (default: lazy-wb-assoc)")
    p.add_argument("--preemption-bound", type=int, default=2,
                   help="max forced deviations per schedule; "
                        "negative = unbounded (run until the frontier "
                        "drains; combine with --max-depth)")
    p.add_argument("--max-depth", type=int, default=0,
                   help="branch only at steps below this index "
                        "(0 = no depth bound)")
    p.add_argument("--no-prune", action="store_true",
                   help="disable sleep-set pruning (plain bounded "
                        "enumeration)")
    p.add_argument("--seed", type=int, default=1,
                   help="program seed (schedules themselves are "
                        "enumerated, not sampled)")
    p.add_argument("--inject-fault", default="", choices=("",) + FAULTS,
                   help="explore under a deterministic fault plan "
                        "(pruning is disabled: fault state is not "
                        "modeled by the footprints)")
    p.add_argument("--max-schedules", type=int, default=20000,
                   help="safety cap on total runs (0 = uncapped)")
    p.add_argument("--replay", default="",
                   help="replay one schedule: [fault:]program:config:"
                        "deviations (e.g. litmus-sb:lazy-wb-assoc:3@1)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per generation wave "
                        "(any value yields identical results)")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-node timeout in seconds (parallel runs)")
    p.add_argument("--no-checkpoint", action="store_true",
                   help="disable the prefix checkpoint cache and replay "
                        "every node from cycle 0 (the differential "
                        "control; verdicts are identical either way)")
    p.add_argument("--min-checkpoint-speedup", type=float, default=0.0,
                   help="after the checkpointed sweep, rerun it with "
                        "--no-checkpoint in the same process, fail "
                        "unless the verdicts match exactly and the "
                        "checkpointed sweep was at least this many "
                        "times faster (0 = skip the gate)")
    p.add_argument("--verbose", action="store_true",
                   help="print every schedule verdict")
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "conform",
        help="differential conformance: simulator outcomes vs the "
             "abstract reference semantics (repro.spec)")
    p.add_argument("--programs", default="",
                   help="comma-separated check programs (default: all)")
    p.add_argument("--configs", default="",
                   help="comma-separated configs for the replay cells "
                        "(default: the functional design-space matrix)")
    p.add_argument("--seeds", type=int, default=1,
                   help="seeds per (program, config) replay cell")
    p.add_argument("--litmus-only", action="store_true",
                   help="run only the exhaustive litmus drains")
    p.add_argument("--skip-litmus", action="store_true",
                   help="run only the replay cells")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (deterministic at any value)")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-cell timeout in seconds")
    p.add_argument("--verbose", action="store_true",
                   help="print every cell verdict")
    p.set_defaults(fn=cmd_conform)

    p = sub.add_parser("all", help="the whole evaluation")
    common(p)
    p.add_argument("--max-threads", type=int, default=16)
    p.add_argument("--max-pairs", type=int, default=7)
    p.set_defaults(fn=cmd_all)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
