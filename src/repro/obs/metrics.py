"""Unified metrics registry: labeled counters and histograms over the
repo's existing statistics sources.

:mod:`repro.common.stats` is a flat tree of dotted counters with per-CPU
prefixes baked into the names (``cpu3.htm.commits_outer``);
:mod:`repro.harness.txstats` records per-commit tuples.  This module
layers one queryable shape over both:

* :class:`MetricsRegistry` holds :class:`Counter` and :class:`Histogram`
  families addressed by name + labels (``reg.counter("htm.commits")
  .labels(cpu="3").add()``);
* :meth:`MetricsRegistry.snapshot` / :func:`snapshot_delta` give
  point-in-time and interval views;
* :meth:`MetricsRegistry.to_json` exports everything as one JSON
  document (the ``trace`` CLI's ``--metrics`` output);
* :func:`machine_metrics` ingests a finished machine's stats tree,
  lifting the ``cpuN.`` prefix into a ``cpu`` label;
* :func:`txstats_metrics` ingests a
  :class:`~repro.harness.txstats.TxStatsCollector`'s records into
  read-/write-set and duration histograms labeled by commit kind;
* :func:`account_metrics` ingests a
  :class:`~repro.obs.profiler.CycleAccount`'s buckets.
"""

from __future__ import annotations

import json

#: Default histogram bucket upper bounds (powers of four: transaction
#: sizes and durations span several orders of magnitude).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384)


def _labelkey(labels):
    return tuple(sorted(labels.items()))


def _labelstr(labelkey):
    if not labelkey:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labelkey) + "}"


class Counter:
    """One labeled counter family."""

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._values = {}

    def labels(self, **labels):
        return _BoundCounter(self._values, _labelkey(labels))

    def add(self, amount=1, **labels):
        self.labels(**labels).add(amount)

    def get(self, **labels):
        return self._values.get(_labelkey(labels), 0)

    def total(self):
        return sum(self._values.values())

    def snapshot(self):
        return {_labelstr(key): value
                for key, value in sorted(self._values.items())}


class _BoundCounter:
    __slots__ = ("_values", "_key")

    def __init__(self, values, key):
        self._values = values
        self._key = key

    def add(self, amount=1):
        self._values[self._key] = self._values.get(self._key, 0) + amount


class Histogram:
    """One labeled histogram family with cumulative buckets."""

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._series = {}

    def labels(self, **labels):
        key = _labelkey(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = {
                "count": 0, "sum": 0, "max": 0,
                "le": [0] * (len(self.buckets) + 1)}
        return _BoundHistogram(series, self.buckets)

    def observe(self, value, **labels):
        self.labels(**labels).observe(value)

    def snapshot(self):
        out = {}
        for key, series in sorted(self._series.items()):
            label = _labelstr(key)
            entry = {"count": series["count"], "sum": series["sum"],
                     "max": series["max"]}
            for bound, n in zip(self.buckets, series["le"]):
                entry[f"le_{bound}"] = n
            entry["le_inf"] = series["le"][-1]
            out[label] = entry
        return out


class _BoundHistogram:
    __slots__ = ("_series", "_buckets")

    def __init__(self, series, buckets):
        self._series = series
        self._buckets = buckets

    def observe(self, value):
        series = self._series
        series["count"] += 1
        series["sum"] += value
        if value > series["max"]:
            series["max"] = value
        le = series["le"]
        for index, bound in enumerate(self._buckets):
            if value <= bound:
                le[index] += 1
        le[-1] += 1


class MetricsRegistry:
    """A namespace of metric families; families are created on demand
    and re-requesting a name returns the same family."""

    def __init__(self):
        self._counters = {}
        self._histograms = {}

    def counter(self, name, help=""):
        family = self._counters.get(name)
        if family is None:
            family = self._counters[name] = Counter(name, help=help)
        return family

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        family = self._histograms.get(name)
        if family is None:
            family = self._histograms[name] = Histogram(
                name, help=help, buckets=buckets)
        return family

    def snapshot(self):
        """``{"counters": {name: {labels: value}}, "histograms": ...}``."""
        return {
            "counters": {name: family.snapshot()
                         for name, family in sorted(self._counters.items())},
            "histograms": {name: family.snapshot()
                           for name, family in
                           sorted(self._histograms.items())},
        }

    def to_json(self, path=None, indent=2):
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text


def snapshot_delta(before, after):
    """Counter-wise ``after - before`` over two :meth:`snapshot` dicts
    (new families/labels count from zero; histograms are not diffed)."""
    delta = {"counters": {}}
    for name, series in after.get("counters", {}).items():
        base = before.get("counters", {}).get(name, {})
        diffs = {label: value - base.get(label, 0)
                 for label, value in series.items()
                 if value != base.get(label, 0)}
        if diffs:
            delta["counters"][name] = diffs
    return delta


def machine_metrics(machine, registry=None):
    """Ingest a machine's stats tree, lifting ``cpuN.`` into a label."""
    registry = registry if registry is not None else MetricsRegistry()
    for name, value in machine.stats.as_dict().items():
        head, _, rest = name.partition(".")
        if head.startswith("cpu") and head[3:].isdigit() and rest:
            registry.counter(rest).add(value, cpu=head[3:])
        else:
            registry.counter(name).add(value)
    return registry


def txstats_metrics(collector, registry=None):
    """Ingest per-commit :class:`~repro.harness.txstats.TxRecord`\\ s."""
    registry = registry if registry is not None else MetricsRegistry()
    reads = registry.histogram(
        "tx.read_units", help="read-set size per committed transaction")
    writes = registry.histogram(
        "tx.write_units", help="write-set size per committed transaction")
    duration = registry.histogram(
        "tx.duration_cycles", help="xbegin-to-xcommit cycles")
    levels = registry.histogram(
        "tx.level", help="nesting level at commit", buckets=(1, 2, 3, 4, 8))
    for record in collector.records:
        reads.observe(record.read_units, kind=record.kind)
        writes.observe(record.write_units, kind=record.kind)
        duration.observe(record.duration, kind=record.kind)
        levels.observe(record.level, kind=record.kind)
    return registry


def account_metrics(account, registry=None):
    """Ingest a :class:`~repro.obs.profiler.CycleAccount`."""
    registry = registry if registry is not None else MetricsRegistry()
    family = registry.counter(
        "cycles.bucket", help="per-CPU cycle accounting buckets")
    for cpu, books in enumerate(account.per_cpu):
        for bucket, value in books.items():
            family.add(value, cpu=str(cpu), bucket=bucket)
    return registry
