"""Exact seam patching shared by the observability instruments.

Every instrument in this repo works the same way: it shadows a bound
attribute (``htm.commit``, ``machine.wake``, ``cpu.execute``) with a
wrapper and restores the saved value on detach.  That restore is only
correct while the instrument is still *topmost* — if a second instrument
stacked its own wrapper on the same seam afterwards, blindly writing the
saved value back severs the newer wrapper (the historical
``Tracer.detach`` bug).

:class:`SeamStack` makes removal exact.  Each wrapper delegates
downstream through a one-slot *cell* rather than a captured default
argument, and the cell is published on the wrapper itself
(``__seam_cell__``).  Detaching then splices the wrapper out wherever it
currently sits: if it is topmost the attribute is rebound to whatever
the wrapper saw below it, and if it is buried under other
:class:`SeamStack` wrappers the burying wrapper's cell is re-pointed
past it.  Only a *foreign* wrapper on top (one that captured its
downstream as a default argument and exposes no cell) defeats the
splice; :meth:`restore` reports that case so the owner can deactivate
its wrapper in place instead of corrupting the stack.

The cell indirection costs one list index per delegated call while an
instrument is attached, and nothing at all once it is removed — the
zero-overhead-when-detached property every instrument here promises.
"""

from __future__ import annotations


class SeamStack:
    """A LIFO set of attribute patches with exact out-of-order removal."""

    def __init__(self):
        self._patches = []

    def wrap(self, obj, attr, make):
        """Shadow ``obj.attr`` with the wrapper built by ``make``.

        ``make(call_next)`` must return the wrapper callable;
        ``call_next(*args, **kwargs)`` invokes whatever currently sits
        below the wrapper in this seam's stack (re-pointed if an
        intermediate wrapper is later spliced out).
        """
        cell = [getattr(obj, attr)]

        def call_next(*args, **kwargs):
            return cell[0](*args, **kwargs)

        wrapper = make(call_next)
        wrapper.__seam_cell__ = cell
        setattr(obj, attr, wrapper)
        self._patches.append((obj, attr, wrapper, cell))
        return wrapper

    def restore(self):
        """Unlink every patch, wherever it now sits in its seam's stack.

        Returns True if every wrapper was physically removed.  False
        means at least one wrapper is buried under a foreign wrapper
        (no ``__seam_cell__`` to splice through) and had to stay in
        place — the owner must then silence it, because it will keep
        being called as a passthrough.
        """
        clean = True
        for obj, attr, wrapper, cell in reversed(self._patches):
            if not _unlink(obj, attr, wrapper, cell[0]):
                clean = False
        self._patches = []
        return clean


def _unlink(obj, attr, wrapper, below):
    """Remove ``wrapper`` from the stack on ``obj.attr``; True on success."""
    current = getattr(obj, attr)
    if current is wrapper:
        setattr(obj, attr, below)
        return True
    while current is not None:
        cell = getattr(current, "__seam_cell__", None)
        if cell is None:
            return False
        if cell[0] is wrapper:
            cell[0] = below
            return True
        current = cell[0]
    return False
