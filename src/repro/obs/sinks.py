"""Pluggable trace sinks: where a :class:`~repro.sim.trace.Tracer` puts
its events.

The tracer itself only *produces* :class:`~repro.sim.trace.TraceEvent`
records; a sink decides what happens to them:

* :class:`RingSink` — bounded in-memory buffer.  ``mode="head"`` keeps
  the first ``capacity`` events (the historical ``Tracer(limit=...)``
  behaviour), ``mode="tail"`` keeps the last ``capacity`` (what a
  trace-on-failure ring wants).  Either way the overflow is *counted*,
  never silent: ``sink.dropped`` says how many events fell off.
* :class:`JsonlSink` — streams one JSON object per line to a file, so a
  campaign-length trace never has to fit in memory.
  :func:`load_jsonl` reads the file back into events.
* :class:`ChromeTraceSink` — emits Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto loadable): one track per CPU,
  ``B``/``E`` duration spans for transactions (opened by ``begin``
  events, closed by commits and reopened across rollbacks), instant
  events for everything else.
* :class:`TeeSink` — fans one event stream out to several sinks.

All sinks share a tiny duck-typed contract: ``emit(event)``, ``close()``
and (optionally) ``events`` / ``dropped`` for in-memory inspection.
"""

from __future__ import annotations

import json
from collections import deque


class RingSink:
    """Bounded in-memory sink with an explicit ``dropped`` count."""

    def __init__(self, capacity=100_000, mode="head"):
        if mode not in ("head", "tail"):
            raise ValueError(f"unknown ring mode {mode!r}: head or tail")
        if capacity < 0:
            raise ValueError(f"negative ring capacity {capacity}")
        self.capacity = capacity
        self.mode = mode
        self.dropped = 0
        self._events = (deque(maxlen=capacity) if mode == "tail" else [])

    def emit(self, event):
        if self.mode == "head":
            if len(self._events) < self.capacity:
                self._events.append(event)
            else:
                self.dropped += 1
        else:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    @property
    def events(self):
        return list(self._events)

    def close(self):
        pass


class JsonlSink:
    """Streams events to ``path`` as one JSON object per line."""

    def __init__(self, path):
        if hasattr(path, "write"):
            self._fh, self._owns = path, False
        else:
            self._fh, self._owns = open(path, "w"), True
        self.n_emitted = 0

    def emit(self, event):
        self._fh.write(json.dumps(
            {"cycle": event.cycle, "kind": event.kind, "cpu": event.cpu,
             "detail": event.detail},
            sort_keys=True, separators=(",", ":"), default=str) + "\n")
        self.n_emitted += 1

    def close(self):
        self._fh.flush()
        if self._owns:
            self._fh.close()


def load_jsonl(path):
    """Read a :class:`JsonlSink` file back into a list of events."""
    from repro.sim.trace import TraceEvent

    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(TraceEvent(
                cycle=raw["cycle"], kind=raw["kind"], cpu=raw["cpu"],
                detail=raw["detail"]))
    return events


class ChromeTraceSink:
    """Chrome trace-event (Perfetto-loadable) exporter.

    Every CPU is a thread (``tid``) of one process; transactions become
    ``B``/``E`` duration spans (a rollback closes the discarded levels
    and immediately reopens the restarted one, so retries are visible as
    repeated spans); every other event kind is an instant (``i``) mark.
    Timestamps are simulated cycles reported as microseconds — the viewer
    only needs them monotone per track, which cycle time is.
    """

    def __init__(self, path=None):
        self._path = path
        self._events = []
        self._spans = {}     # cpu -> [span name, ...] currently open
        self._max_ts = 0
        self._cpus = set()

    # ------------------------------------------------------------------

    def _record(self, phase, cpu, ts, name=None, args=None):
        entry = {"ph": phase, "pid": 0, "tid": cpu, "ts": ts,
                 "cat": "machine"}
        if name is not None:
            entry["name"] = name
        if args:
            entry["args"] = dict(args)
        if phase == "i":
            entry["s"] = "t"
        self._events.append(entry)
        self._max_ts = max(self._max_ts, ts)
        self._cpus.add(cpu)

    def _open_span(self, cpu, ts, name, args):
        self._record("B", cpu, ts, name=name, args=args)
        self._spans.setdefault(cpu, []).append(name)

    def _close_span(self, cpu, ts, args=None):
        stack = self._spans.get(cpu)
        if not stack:
            return
        self._record("E", cpu, ts, name=stack.pop(), args=args)

    def emit(self, event):
        cpu, ts, detail = event.cpu, event.cycle, event.detail
        if event.kind == "begin":
            kind = "open tx" if detail.get("open") else "tx"
            self._open_span(cpu, ts, f"{kind} L{detail.get('level')}",
                            detail)
        elif event.kind == "commit":
            if detail.get("what") != "flattened":
                self._close_span(cpu, ts, args=detail)
        elif event.kind == "rollback":
            # Close the discarded levels, then reopen the restarted one:
            # the retry shows up as a fresh span on the same track.
            level = detail.get("level", 1)
            stack = self._spans.get(cpu, [])
            while len(stack) >= max(level, 1):
                self._close_span(cpu, ts)
            self._record("i", cpu, ts, name="rollback", args=detail)
            if level >= 1:
                self._open_span(cpu, ts, f"tx L{level} (retry)", detail)
        else:
            self._record("i", cpu, ts, name=event.kind, args=detail)

    # ------------------------------------------------------------------

    def trace_dict(self):
        """The complete trace-event JSON object (balancing open spans)."""
        for cpu in sorted(self._spans):
            while self._spans[cpu]:
                self._close_span(cpu, self._max_ts)
        meta = [{"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                 "args": {"name": "machine"}}]
        meta += [{"ph": "M", "pid": 0, "tid": cpu, "name": "thread_name",
                  "args": {"name": f"cpu{cpu}"}}
                 for cpu in sorted(self._cpus)]
        return {"traceEvents": meta + self._events,
                "displayTimeUnit": "ms",
                "otherData": {"time_unit": "simulated cycles as us"}}

    def close(self):
        if self._path is None:
            return
        with open(self._path, "w") as fh:
            json.dump(self.trace_dict(), fh, default=str)
            fh.write("\n")


class TeeSink:
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks):
        self.sinks = list(sinks)

    def emit(self, event):
        for sink in self.sinks:
            sink.emit(event)

    @property
    def events(self):
        for sink in self.sinks:
            events = getattr(sink, "events", None)
            if events is not None:
                return events
        return []

    @property
    def dropped(self):
        return sum(getattr(sink, "dropped", 0) for sink in self.sinks)

    def close(self):
        for sink in self.sinks:
            sink.close()
