"""Observability: trace sinks, cycle accounting, unified metrics.

The production-shape layer over the simulator's instruments
(docs/observability.md): pluggable sinks for the
:class:`~repro.sim.trace.Tracer`, a cycle-accounting profiler whose
buckets must conserve ``cycles × cpus`` exactly, a labeled metrics
registry over the stats tree, and the exact seam-stacking helper every
instrument detaches through.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    account_metrics,
    machine_metrics,
    snapshot_delta,
    txstats_metrics,
)
from repro.obs.profiler import BUCKETS, CycleAccount, CycleProfiler
from repro.obs.seams import SeamStack
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    RingSink,
    TeeSink,
    load_jsonl,
)

__all__ = [
    "BUCKETS",
    "ChromeTraceSink",
    "CycleAccount",
    "CycleProfiler",
    "JsonlSink",
    "MetricsRegistry",
    "RingSink",
    "SeamStack",
    "TeeSink",
    "account_metrics",
    "load_jsonl",
    "machine_metrics",
    "snapshot_delta",
    "txstats_metrics",
]
