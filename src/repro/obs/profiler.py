"""Cycle accounting: attribute every simulated cycle to one bucket.

The paper's performance story is about *where cycles go* — §7's
commit/abort overheads, the work thrown away by violations, the cost of
running software handlers.  The aggregate counters can't say that; this
profiler can, and it is checkable: the buckets of one run must sum to
exactly ``cycles × n_cpus``.

Buckets (per CPU):

* ``committed`` — user work that survived: non-transactional execution
  plus speculative work whose transaction eventually published.
* ``wasted`` — speculative work discarded by a rollback (or left
  in-flight when the run ended).
* ``handler`` — user-level cycles spent inside violation/abort
  dispatcher frames (the paper's handler-management overhead).
* ``overhead`` — the transactional bookkeeping instructions themselves:
  ``xbegin``/``xvalidate``/``xcommit`` (commit arbitration and
  broadcast), ``xrwsetclear`` (rollback undo work), and the rest of the
  Table 2 management ops.
* ``idle`` — cycles a CPU spent not executing: parked on a yield,
  stalled on a NACK/commit token, descheduled, or finished early.

Every cycle is charged as it happens by shadowing ``cpu.execute`` (a
per-CPU executor slot, so an unprofiled machine pays nothing), and
speculative work is tracked through the HTM's ``begin`` / ``commit`` /
``rollback_to`` / ``abandon_all`` seams: a begin marks the speculative
accumulator, an outer/open commit retires the span above its mark into
``committed``, a rollback moves it into ``wasted``.  Idle is measured
directly from the gaps between a CPU's busy intervals — *not* computed
as a residual — which is what gives the conservation invariant teeth:
any bookkeeping slip breaks ``sum(buckets) == cycles × n_cpus`` instead
of hiding in a slack term.
"""

from __future__ import annotations

import dataclasses

from repro.obs.seams import SeamStack
from repro.sim import ops as O

#: Transaction-management op classes; their cycles are ``overhead``.
_OVERHEAD_OPS = (
    O.XBegin, O.XValidate, O.XCommit, O.XAbort, O.XRwSetClear,
    O.XRegRestore, O.XVRet, O.XEnViolRep, O.XVClear,
)

BUCKETS = ("committed", "wasted", "handler", "overhead", "idle")


class _CpuAccount:
    """Mutable per-CPU books while the profiler is attached."""

    __slots__ = ("committed", "wasted", "handler", "overhead", "idle",
                 "spec", "marks", "depth", "last_end", "last_bucket")

    def __init__(self):
        self.committed = 0
        self.wasted = 0
        self.handler = 0
        self.overhead = 0
        self.idle = 0
        #: Speculative user cycles not yet committed or discarded.
        self.spec = 0
        #: ``spec`` watermark at each live nesting level's begin.
        self.marks = []
        self.depth = 0
        #: End of this CPU's last busy interval (cycle time).
        self.last_end = 0
        self.last_bucket = None

    def snapshot_state(self):
        """The books as a flat tuple (:mod:`repro.sim.snapshot`
        protocol; field order mirrors ``__slots__``)."""
        return (self.committed, self.wasted, self.handler, self.overhead,
                self.idle, self.spec, list(self.marks), self.depth,
                self.last_end, self.last_bucket)

    def restore_state(self, saved):
        (self.committed, self.wasted, self.handler, self.overhead,
         self.idle, self.spec, marks, self.depth,
         self.last_end, self.last_bucket) = saved
        self.marks = list(marks)

    def take_back(self, amount):
        """Remove ``amount`` cycles charged past the machine's final
        time (the last op's latency can overshoot the end of the run).
        Prefer the bucket charged last — that is where the overshoot
        lives."""
        order = [self.last_bucket] + ["spec", "overhead", "handler",
                                      "wasted", "committed", "idle"]
        for bucket in order:
            if bucket is None:
                continue
            have = getattr(self, bucket)
            take = min(amount, have)
            if take:
                setattr(self, bucket, have - take)
                amount -= take
            if not amount:
                return
        # Books already short by ``amount`` — leave it to the
        # conservation check to report.


@dataclasses.dataclass(frozen=True)
class CycleAccount:
    """The finished books: per-CPU buckets plus the invariant verdict."""

    cycles: int
    n_cpus: int
    per_cpu: tuple   # one {bucket: cycles} dict per CPU

    @property
    def totals(self):
        out = {bucket: 0 for bucket in BUCKETS}
        for books in self.per_cpu:
            for bucket in BUCKETS:
                out[bucket] += books[bucket]
        return out

    @property
    def grand_total(self):
        return sum(self.totals.values())

    @property
    def budget(self):
        return self.cycles * self.n_cpus

    def problems(self):
        """Conservation violations, as human-readable strings."""
        out = []
        for cpu, books in enumerate(self.per_cpu):
            negative = {b: v for b, v in books.items() if v < 0}
            if negative:
                out.append(f"cpu{cpu}: negative bucket(s) {negative}")
            subtotal = sum(books.values())
            if subtotal != self.cycles:
                out.append(
                    f"cpu{cpu}: buckets sum to {subtotal}, "
                    f"not {self.cycles} cycles")
        if self.grand_total != self.budget:
            out.append(
                f"sum(buckets) == {self.grand_total}, expected "
                f"cycles x cpus == {self.cycles} x {self.n_cpus} "
                f"== {self.budget}")
        return out

    @property
    def balanced(self):
        return not self.problems()

    def share(self, bucket):
        """``bucket``'s fraction of the total cycle budget."""
        return self.totals[bucket] / self.budget if self.budget else 0.0

    def as_dict(self):
        return {
            "cycles": self.cycles,
            "n_cpus": self.n_cpus,
            "totals": self.totals,
            "per_cpu": [dict(books) for books in self.per_cpu],
            "balanced": self.balanced,
        }


class CycleProfiler:
    """Attaches the accounting seams to a machine until detached."""

    def __init__(self, machine):
        self.machine = machine
        self._cpu = [_CpuAccount() for _ in machine.cpus]
        self._active = True
        self._account = None
        self._seams = SeamStack()
        self._saved_execute = []
        self._attach()

    # ------------------------------------------------------------------

    def _attach(self):
        machine = self.machine
        htm = machine.htm

        for cpu in machine.cpus:
            self._saved_execute.append(self._wrap_execute(cpu))

        def make_begin(call_next):
            def begin(cpu_id, open_, now):
                state = htm.states[cpu_id]
                pre = state.depth()
                level = call_next(cpu_id, open_, now)
                if self._active and state.depth() == pre + 1:
                    books = self._cpu[cpu_id]
                    books.marks.append(books.spec)
                    books.depth += 1
                return level
            return begin

        self._seams.wrap(htm, "begin", make_begin)

        def make_commit(call_next):
            def commit(cpu_id):
                result = call_next(cpu_id)
                if self._active:
                    self._on_commit(cpu_id, result.kind)
                return result
            return commit

        self._seams.wrap(htm, "commit", make_commit)

        def make_rollback(call_next):
            def rollback_to(cpu_id, level, now=0):
                if self._active:
                    self._on_rollback(cpu_id, level)
                return call_next(cpu_id, level, now)
            return rollback_to

        self._seams.wrap(htm, "rollback_to", make_rollback)

        def make_abandon(call_next):
            def abandon_all(cpu_id):
                if self._active:
                    books = self._cpu[cpu_id]
                    books.wasted += books.spec
                    books.spec = 0
                    books.marks.clear()
                    books.depth = 0
                return call_next(cpu_id)
            return abandon_all

        self._seams.wrap(htm, "abandon_all", make_abandon)

    def _wrap_execute(self, cpu):
        books = self._cpu[cpu.cpu_id]
        # ``cpu.execute`` is a slot holding the active executor (the
        # dispatch-table step, or whatever shadow an earlier instrument
        # installed); save it so detach can restore it exactly.
        prev = cpu.execute

        def execute(op, now, _orig=prev):
            # Account the gap since this CPU's last busy interval first,
            # so an exception (CapacityAbort) leaves the books balanced.
            if now > books.last_end:
                books.idle += now - books.last_end
                books.last_end = now
            pre_depth = books.depth
            pre_dispatch = cpu.dispatch_depth
            outcome = _orig(op, now)
            if outcome.stall:
                return outcome
            latency = outcome.latency
            charged = latency if latency > 1 else 1
            if isinstance(op, _OVERHEAD_OPS):
                books.overhead += charged
                books.last_bucket = "overhead"
            elif pre_dispatch:
                books.handler += charged
                books.last_bucket = "handler"
            elif pre_depth:
                books.spec += charged
                books.last_bucket = "spec"
            else:
                books.committed += charged
                books.last_bucket = "committed"
            books.last_end = now + charged
            return outcome

        cpu.execute = execute
        return (cpu, prev, execute)

    # ------------------------------------------------------------------

    def _on_commit(self, cpu_id, kind):
        books = self._cpu[cpu_id]
        if kind == "outer":
            books.committed += books.spec
            books.spec = 0
            books.marks.clear()
            books.depth = 0
        elif kind == "open":
            mark = books.marks.pop() if books.marks else 0
            books.committed += books.spec - mark
            books.spec = mark
            books.depth = max(0, books.depth - 1)
        elif kind == "closed":
            if books.marks:
                books.marks.pop()
            books.depth = max(0, books.depth - 1)
        # "flattened" commits end no real level: nothing moves.

    def _on_rollback(self, cpu_id, level):
        books = self._cpu[cpu_id]
        if not 1 <= level <= len(books.marks):
            return
        mark = books.marks[level - 1]
        books.wasted += books.spec - mark
        books.spec = mark
        del books.marks[level:]
        books.depth = level

    # ------------------------------------------------------------------

    def detach(self):
        """Restore the machine's unprofiled seams (exact, like the
        tracer's) and freeze the books."""
        if not self._active:
            return
        self._active = False
        self._seams.restore()
        for cpu, prev, wrapper in self._saved_execute:
            # Restoring the saved executor removes the shadow and brings
            # back the zero-overhead dispatch path (or whatever shadow an
            # earlier instrument had installed).
            if cpu.execute is wrapper:
                cpu.execute = prev
        self._saved_execute = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    # ------------------------------------------------------------------

    def account(self, cycles=None):
        """Close the books against the machine's final time and return
        the frozen :class:`CycleAccount` (idempotent)."""
        if self._account is not None:
            return self._account
        if cycles is None:
            cycles = self.machine.now
        per_cpu = []
        for books in self._cpu:
            # Work still speculative when the run ended never committed.
            books.wasted += books.spec
            if books.last_bucket == "spec":
                books.last_bucket = "wasted"
            books.spec = 0
            if books.last_end > cycles:
                # The final op's latency ran past the end of simulated
                # time; those cycles were never lived.
                books.take_back(books.last_end - cycles)
            elif books.last_end < cycles:
                books.idle += cycles - books.last_end
            per_cpu.append({bucket: getattr(books, bucket)
                            for bucket in BUCKETS})
        self._account = CycleAccount(
            cycles=cycles, n_cpus=len(self._cpu), per_cpu=tuple(per_cpu))
        return self._account
