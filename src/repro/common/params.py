"""System parameters for the simulated chip-multiprocessor.

The defaults reproduce the configuration evaluated in Section 7 of the
paper: up to 16 single-issue cores (CPI = 1 for non-memory instructions),
private 32 KB / 1-cycle L1 caches, private 512 KB / 12-cycle L2 caches, a
16-byte split-transaction bus, an HTM with a write-buffer for speculative
state, lazy (commit-time) conflict detection, continuous transactional
execution, and the associativity nesting scheme with lazy merging.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError

#: Architectural word size in bytes.  All simulated addresses are
#: word-aligned; the memory image maps word addresses to values.
WORD_SIZE = 4

#: Versioning policies.
WRITE_BUFFER = "write_buffer"
UNDO_LOG = "undo_log"

#: Conflict-detection policies.
LAZY = "lazy"
EAGER = "eager"

#: Nesting cache schemes (paper Figure 4).
MULTI_TRACKING = "multi_tracking"
ASSOCIATIVITY = "associativity"

#: Tracking granularities for read-/write-sets.
LINE = "line"
WORD = "word"

#: Eager-mode conflict resolution policies.  ``requester_wins`` is
#: livelock-prone under symmetric contention (two transactions can kill
#: each other forever), which is why LogTM-style systems stall the
#: requester; ``requester_stalls`` (older transaction wins, bounded
#: stall, conservative self-abort) is the default.
REQUESTER_WINS = "requester_wins"   # the accessing CPU violates the owner
REQUESTER_STALLS = "requester_stalls"  # LogTM-style stall, abort on deadlock


@dataclasses.dataclass
class SystemConfig:
    """Complete description of one simulated machine.

    Instances are immutable in spirit: build one per experiment and do not
    mutate it once a :class:`~repro.sim.engine.Machine` has been created.
    """

    n_cpus: int = 8

    # --- memory hierarchy -------------------------------------------------
    line_size: int = 32            # bytes per cache line
    l1_size: int = 32 * 1024       # bytes
    l1_assoc: int = 4
    l1_latency: int = 1            # cycles
    l2_size: int = 512 * 1024      # bytes
    l2_assoc: int = 8
    l2_latency: int = 12           # cycles
    mem_latency: int = 100         # cycles
    bus_width: int = 16            # bytes transferred per cycle
    bus_arbitration: int = 3       # cycles to win the bus

    #: If False, use a flat 1-cycle memory model (functional testing).
    timing: bool = True

    #: Coherence timing model: "simple" (misses to memory, commit
    #: broadcasts invalidate) or "msi" (cache-to-cache transfers,
    #: upgrades, writebacks — see repro.memsys.coherence).
    coherence: str = "simple"

    #: Double-buffered commit (paper §6.3.3): the CPU proceeds into its
    #: next transaction while the commit broadcast drains on the bus.
    double_buffering: bool = False

    # --- HTM policies -----------------------------------------------------
    versioning: str = WRITE_BUFFER
    detection: str = LAZY
    nesting_scheme: str = ASSOCIATIVITY
    granularity: str = LINE
    eager_policy: str = REQUESTER_STALLS
    max_nesting: int = 4           # hardware nesting depth (paper uses 3)

    #: Flatten all nested transactions into the outermost one, like the
    #: conventional HTM systems the paper compares against.
    flatten: bool = False

    #: Use the naive O(n_cpus × levels) full-scan conflict detectors
    #: instead of the reverse-index ones.  Functionally identical
    #: (bit-for-bit: same violation streams, cycle counts, memory
    #: images) — kept as the differential-testing reference and the
    #: bench harness's baseline (docs/performance.md).
    naive_detection: bool = False

    #: Use the naive isinstance-chain op interpreter (fresh ExecOutcome
    #: per instruction) instead of the per-op-type dispatch table with
    #: interned outcomes.  Functionally identical bit-for-bit — kept as
    #: the differential-testing reference and the bench harness's in-run
    #: wall-clock baseline (docs/performance.md).
    naive_interp: bool = False

    #: Model the cost of the lazy read-/write-set merge at closed-nested
    #: commits (cycles charged per merged line when the merge is forced).
    merge_cycles_per_line: int = 1

    #: Cycles per undo-log entry processed during a rollback, and per
    #: log-search step on an open-nested commit overwrite (paper Section
    #: 6.3.1 calls this search "expensive").
    undo_cycles_per_entry: int = 2

    # --- OS / runtime costs ------------------------------------------------
    syscall_cycles: int = 200      # simulated cost of a kernel crossing

    def __post_init__(self):
        self.validate()

    # -- derived geometry ---------------------------------------------------

    @property
    def words_per_line(self):
        return self.line_size // WORD_SIZE

    @property
    def l1_sets(self):
        return self.l1_size // (self.line_size * self.l1_assoc)

    @property
    def l2_sets(self):
        return self.l2_size // (self.line_size * self.l2_assoc)

    @property
    def line_transfer_cycles(self):
        """Bus cycles to move one cache line."""
        return max(1, self.line_size // self.bus_width)

    def validate(self):
        """Reject unsupported parameter combinations with a clear message."""
        if self.n_cpus < 1:
            raise ConfigError("n_cpus must be >= 1")
        if self.line_size % WORD_SIZE:
            raise ConfigError("line_size must be a multiple of the word size")
        if self.versioning not in (WRITE_BUFFER, UNDO_LOG):
            raise ConfigError(f"unknown versioning policy {self.versioning!r}")
        if self.detection not in (LAZY, EAGER):
            raise ConfigError(f"unknown detection policy {self.detection!r}")
        if self.nesting_scheme not in (MULTI_TRACKING, ASSOCIATIVITY):
            raise ConfigError(
                f"unknown nesting scheme {self.nesting_scheme!r}")
        if self.granularity not in (LINE, WORD):
            raise ConfigError(f"unknown granularity {self.granularity!r}")
        if self.eager_policy not in (REQUESTER_WINS, REQUESTER_STALLS):
            raise ConfigError(f"unknown eager policy {self.eager_policy!r}")
        if self.versioning == UNDO_LOG and self.detection == LAZY:
            # An undo-log writes shared memory in place; without eager
            # detection other CPUs would read uncommitted data.
            raise ConfigError(
                "undo_log versioning requires eager conflict detection")
        if self.max_nesting < 1:
            raise ConfigError("max_nesting must be >= 1")
        if self.coherence not in ("simple", "msi"):
            raise ConfigError(f"unknown coherence model {self.coherence!r}")
        for field in ("l1_size", "l2_size"):
            size = getattr(self, field)
            if size % self.line_size:
                raise ConfigError(f"{field} must be a multiple of line_size")

    def replace(self, **changes):
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def paper_config(**overrides):
    """The Section 7 evaluation machine, optionally with overrides."""
    return SystemConfig(**overrides)


def functional_config(**overrides):
    """A fast machine for semantic tests: flat memory, small caches."""
    defaults = dict(n_cpus=4, timing=False)
    defaults.update(overrides)
    return SystemConfig(**defaults)
