"""Address arithmetic for the simulated physical address space.

The address space is a flat range of byte addresses.  All data accesses
are word-aligned (:data:`~repro.common.params.WORD_SIZE` bytes); the HTM
tracks conflicts at cache-line granularity by default.

Layout convention used by the runtime (not enforced by hardware):

* ``[SHARED_BASE, PRIVATE_BASE)`` — the shared heap.
* ``[PRIVATE_BASE + cpu * PRIVATE_SPAN, ...)`` — thread-private segment of
  each CPU, holding its TCB stack, handler stacks, undo-log spill area,
  and private scratch allocations.
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE

#: Base of the shared heap.
SHARED_BASE = 0x0001_0000

#: Base of the first thread-private segment.
PRIVATE_BASE = 0x4000_0000

#: Bytes reserved per thread-private segment.
PRIVATE_SPAN = 0x0100_0000


def check_word_aligned(addr):
    """Raise :class:`MemoryError_` unless ``addr`` is word-aligned."""
    if addr % WORD_SIZE:
        raise MemoryError_(f"unaligned word access at {addr:#x}")
    return addr


def line_of(addr, line_size):
    """Return the line-aligned base address containing ``addr``."""
    return addr - (addr % line_size)


def word_index_in_line(addr, line_size):
    """Return the word index of ``addr`` within its cache line."""
    return (addr % line_size) // WORD_SIZE


def words_of_line(line_addr, line_size):
    """Iterate the word addresses of the line starting at ``line_addr``."""
    return range(line_addr, line_addr + line_size, WORD_SIZE)


def private_base(cpu_id):
    """Base address of the thread-private segment of ``cpu_id``."""
    return PRIVATE_BASE + cpu_id * PRIVATE_SPAN


def is_private(addr):
    """True if ``addr`` falls in any thread-private segment."""
    return addr >= PRIVATE_BASE


def owner_of_private(addr):
    """CPU id owning a private address."""
    if not is_private(addr):
        raise MemoryError_(f"{addr:#x} is not a private address")
    return (addr - PRIVATE_BASE) // PRIVATE_SPAN
