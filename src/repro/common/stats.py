"""Hierarchical statistics counters.

Every component of the machine (engine, caches, bus, HTM, runtime) records
into a shared :class:`Stats` tree so experiments can report cycle counts,
hit rates, violation counts, and instruction overheads without the
components knowing about each other.
"""

from __future__ import annotations

from collections import defaultdict


class Stats:
    """A tree of named integer counters.

    ``stats.add("l1.hits")`` bumps a counter; ``stats.scope("cpu0")``
    returns a child view whose counter names are prefixed, so per-CPU and
    machine-wide numbers coexist: ``cpu0.l1.hits``.
    """

    def __init__(self):
        self._counters = defaultdict(int)

    def add(self, name, amount=1):
        """Add ``amount`` to counter ``name``."""
        self._counters[name] += amount

    def set(self, name, value):
        """Set counter ``name`` to ``value`` (for gauges like cycle count)."""
        self._counters[name] = value

    def get(self, name, default=0):
        """Read counter ``name``."""
        return self._counters.get(name, default)

    def scope(self, prefix):
        """Return a :class:`StatsScope` that prefixes all counter names."""
        return StatsScope(self, prefix)

    def matching(self, prefix):
        """Return ``{name: value}`` for counters under ``prefix.``."""
        dotted = prefix + "."
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(dotted)
        }

    def total(self, suffix):
        """Sum every counter whose name ends with ``suffix``.

        Useful for machine-wide aggregates over per-CPU scopes, e.g.
        ``stats.total("htm.violations")``.
        """
        return sum(
            value
            for name, value in self._counters.items()
            if name == suffix or name.endswith("." + suffix)
        )

    def as_dict(self):
        """A plain-dict snapshot of every counter."""
        return dict(self._counters)

    def __repr__(self):
        entries = ", ".join(
            f"{name}={value}" for name, value in sorted(self._counters.items())
        )
        return f"Stats({entries})"


class StatsScope:
    """A prefixed view onto a :class:`Stats` tree."""

    def __init__(self, stats, prefix):
        self._stats = stats
        self._prefix = prefix

    def add(self, name, amount=1):
        self._stats.add(f"{self._prefix}.{name}", amount)

    def set(self, name, value):
        self._stats.set(f"{self._prefix}.{name}", value)

    def get(self, name, default=0):
        return self._stats.get(f"{self._prefix}.{name}", default)

    def scope(self, prefix):
        return StatsScope(self._stats, f"{self._prefix}.{prefix}")
