"""Hierarchical statistics counters.

Every component of the machine (engine, caches, bus, HTM, runtime) records
into a shared :class:`Stats` tree so experiments can report cycle counts,
hit rates, violation counts, and instruction overheads without the
components knowing about each other.

Counter names are dotted strings, but building them per increment
(f-strings on the hot path) costs more than the increment itself.  Two
mechanisms keep the name machinery off the hot path without changing any
counter name:

* :class:`StatsScope` caches each ``name -> "prefix.name"`` key it has
  seen, so repeated ``scope.add("loads")`` calls never re-format;
* :meth:`Stats.counter` / :meth:`StatsScope.counter` return a
  :class:`BoundCounter` — a pre-resolved handle that increments the
  underlying slot directly.  Components bind their per-CPU counters once
  at construction and call ``counter.add()`` per event.
"""

from __future__ import annotations

from collections import defaultdict


class BoundCounter:
    """A pre-bound handle onto one counter slot of a :class:`Stats` tree.

    Holds the fully-resolved dotted key, so incrementing is a single
    dict update with no string formatting.  The slot is created lazily
    on the first :meth:`add`, exactly as a plain ``stats.add`` would.
    """

    __slots__ = ("_counters", "name")

    def __init__(self, counters, name):
        self._counters = counters
        self.name = name

    def add(self, amount=1):
        self._counters[self.name] += amount

    def get(self, default=0):
        return self._counters.get(self.name, default)

    def __repr__(self):
        return f"BoundCounter({self.name!r}={self.get()})"


class Stats:
    """A tree of named integer counters.

    ``stats.add("l1.hits")`` bumps a counter; ``stats.scope("cpu0")``
    returns a child view whose counter names are prefixed, so per-CPU and
    machine-wide numbers coexist: ``cpu0.l1.hits``.
    """

    def __init__(self):
        self._counters = defaultdict(int)

    def add(self, name, amount=1):
        """Add ``amount`` to counter ``name``."""
        self._counters[name] += amount

    def set(self, name, value):
        """Set counter ``name`` to ``value`` (for gauges like cycle count)."""
        self._counters[name] = value

    def get(self, name, default=0):
        """Read counter ``name``."""
        return self._counters.get(name, default)

    def counter(self, name):
        """A :class:`BoundCounter` onto ``name`` (hot-path increments)."""
        return BoundCounter(self._counters, name)

    def scope(self, prefix):
        """Return a :class:`StatsScope` that prefixes all counter names."""
        return StatsScope(self, prefix)

    def matching(self, prefix):
        """Return ``{name: value}`` for counters under ``prefix.``."""
        dotted = prefix + "."
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(dotted)
        }

    def total(self, suffix):
        """Sum every counter whose name ends with ``suffix``.

        Useful for machine-wide aggregates over per-CPU scopes, e.g.
        ``stats.total("htm.violations")``.
        """
        return sum(
            value
            for name, value in self._counters.items()
            if name == suffix or name.endswith("." + suffix)
        )

    def as_dict(self):
        """A plain-dict snapshot of every counter."""
        return dict(self._counters)

    def snapshot_state(self):
        """Capture every counter (for machine snapshot/restore)."""
        return dict(self._counters)

    def restore_state(self, saved):
        """Overwrite the counters *in place*: BoundCounter handles bind
        the underlying dict object, so the dict must never be rebound."""
        self._counters.clear()
        self._counters.update(saved)

    def __repr__(self):
        entries = ", ".join(
            f"{name}={value}" for name, value in sorted(self._counters.items())
        )
        return f"Stats({entries})"


class StatsScope:
    """A prefixed view onto a :class:`Stats` tree.

    Fully-qualified keys are cached per scope, so a name is formatted at
    most once per scope no matter how many times it is recorded.
    """

    def __init__(self, stats, prefix):
        self._stats = stats
        self._prefix = prefix
        self._keys = {}

    def _key(self, name):
        key = self._keys.get(name)
        if key is None:
            key = self._keys[name] = f"{self._prefix}.{name}"
        return key

    def add(self, name, amount=1):
        self._stats.add(self._key(name), amount)

    def set(self, name, value):
        self._stats.set(self._key(name), value)

    def get(self, name, default=0):
        return self._stats.get(self._key(name), default)

    def counter(self, name):
        """A :class:`BoundCounter` onto this scope's ``prefix.name``."""
        return self._stats.counter(self._key(name))

    def scope(self, prefix):
        return StatsScope(self._stats, self._key(prefix))
