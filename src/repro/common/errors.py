"""Exception taxonomy for the simulator, HTM engine, ISA, and runtime.

Two distinct families live here:

* *Errors* (subclasses of :class:`ReproError`) indicate misuse of the
  library or an internal invariant failure.  They are ordinary Python
  exceptions and should never be caught by workload code.

* *Control-flow signals* (subclasses of :class:`TxSignal`) implement the
  architectural control transfers of the paper: rolling a transaction back
  unwinds the Python frames of the transaction body, exactly like the
  hardware discarding the speculative register state and jumping to the
  restart PC.  The runtime's ``atomic`` wrapper catches these; user code
  must not.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulation engine was driven into an illegal state.

    Examples: two programs bound to one CPU, an operation yielded by a
    thread that is not an :class:`~repro.sim.ops.Op`, or a deadlock in
    which every live thread is waiting.
    """


class DeadlockError(SimulationError):
    """Every live, non-daemon thread is blocked and no wakeup is pending."""


class IsaError(ReproError):
    """An instruction was used in a way the ISA forbids.

    Examples: ``xcommit`` with no active transaction, ``xvalidate`` on an
    already-validated transaction, or exceeding the hardware nesting depth
    without a virtualization handler installed.
    """


class MemoryError_(ReproError):
    """Illegal access to the simulated address space (e.g. unmapped word)."""


class HeapError(ReproError):
    """Simulated heap misuse: double free, corrupt block header, OOM."""


class ConfigError(ReproError):
    """An unsupported combination of system parameters was requested."""


# ---------------------------------------------------------------------------
# Architectural control-flow signals
# ---------------------------------------------------------------------------

class TxSignal(BaseException):
    """Base class for architectural control transfers.

    Derived from ``BaseException`` so that careless ``except Exception``
    blocks inside workload code cannot swallow a rollback, mirroring the
    fact that software cannot suppress a hardware register-state restore.
    """


class TxRollback(TxSignal):
    """Unwind the transaction body down to (and including) ``level``.

    Thrown by the engine into a thread's program generator after the
    violation/abort dispatcher decided to roll back.  The ``atomic``
    wrapper at each nesting level catches it; wrappers at levels deeper
    than ``level`` re-raise so the signal reaches the right frame.

    Attributes:
        level:  1-based nesting level to restart (1 = outermost).
        reason: one of ``"violation"``, ``"abort"``, ``"capacity"``.
        code:   abort code passed to ``xabort`` (None for violations).
        vaddr:  conflicting address, when the hardware captured one.
    """

    def __init__(self, level, reason, code=None, vaddr=None):
        super().__init__(f"rollback to level {level} ({reason})")
        self.level = level
        self.reason = reason
        self.code = code
        self.vaddr = vaddr


class CapacityAbort(TxRollback):
    """Transactional state overflowed the hardware resources.

    Raised when a nesting scheme runs out of per-line tracking bits
    (multi-tracking) or cache ways (associativity), or when the nesting
    depth exceeds the hardware limit.  This is the architectural interface
    behind which a virtualization scheme (VTM/XTM-style) would sit.
    """

    def __init__(self, level, detail=""):
        super().__init__(level, "capacity")
        self.detail = detail


class TxAborted(ReproError):
    """A transaction ended via ``xabort`` and software chose not to retry.

    Raised by the runtime's ``atomic`` wrapper (after cleanly terminating
    the hardware transaction) so code outside the atomic block can react —
    the substrate for language constructs like ``tryatomic`` and
    ``AbortException`` (paper Section 5).
    """

    def __init__(self, code=None):
        super().__init__(f"transaction aborted (code={code!r})")
        self.code = code


class RetrySignal(TxSignal):
    """Raised by the condsync runtime to park the thread until a watched
    address changes (the Atomos ``retry`` construct)."""

    def __init__(self, level):
        super().__init__(f"retry at level {level}")
        self.level = level
