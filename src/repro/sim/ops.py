"""The operation vocabulary of simulated programs.

A simulated program is a Python generator that *yields* :class:`Op`
instances to the hardware and receives each operation's result via
``send``::

    def body(t):
        value = yield Load(addr)
        yield Store(addr, value + 1)
        yield Alu(5)                      # five cycles of computation

Programs normally do not construct these directly; the thread handle
(:class:`repro.isa.context.Cpu`) and the runtime provide ergonomic
helpers.  Every yielded ``Op`` counts as one dynamic instruction, which is
how the Section 7 overhead numbers (6-instruction ``xbegin`` etc.) are
measured.
"""

from __future__ import annotations

import dataclasses


class Op:
    """Base class for every operation a program can yield."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Memory operations
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class Load(Op):
    """Transactional load: value returned, address added to the read-set."""

    addr: int


@dataclasses.dataclass(frozen=True, slots=True)
class Store(Op):
    """Transactional store: buffered/logged, address added to write-set."""

    addr: int
    value: object


@dataclasses.dataclass(frozen=True, slots=True)
class ImLoad(Op):
    """Immediate load (``imld``): bypasses the read-set.

    For thread-private or provably read-only data only (paper §4.7).
    """

    addr: int


@dataclasses.dataclass(frozen=True, slots=True)
class ImStore(Op):
    """Immediate store (``imst``): writes memory now, bypasses the
    write-set, but keeps undo information so a rollback restores it."""

    addr: int
    value: object


@dataclasses.dataclass(frozen=True, slots=True)
class ImStoreId(Op):
    """Idempotent immediate store (``imstid``): like ``imst`` but keeps no
    undo information; survives rollbacks."""

    addr: int
    value: object


@dataclasses.dataclass(frozen=True, slots=True)
class Release(Op):
    """Early release: drop ``addr`` from the current read-set."""

    addr: int


# ---------------------------------------------------------------------------
# Transaction-definition instructions (paper Table 2)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class XBegin(Op):
    """Checkpoint registers and start a (closed-nested) transaction.

    ``open=True`` is ``xbegin_open``.  Returns the new nesting level.
    """

    open: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class XValidate(Op):
    """Verify atomicity of the current transaction; status -> validated."""


@dataclasses.dataclass(frozen=True, slots=True)
class XCommit(Op):
    """Atomically commit the current transaction."""


@dataclasses.dataclass(frozen=True, slots=True)
class XAbort(Op):
    """Abort the current transaction and dispatch the abort handler.

    ``code`` is made available to the handler (used e.g. by the condsync
    runtime to distinguish ``retry`` from error aborts).
    """

    code: object = None


# ---------------------------------------------------------------------------
# State and handler management instructions
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class XRwSetClear(Op):
    """Discard the read- and write-set and speculative data at ``level``
    (default: the current level) and every deeper level, and clear the
    ``xvcurrent``/``xvpending`` bits for those levels.

    Flushing the write-buffer / processing the undo-log is folded into
    this instruction's latency (the paper leaves the split between
    hardware gang-clear and software log walk to the implementation);
    clearing deeper levels in one go models the gang-invalidate of §6.3.
    """

    level: object = None


@dataclasses.dataclass(frozen=True, slots=True)
class XRegRestore(Op):
    """Restore the register checkpoint of the current transaction.

    In this model, register state is the Python frame of the transaction
    body; the actual unwinding happens when the dispatcher finishes and the
    engine raises :class:`~repro.common.errors.TxRollback` into the
    program.  ``XRegRestore`` marks the architectural point of the restore
    and charges its cost.
    """


@dataclasses.dataclass(frozen=True, slots=True)
class XVRet(Op):
    """Return from a violation/abort handler: re-enable violation
    reporting and jump to ``xvpc``.  Only valid inside a dispatcher."""


@dataclasses.dataclass(frozen=True, slots=True)
class XEnViolRep(Op):
    """Re-enable violation reporting (used before open-nested transactions
    inside handlers, see paper footnote 1)."""


@dataclasses.dataclass(frozen=True, slots=True)
class XVClear(Op):
    """Acknowledge handled conflicts: clear ``mask`` bits (default: all)
    from ``xvcurrent`` without touching the read-/write-sets.

    The paper makes clearing the bitmask software's responsibility (§4.6)
    but names only ``xrwsetclear``, which also discards the sets; a
    handler that *resumes* its transaction (e.g. the condsync scheduler)
    must keep its read-set, so this reproduction adds the obvious
    non-destructive acknowledge.  Documented in DESIGN.md.
    """

    mask: object = None


# ---------------------------------------------------------------------------
# Engine operations (not ISA; model CPU-local work and the OS substrate)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class Alu(Op):
    """``cycles`` of non-memory computation (CPI = 1 per the paper, so this
    also counts as ``cycles`` dynamic instructions)."""

    cycles: int = 1


@dataclasses.dataclass(frozen=True, slots=True)
class YieldCpu(Op):
    """Deschedule this thread until another thread wakes it.

    If a wakeup already arrived (wake token pending), this is a no-op —
    that closes the lost-wakeup window between registering a watch and
    sleeping.
    """


@dataclasses.dataclass(frozen=True, slots=True)
class Wake(Op):
    """Wake thread ``cpu_id`` (models an inter-processor interrupt)."""

    cpu_id: int


@dataclasses.dataclass(frozen=True, slots=True)
class Fence(Op):
    """One-cycle ordering point; useful for timing markers in tests."""


@dataclasses.dataclass(frozen=True, slots=True)
class SerialAcquire(Op):
    """Try to acquire machine-wide serial mode: while held, no other CPU
    can validate/commit a publishing transaction.

    Returns True on success, False if another CPU holds it or validated
    transactions are still draining.  This is the minimal architectural
    hook behind which a virtualization scheme sits (paper §6.3.3): when a
    transaction overflows the hardware (CapacityAbort), the runtime
    re-executes it under serial mode with unbounded (plain-memory)
    buffering.  Documented as a reproduction extension in DESIGN.md.
    """


@dataclasses.dataclass(frozen=True, slots=True)
class SerialRelease(Op):
    """Release serial mode (must be held by this CPU)."""


#: Operations whose execution reads or writes the memory system.
MEMORY_OPS = (Load, Store, ImLoad, ImStore, ImStoreId)

#: The complete core operation vocabulary, in definition order.  The
#: interpreter (:mod:`repro.isa.context`) builds its per-CPU dispatch
#: table from this tuple at import time; extension ops ride on top of it
#: via :func:`repro.isa.context.register_op_handler`.
ALL_OPS = (
    Load,
    Store,
    ImLoad,
    ImStore,
    ImStoreId,
    Release,
    XBegin,
    XValidate,
    XCommit,
    XAbort,
    XRwSetClear,
    XRegRestore,
    XVRet,
    XEnViolRep,
    XVClear,
    Alu,
    YieldCpu,
    Wake,
    Fence,
    SerialAcquire,
    SerialRelease,
)

#: Operations implementing paper Table 2.
ISA_OPS = (
    XBegin,
    XValidate,
    XCommit,
    XAbort,
    XRwSetClear,
    XRegRestore,
    XVRet,
    XEnViolRep,
    XVClear,
    ImLoad,
    ImStore,
    ImStoreId,
    Release,
)
