"""Structured event tracing for the simulated machine.

A :class:`Tracer` attaches to a :class:`~repro.sim.engine.Machine` and
records architectural events — transaction begins, commits, violation
posts and deliveries, handler dispatches, rollbacks, parks/wakes — as
typed records with timestamps.  It is the debugging instrument for
everything the paper's mechanisms make subtle (who violated whom, at
which nesting level, which handler ran, what got rolled back), and
several regression tests assert against traces directly.

Usage::

    machine = Machine(config)
    tracer = Tracer(machine, kinds={"commit", "violation"})
    ... run ...
    for event in tracer.events:
        print(event)
    tracer.detach()

Events go to a pluggable *sink* (:mod:`repro.obs.sinks`).  The default
is a bounded in-memory :class:`~repro.obs.sinks.RingSink` keeping the
first ``limit`` events — overflow is counted in :attr:`Tracer.dropped`,
never silently swallowed.  Pass ``sink=`` to stream instead: a
:class:`~repro.obs.sinks.JsonlSink` for campaign-length traces, a
:class:`~repro.obs.sinks.ChromeTraceSink` for a Perfetto-loadable
timeline, or a :class:`~repro.obs.sinks.TeeSink` of several.

Tracing is implemented by wrapping a handful of well-defined seams
(HtmSystem.begin / commit / rollback_to, the violation sink,
Machine.wake, Machine._push_dispatcher, Machine._park,
Machine._fault_event) through a :class:`~repro.obs.seams.SeamStack`, so
``detach`` is *exact*: instruments stacked on the same seams in any
order detach in any order without severing each other.  Overhead is
zero when no tracer is attached.

``fault`` events record injections by an attached
:class:`repro.faults.FaultInjector`; on a machine without one the kind
simply never fires.
"""

from __future__ import annotations

import dataclasses

from repro.obs.seams import SeamStack
from repro.obs.sinks import RingSink


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One architectural event."""

    cycle: int
    kind: str       # begin | commit | violation | delivery | dispatch
    #                 | rollback | wake | park | fault
    cpu: int
    detail: dict

    def __str__(self):
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.cycle:>8}] cpu{self.cpu} {self.kind:<9} {parts}"


#: All traceable event kinds.
ALL_KINDS = frozenset(
    {"begin", "commit", "violation", "delivery", "dispatch", "rollback",
     "wake", "park", "fault"})


class Tracer:
    """Records machine events until detached."""

    def __init__(self, machine, kinds=None, limit=100_000, sink=None):
        self.machine = machine
        self.kinds = frozenset(kinds) if kinds is not None else ALL_KINDS
        unknown = self.kinds - ALL_KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self.limit = limit
        self.sink = sink if sink is not None else RingSink(limit,
                                                           mode="head")
        self._active = True
        self._attached = True
        self._seams = SeamStack()
        self._attach()

    @property
    def events(self):
        """The sink's buffered events ([] for write-only sinks)."""
        return list(getattr(self.sink, "events", ()))

    @property
    def dropped(self):
        """Events the sink discarded for capacity (0 if unbounded)."""
        return getattr(self.sink, "dropped", 0)

    # ------------------------------------------------------------------

    def _emit(self, kind, cpu, **detail):
        if not self._active or kind not in self.kinds:
            return
        self.sink.emit(TraceEvent(
            cycle=self.machine.now, kind=kind, cpu=cpu, detail=detail))

    def _attach(self):
        machine = self.machine
        htm = machine.htm
        seams = self._seams

        def make_begin(call_next):
            def begin(cpu_id, open_, now):
                state = htm.states[cpu_id]
                pre = state.depth()
                level = call_next(cpu_id, open_, now)
                if state.depth() == pre + 1:
                    # A real level started (flattened begins subsume).
                    self._emit("begin", cpu_id, level=level,
                               open=bool(open_))
                return level
            return begin

        seams.wrap(htm, "begin", make_begin)

        def make_commit(call_next):
            def commit(cpu_id):
                result = call_next(cpu_id)
                if result.kind in ("outer", "open"):
                    self._emit("commit", cpu_id, what=result.kind,
                               words=len(result.written_words))
                else:
                    self._emit("commit", cpu_id, what=result.kind)
                return result
            return commit

        seams.wrap(htm, "commit", make_commit)

        def make_rollback(call_next):
            def rollback_to(cpu_id, level, now=0):
                self._emit("rollback", cpu_id, level=level)
                return call_next(cpu_id, level, now)
            return rollback_to

        seams.wrap(htm, "rollback_to", make_rollback)

        def make_sink(call_next):
            def sink(violation):
                self._emit("violation", violation.victim,
                           mask=violation.mask, addr=violation.addr,
                           source=violation.source)
                call_next(violation)
            return sink

        seams.wrap(htm.detector, "_sink", make_sink)

        def make_push(call_next):
            def push(cpu, kind):
                call_next(cpu, kind)
                if kind == "violation":
                    self._emit("delivery", cpu.cpu_id,
                               mask=cpu.isa.xvcurrent, addr=cpu.isa.xvaddr)
                self._emit("dispatch", cpu.cpu_id, what=kind,
                           depth=cpu.dispatch_depth)
            return push

        seams.wrap(machine, "_push_dispatcher", make_push)

        def make_wake(call_next):
            def wake(cpu_id):
                self._emit("wake", cpu_id,
                           state=machine.cpus[cpu_id].state)
                call_next(cpu_id)
            return wake

        seams.wrap(machine, "wake", make_wake)

        def make_park(call_next):
            def park(cpu):
                self._emit("park", cpu.cpu_id,
                           depth=machine.htm.depth(cpu.cpu_id))
                call_next(cpu)
            return park

        seams.wrap(machine, "_park", make_park)

        def make_fault(call_next):
            def fault(kind, cpu_id, detail):
                self._emit("fault", cpu_id, what=kind, **detail)
                call_next(kind, cpu_id, detail)
            return fault

        seams.wrap(machine, "_fault_event", make_fault)

    def detach(self):
        """Remove the tracer's seam wrappers — exactly.

        Wrappers are spliced out of each seam's stack wherever they sit,
        so a tracer can detach before or after any other instrument
        stacked on the same seams.  If a foreign wrapper (one that
        captured its downstream directly) pins a tracer wrapper in
        place, the wrapper stays as a gated passthrough and simply stops
        emitting.
        """
        if not self._attached:
            return
        self._attached = False
        self._active = False
        self._seams.restore()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def for_cpu(self, cpu_id):
        return [e for e in self.events if e.cpu == cpu_id]

    def between(self, start, end):
        return [e for e in self.events if start <= e.cycle <= end]

    def format(self, kinds=None):
        """Render the (optionally filtered) trace as text."""
        selected = self.events
        if kinds is not None:
            wanted = frozenset(kinds)
            selected = [e for e in selected if e.kind in wanted]
        lines = [str(e) for e in selected]
        if self.dropped:
            lines.append(
                f"... {self.dropped} more events dropped at the sink's "
                f"capacity")
        return "\n".join(lines)
