"""Structured event tracing for the simulated machine.

A :class:`Tracer` attaches to a :class:`~repro.sim.engine.Machine` and
records architectural events — commits, violation posts and deliveries,
handler dispatches, rollbacks, parks/wakes — as typed records with
timestamps.  It is the debugging instrument for everything the paper's
mechanisms make subtle (who violated whom, at which nesting level, which
handler ran, what got rolled back), and several regression tests assert
against traces directly.

Usage::

    machine = Machine(config)
    tracer = Tracer(machine, kinds={"commit", "violation"})
    ... run ...
    for event in tracer.events:
        print(event)
    tracer.detach()

Tracing is implemented by wrapping a handful of well-defined seams
(HtmSystem.commit / rollback_to, the violation sink, Machine.wake,
Machine._push_dispatcher, Machine._park, Machine._fault_event);
``detach`` restores them.  Overhead is zero when no tracer is attached.

``fault`` events record injections by an attached
:class:`repro.faults.FaultInjector`; on a machine without one the kind
simply never fires.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One architectural event."""

    cycle: int
    kind: str       # commit | violation | delivery | dispatch | rollback
    #                 | wake | park | fault
    cpu: int
    detail: dict

    def __str__(self):
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.cycle:>8}] cpu{self.cpu} {self.kind:<9} {parts}"


#: All traceable event kinds.
ALL_KINDS = frozenset(
    {"commit", "violation", "delivery", "dispatch", "rollback", "wake",
     "park", "fault"})


class Tracer:
    """Records machine events until detached."""

    def __init__(self, machine, kinds=None, limit=100_000):
        self.machine = machine
        self.kinds = frozenset(kinds) if kinds is not None else ALL_KINDS
        unknown = self.kinds - ALL_KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self.limit = limit
        self.events = []
        self._saved = {}
        self._attach()

    # ------------------------------------------------------------------

    def _emit(self, kind, cpu, **detail):
        if kind not in self.kinds or len(self.events) >= self.limit:
            return
        self.events.append(TraceEvent(
            cycle=self.machine.now, kind=kind, cpu=cpu, detail=detail))

    def _attach(self):
        machine = self.machine
        htm = machine.htm

        self._saved["commit"] = htm.commit

        def commit(cpu_id, _orig=htm.commit):
            result = _orig(cpu_id)
            if result.kind in ("outer", "open"):
                self._emit("commit", cpu_id, what=result.kind,
                           words=len(result.written_words))
            else:
                self._emit("commit", cpu_id, what=result.kind)
            return result

        htm.commit = commit

        self._saved["rollback_to"] = htm.rollback_to

        def rollback_to(cpu_id, level, now=0, _orig=htm.rollback_to):
            self._emit("rollback", cpu_id, level=level)
            return _orig(cpu_id, level, now)

        htm.rollback_to = rollback_to

        self._saved["sink"] = htm.detector._sink

        def sink(violation, _orig=htm.detector._sink):
            self._emit("violation", violation.victim, mask=violation.mask,
                       addr=violation.addr, source=violation.source)
            _orig(violation)

        htm.detector._sink = sink

        self._saved["push"] = machine._push_dispatcher

        def push(cpu, kind, _orig=machine._push_dispatcher):
            _orig(cpu, kind)
            if kind == "violation":
                self._emit("delivery", cpu.cpu_id,
                           mask=cpu.isa.xvcurrent, addr=cpu.isa.xvaddr)
            self._emit("dispatch", cpu.cpu_id, what=kind,
                       depth=cpu.dispatch_depth)

        machine._push_dispatcher = push

        self._saved["wake"] = machine.wake

        def wake(cpu_id, _orig=machine.wake):
            self._emit("wake", cpu_id,
                       state=machine.cpus[cpu_id].state)
            _orig(cpu_id)

        machine.wake = wake

        self._saved["park"] = machine._park

        def park(cpu, _orig=machine._park):
            self._emit("park", cpu.cpu_id, depth=machine.htm.depth(cpu.cpu_id))
            _orig(cpu)

        machine._park = park

        self._saved["fault"] = machine._fault_event

        def fault(kind, cpu_id, detail, _orig=machine._fault_event):
            self._emit("fault", cpu_id, what=kind, **detail)
            _orig(kind, cpu_id, detail)

        machine._fault_event = fault

    def detach(self):
        """Restore the machine's un-traced seams."""
        if not self._saved:
            return
        machine = self.machine
        machine.htm.commit = self._saved["commit"]
        machine.htm.rollback_to = self._saved["rollback_to"]
        machine.htm.detector._sink = self._saved["sink"]
        machine._push_dispatcher = self._saved["push"]
        machine.wake = self._saved["wake"]
        machine._park = self._saved["park"]
        machine._fault_event = self._saved["fault"]
        self._saved = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def for_cpu(self, cpu_id):
        return [e for e in self.events if e.cpu == cpu_id]

    def between(self, start, end):
        return [e for e in self.events if start <= e.cycle <= end]

    def format(self, kinds=None):
        """Render the (optionally filtered) trace as text."""
        selected = self.events
        if kinds is not None:
            wanted = frozenset(kinds)
            selected = [e for e in selected if e.kind in wanted]
        return "\n".join(str(e) for e in selected)
