"""The execution-driven chip-multiprocessor simulation engine.

:class:`Machine` runs one simulated program per CPU.  Programs are Python
generators yielding :mod:`~repro.sim.ops` operations; the engine is a
discrete-event scheduler that picks the next runnable CPU through a
pluggable :class:`~repro.sim.schedule.SchedulePolicy`.  The default
policy steps the runnable CPU with the smallest local time (ties break by
CPU id), so inter-CPU event ordering is globally consistent and fully
deterministic; the checking layer substitutes randomized policies to
explore other interleavings.

The engine also implements the *hardware* side of the paper's handler
architecture:

* at every instruction boundary it checks the violation registers and, if
  a conflict is pending and reporting is enabled, suspends the program and
  runs the dispatcher code named by ``xvhcode`` (or ``xahcode`` after an
  ``xabort``) as an interrupt-style frame on the same CPU;
* when a dispatcher decides to roll back, the engine throws
  :class:`~repro.common.errors.TxRollback` into the program, unwinding the
  Python frames of the transaction body down to its ``atomic`` wrapper —
  the model of discarding the speculative register state and jumping to
  the restart PC.
"""

from __future__ import annotations

import heapq

from repro.common.errors import (
    CapacityAbort,
    DeadlockError,
    SimulationError,
    TxRollback,
)
from repro.htm.system import HtmSystem
from repro.isa.codereg import CodeRegistry
from repro.isa.context import DONE, RUNNABLE, WAITING, Cpu
from repro.isa.dispatch import (
    HandlerOutcome,
    default_abort_dispatcher,
    default_violation_dispatcher,
)
from repro.isa.state import IsaState
from repro.memsys.hierarchy import make_memory_model
from repro.memsys.memory import MemoryImage
from repro.common.stats import Stats
from repro.sim.ops import Op
from repro.sim.schedule import DeterministicPolicy

#: Hard cap on consecutive capacity aborts of one transaction before the
#: engine declares the workload unrunnable on this hardware configuration.
CAPACITY_RETRY_LIMIT = 16

#: Shared journal record for a parked-op re-issue (no generator call).
_FEED_PARKED = ("p",)


class Machine:
    """One simulated CMP: CPUs, memory system, HTM, and the scheduler."""

    def __init__(self, config, stats=None, policy=None):
        self.config = config
        self.stats = stats if stats is not None else Stats()
        #: Ready-CPU selection strategy (repro.sim.schedule).  The default
        #: deterministic policy reproduces the historical schedule exactly.
        self.policy = policy if policy is not None else DeterministicPolicy()
        self.memory = MemoryImage()
        self.memmodel = make_memory_model(config, self.stats)
        self.htm = HtmSystem(config, self.memory, self.stats)
        self.codereg = CodeRegistry()
        self.cpus = [Cpu(cpu_id, self) for cpu_id in range(config.n_cpus)]
        self.htm.attach_violation_sink(self._on_violation)
        self.now = 0
        #: Cold-path fault hooks (repro.faults.FaultInjector when one is
        #: attached, else None).  Library code that wants an injectable
        #: seam outside the engine's own methods — txio's syscalls, the
        #: allocator — probes this attribute; with no injector attached
        #: the probe is a single getattr on the cold path and the hot
        #: paths are untouched.
        self.fault_hooks = None
        #: Choice-point observation seam: when not None, called as
        #: ``step_hook(cpu)`` after every completed scheduling step, in
        #: 1:1 correspondence with the policy's ``choose`` calls (heap
        #:-served deterministic runs make no ``choose`` calls and the
        #: hook then simply fires per step).  The model checker's
        #: recorder (repro.check.explore) uses it to close each step's
        #: read/write footprint; a None hook costs one attribute probe
        #: per step and leaves simulated cycle counts untouched.
        self.step_hook = None
        #: Step journal (repro.sim.snapshot.StepJournal) when snapshot
        #: checkpointing is enabled.  None keeps every hot path at a
        #: single attribute probe.
        self._journal = None
        #: Steps executed before this run's loop started: a machine
        #: restored from a mid-run snapshot resumes the count here so
        #: ``engine.steps`` matches the straight-line run bit-for-bit.
        self._steps_base = 0
        #: Called as ``checkpoint_hook(self, n_steps)`` after every
        #: journaled step where ``n_steps`` is a multiple of
        #: ``checkpoint_interval``; the explorer deposits prefix
        #: checkpoints through it.  Only probed when the journal is
        #: enabled.  Gating on the interval here keeps the per-step cost
        #: of a sparse hook at one modulo instead of a Python call.
        self.checkpoint_hook = None
        self.checkpoint_interval = 1
        self._capacity_retries = [0] * config.n_cpus
        #: Heap-backed ready queue: (resume_at, cpu_id) entries, kept for
        #: the deterministic policy so picking the next CPU is O(log n)
        #: instead of a full scan.  Entries go stale when a CPU's state
        #: or resume_at changes; _pop_ready discards them lazily.
        self._ready = []
        self._use_heap = bool(getattr(self.policy, "uses_ready_heap", False))
        #: Non-daemon programs still bound to a CPU; the run loop ends
        #: when this reaches zero (replaces the per-step all-CPUs scan).
        self._live_programs = 0
        # Pre-bound per-CPU counters for the dispatch/outcome hot paths
        # (same counter names as before, resolved once instead of an
        # f-string per event).
        self._n_resumes = [
            cpu.stats.counter("htm.handler_resumes") for cpu in self.cpus]
        self._n_rollbacks = [
            cpu.stats.counter("htm.handler_rollbacks") for cpu in self.cpus]
        self._n_dispatches = {
            kind: [cpu.stats.counter(f"htm.dispatches_{kind}")
                   for cpu in self.cpus]
            for kind in ("violation", "abort")
        }
        self._n_capacity_aborts = [
            cpu.stats.counter("htm.capacity_aborts") for cpu in self.cpus]

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def make_isa_state(self, cpu_id):
        return IsaState(cpu_id)

    def add_thread(self, program_factory, cpu_id=None, daemon=False):
        """Bind a program to a CPU.

        ``program_factory(t)`` must return a generator; ``t`` is the
        :class:`~repro.isa.context.Cpu` handle the program drives.
        """
        if cpu_id is None:
            cpu_id = next(
                (c.cpu_id for c in self.cpus if c.state == DONE
                 and not c.frames), None)
            if cpu_id is None:
                raise SimulationError("no free CPU for program")
        cpu = self.cpus[cpu_id]
        if cpu.frames:
            raise SimulationError(f"cpu {cpu_id} already has a program")
        program = program_factory(cpu)
        if not hasattr(program, "send"):
            raise SimulationError(
                "program_factory must return a generator (did you forget "
                "a yield?)")
        cpu.frames = [program]
        cpu.state = RUNNABLE
        cpu.resume_at = 0
        cpu.daemon = daemon
        # Rebinding a DONE CPU must not leak the previous program's
        # state into this one: a stale banked wake token would suppress
        # the new program's first YieldCpu sleep, and a stale pending op
        # result would be sent into the just-started generator.
        cpu.wake_tokens = 0
        cpu.send_value = None
        cpu.throw_exc = None
        cpu.pending_abort = False
        if not daemon:
            self._live_programs += 1
        if self._use_heap:
            heapq.heappush(self._ready, (cpu.resume_at, cpu.cpu_id))
        return cpu

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------

    def _on_violation(self, violation):
        self.cpus[violation.victim].deliver(violation)

    def wake(self, cpu_id):
        """Wake ``cpu_id`` (IPI); a wakeup of a runnable thread banks a
        token so a subsequent ``YieldCpu`` does not sleep (no lost
        wakeups)."""
        cpu = self.cpus[cpu_id]
        if cpu.state == WAITING:
            cpu.state = RUNNABLE
            cpu.resume_at = max(cpu.resume_at, self.now + 1)
            if self._use_heap:
                heapq.heappush(self._ready, (cpu.resume_at, cpu.cpu_id))
        elif cpu.state == RUNNABLE:
            cpu.wake_tokens += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles=200_000_000, max_steps=None):
        """Run until every non-daemon program finishes.

        Returns the final cycle count.  Raises
        :class:`~repro.common.errors.DeadlockError` if all live threads
        are waiting, and :class:`SimulationError` on cycle overrun.
        """
        # The deterministic policy's (resume_at, cpu_id) pick is exactly
        # the heap order, so the engine short-circuits policy.choose with
        # a pop; randomized policies still see the full runnable list.
        use_heap = self._use_heap = bool(
            getattr(self.policy, "uses_ready_heap", False))
        if use_heap:
            self._ready = [
                (cpu.resume_at, cpu.cpu_id) for cpu in self.cpus
                if cpu.frames and cpu.state == RUNNABLE
            ]
            heapq.heapify(self._ready)
        try:
            return self._run_loop(use_heap, max_cycles, max_steps)
        finally:
            # Plain-attribute hot counters become visible stats even when
            # the run ends in DeadlockError/SimulationError.
            for cpu in self.cpus:
                cpu.flush_stats()
            self.memmodel.flush_stats()
            self.htm.flush_stats()

    def _run_loop(self, use_heap, max_cycles, max_steps):
        # Loop-invariant lookups hoisted out of the per-step path; the
        # seam-wrapped callables (self._step, self.step_hook, the policy)
        # stay attribute probes so instruments and fault injectors that
        # rebind them mid-run keep working.
        cpus = self.cpus
        heappush = heapq.heappush
        choose = self.policy.choose
        steps = 0
        try:
            while self._live_programs > 0:
                if use_heap:
                    cpu = self._pop_ready()
                else:
                    runnable = [
                        cpu for cpu in cpus
                        if cpu.frames and cpu.state == RUNNABLE
                    ]
                    cpu = choose(runnable) if runnable else None
                if cpu is None:
                    waiting = [
                        cpu.cpu_id for cpu in cpus
                        if cpu.frames and cpu.state == WAITING
                        and not cpu.daemon
                    ]
                    raise DeadlockError(
                        f"all threads waiting at cycle {self.now}: {waiting}")
                while True:
                    if cpu.resume_at > self.now:
                        self.now = cpu.resume_at
                    if self.now > max_cycles:
                        raise SimulationError(
                            f"simulation exceeded {max_cycles} cycles")
                    steps += 1
                    if max_steps is not None and steps > max_steps:
                        raise SimulationError(
                            f"simulation exceeded {max_steps} steps")
                    self._step(cpu)
                    hook = self.step_hook
                    if hook is not None:
                        hook(cpu)
                    journal = self._journal
                    if journal is not None:
                        journal.close_step(self, cpu)
                        chook = self.checkpoint_hook
                        if chook is not None:
                            n_steps = len(journal.entries)
                            if n_steps % self.checkpoint_interval == 0:
                                chook(self, n_steps)
                    if not (use_heap and cpu.state == RUNNABLE
                            and cpu.frames):
                        break
                    # Run-ahead: when no ready entry could be popped
                    # before this CPU's next step — (resume_at, cpu_id)
                    # heap order, so the comparison *is* the scheduling
                    # decision — step it again without the push/pop
                    # round-trip.  An equal head entry is this CPU's own
                    # stale entry (same key = same cpu_id); anything
                    # smaller wins the pop, so park our entry and yield.
                    ready = self._ready
                    entry = (cpu.resume_at, cpu.cpu_id)
                    if ready and ready[0] < entry:
                        heappush(ready, entry)
                        break
                    if self._live_programs <= 0:
                        break
        finally:
            # Failed runs (DeadlockError, cycle overrun, workload
            # exceptions) keep their cycle and step counts — the stats
            # must describe the run that actually happened, not only
            # clean exits.
            self.stats.set("cycles", self.now)
            self.stats.add("engine.steps", steps + self._steps_base)
        for failed in self.cpus:
            if failed.failure is not None:
                raise failed.failure
        return self.now

    def _pop_ready(self):
        """Pop the earliest valid (resume_at, cpu_id) ready entry.

        Entries are pushed whenever a CPU becomes runnable or changes
        its resume_at; superseded entries are detected here (the CPU is
        no longer runnable, or its resume_at moved) and dropped.  A
        matching entry is always the deterministic policy's choice:
        every runnable CPU has an up-to-date entry, so the heap minimum
        that matches equals the minimum over all runnable CPUs.
        Returns None when no runnable CPU remains.
        """
        ready = self._ready
        cpus = self.cpus
        while ready:
            resume_at, cpu_id = heapq.heappop(ready)
            cpu = cpus[cpu_id]
            if (cpu.state == RUNNABLE and cpu.frames
                    and cpu.resume_at == resume_at):
                return cpu
        return None

    # ------------------------------------------------------------------

    def _step(self, cpu):
        # Instruction-boundary checks: abort dispatch takes priority, then
        # violation delivery.  The reporting-enable flag is the hardware
        # guard — it is cleared on dispatch and restored by xvret, so a
        # handler is not recursively interrupted unless it deliberately
        # re-enables reporting (xenviolrep before an open-nested
        # transaction, paper footnote 1).
        journal = self._journal
        if journal is not None:
            journal.begin_step(cpu, self.now)
        if cpu.throw_exc is None:
            if cpu.pending_abort:
                cpu.pending_abort = False
                self._push_dispatcher(cpu, kind="abort")
            else:
                isa = cpu.isa
                # Direct ``_vqueue`` probe == isa.has_deliverable(),
                # minus a method call on the per-instruction path.
                if isa.viol_reporting and isa._vqueue:
                    # A stalled operation (e.g. waiting for the commit
                    # token) that gets overtaken by a violation stays
                    # parked: it re-issues if the handler resumes, and is
                    # dropped by the rollback path.
                    self._push_dispatcher(cpu, kind="violation")

        # Fetch the next operation (or retry this frame's stalled one).
        # The generator resume (``_advance``) is inlined: it runs once
        # per dynamic instruction and the call frame alone is measurable.
        parked = cpu.parked
        frame_index = len(cpu.frames) - 1
        if parked and frame_index in parked and cpu.throw_exc is None:
            if journal is not None:
                journal.stage_feed(_FEED_PARKED)
            op = parked.pop(frame_index)
        else:
            exc = cpu.throw_exc
            try:
                if exc is not None:
                    cpu.throw_exc = None
                    if journal is not None:
                        journal.stage_feed(("t", exc))
                    op = cpu.frames[-1].throw(exc)
                else:
                    value = cpu.send_value
                    cpu.send_value = None
                    if journal is not None:
                        journal.stage_feed(("s", value))
                    op = cpu.frames[-1].send(value)
            except StopIteration as stop:
                self._frame_finished(cpu, stop.value)
                return
            except TxRollback as rollback:
                self._rollback_escaped(cpu, rollback)
                return
            except Exception as error:  # noqa: BLE001 - workload bugs
                cpu.failure = error
                self._kill(cpu)
                return
        if not isinstance(op, Op):
            cpu.failure = SimulationError(
                f"cpu {cpu.cpu_id} yielded non-op {op!r}")
            self._kill(cpu)
            return

        # Execute.  The frame stack cannot change during execute, so the
        # fetched frame_index stays valid for the stall-park below.
        now = self.now
        try:
            outcome = cpu.execute(op, now)
        except CapacityAbort as overflow:
            self._handle_capacity_abort(cpu, overflow)
            return
        if outcome.stall:
            # Retry quickly: an eager-mode winner must re-issue its access
            # inside the victim's rollback window, before the restarted
            # victim re-acquires the line (the LogTM retry-after-NACK).
            parked[frame_index] = op
            cpu.resume_at = now + 2
            return
        self._capacity_retries[cpu.cpu_id] = 0
        cpu.send_value = outcome.value
        latency = outcome.latency
        cpu.resume_at = now + (latency if latency > 1 else 1)
        if outcome.deschedule:
            self._park(cpu)

    def _park(self, cpu):
        """Deschedule ``cpu`` until a wake (the YieldCpu sleep side).

        A seam: the tracer wraps this to emit ``park`` events and the
        fault injector wraps it to flush delayed violations before the
        CPU goes to sleep (a parked CPU must not miss its wake)."""
        cpu.state = WAITING

    def _fault_event(self, kind, cpu_id, detail):
        """Notification seam: a fault injector just fired ``kind`` on
        ``cpu_id``.  A no-op on the bare machine; the tracer wraps it to
        record ``fault`` trace events."""

    def _rollback_escaped(self, cpu, rollback):
        """A rollback escaped the frame ``_step`` just resumed.  From a
        dispatcher frame this is the normal hand-off to the program
        below; from the program frame it means no atomic wrapper caught
        it."""
        if len(cpu.frames) > 1:
            # The dispatcher died before finishing: re-queue the
            # conflict it was handling for any level that survives
            # this rollback (it must be re-delivered, not silently
            # dropped), then restore the interrupted frame's violation
            # registers so that if *it* is also a dying dispatcher,
            # its record is re-queued in turn on the next unwind step.
            cpu.isa.requeue_current(rollback.level)
            cpu.parked.pop(len(cpu.frames) - 1, None)
            cpu.frames.pop()
            cpu.dispatch_depth -= 1
            index = len(cpu.frames) - 1
            cpu.parked.pop(index, None)
            cpu.saved_sends.pop(index, None)
            saved = cpu.saved_viol.pop(index, None)
            if saved is not None:
                cpu.isa.xvcurrent, cpu.isa.xvaddr = saved
            cpu.isa.viol_reporting = True
            cpu.throw_exc = rollback
            return
        cpu.failure = SimulationError(
            f"cpu {cpu.cpu_id}: rollback escaped the program "
            f"(level {rollback.level}, {rollback.reason})")
        self._kill(cpu)

    def _frame_finished(self, cpu, value):
        if len(cpu.frames) > 1:
            # A dispatcher returned its outcome.
            cpu.frames.pop()
            cpu.dispatch_depth -= 1
            index = len(cpu.frames) - 1
            cpu.send_value = cpu.saved_sends.pop(index, None)
            saved = cpu.saved_viol.pop(index, None)
            if saved is not None:
                cpu.isa.xvcurrent, cpu.isa.xvaddr = saved
            outcome = value if value is not None else HandlerOutcome.resume()
            self._apply_outcome(cpu, outcome)
            return
        # The program finished.  Clear the dispatch bookkeeping exactly
        # like _kill does: anything left behind (a parked op, a saved op
        # result, saved violation registers) belongs to the finished
        # program, and a CPU rebound via add_thread must not replay it.
        cpu.frames = []
        cpu.parked.clear()
        cpu.saved_sends.clear()
        cpu.saved_viol.clear()
        cpu.dispatch_depth = 0
        cpu.result = value
        cpu.state = DONE
        if not cpu.daemon:
            self._live_programs -= 1
        if self.htm.depth(cpu.cpu_id):
            cpu.failure = SimulationError(
                f"cpu {cpu.cpu_id} finished inside an open transaction "
                f"(depth {self.htm.depth(cpu.cpu_id)})")

    def _apply_outcome(self, cpu, outcome):
        if not isinstance(outcome, HandlerOutcome):
            cpu.failure = SimulationError(
                f"cpu {cpu.cpu_id}: dispatcher returned {outcome!r}, "
                "not a HandlerOutcome")
            self._kill(cpu)
            return
        # xvret re-enabled reporting; any conflicts that arrived while the
        # handler ran are still queued and will re-invoke the innermost
        # handler at the next instruction boundary (§4.6).
        cpu.isa.viol_reporting = True
        if outcome.kind == "resume":
            self._n_resumes[cpu.cpu_id].add()
            return
        self._n_rollbacks[cpu.cpu_id].add()
        # The frame receives an exception, not a value; drop its parked
        # op and any saved op result.
        cpu.parked.pop(len(cpu.frames) - 1, None)
        cpu.send_value = None
        cpu.throw_exc = TxRollback(
            outcome.level, outcome.reason, code=outcome.code,
            vaddr=outcome.vaddr)

    def _push_dispatcher(self, cpu, kind):
        isa = cpu.isa
        isa.xvpc = cpu.icount
        isa.viol_reporting = False
        # Save the interrupted frame's violation registers and pending op
        # result; both are restored when the dispatcher resumes it.
        cpu.saved_viol[len(cpu.frames) - 1] = (isa.xvcurrent, isa.xvaddr)
        if kind == "violation":
            isa.pop_next()
            code_id = isa.xvhcode
            factory = (self.codereg.get(code_id) if code_id
                       else default_violation_dispatcher)
        else:
            code_id = isa.xahcode
            factory = (self.codereg.get(code_id) if code_id
                       else default_abort_dispatcher)
        cpu.saved_sends[len(cpu.frames) - 1] = cpu.send_value
        cpu.send_value = None
        cpu.frames.append(factory(cpu))
        cpu.dispatch_depth += 1
        self._n_dispatches[kind][cpu.cpu_id].add()
        if self._journal is not None:
            # Post-pop register values: the ghost replay cannot rerun
            # pop_next (its queue drifts), so the record carries them.
            self._journal.stage_push(
                kind, code_id, isa.xvcurrent, isa.xvaddr, isa.xvpc)

    def _handle_capacity_abort(self, cpu, overflow):
        self._capacity_retries[cpu.cpu_id] += 1
        self._n_capacity_aborts[cpu.cpu_id].add()
        if self._capacity_retries[cpu.cpu_id] > CAPACITY_RETRY_LIMIT:
            cpu.failure = SimulationError(
                f"cpu {cpu.cpu_id}: transaction exceeds hardware capacity "
                f"even after {CAPACITY_RETRY_LIMIT} retries: "
                f"{overflow.detail}")
            self._kill(cpu)
            return
        if self.htm.depth(cpu.cpu_id) >= 1:
            cpu.do_rollback(1)
        # Unwind any dispatcher frames, then the program, to level 1.
        while len(cpu.frames) > 1:
            cpu.frames.pop()
            cpu.dispatch_depth -= 1
        cpu.isa.viol_reporting = True
        cpu.pending_abort = False
        cpu.parked.clear()
        cpu.saved_sends.clear()
        cpu.saved_viol.clear()
        cpu.send_value = None
        # The abort discards the transaction the wakeup was aimed at; a
        # banked token surviving it would eat the retry's next sleep.
        cpu.wake_tokens = 0
        cpu.throw_exc = CapacityAbort(1, overflow.detail)
        cpu.resume_at = self.now + 1
        if self._journal is not None:
            self._journal.stage_unwound()

    def _kill(self, cpu):
        if cpu.frames and not cpu.daemon:
            self._live_programs -= 1
        for frame in reversed(cpu.frames):
            frame.close()
        cpu.frames = []
        cpu.parked.clear()
        cpu.saved_sends.clear()
        cpu.saved_viol.clear()
        cpu.dispatch_depth = 0
        # Tokens banked for the dead program must not suppress a later
        # program's first YieldCpu sleep on a rebound CPU.
        cpu.wake_tokens = 0
        cpu.send_value = None
        cpu.throw_exc = None
        cpu.pending_abort = False
        cpu.state = DONE
        self.htm.abandon_all(cpu.cpu_id)

    # ------------------------------------------------------------------
    # Snapshot / restore (repro.sim.snapshot)
    # ------------------------------------------------------------------

    def enable_journal(self):
        """Start recording the step journal snapshots replay from.
        Returns the journal; idempotent."""
        if self._journal is None:
            from repro.sim.snapshot import StepJournal

            self._journal = StepJournal()
        return self._journal

    def snapshot(self):
        """Deep, deterministic capture of the whole machine mid-run.

        Requires :meth:`enable_journal` to have been called before the
        run started; see :mod:`repro.sim.snapshot` for the model."""
        from repro.sim.snapshot import capture

        return capture(self)

    def restore(self, snapshot, setup_fn, restore_policy=True):
        """Restore this machine to ``snapshot`` so a subsequent
        :meth:`run` resumes mid-schedule.  ``setup_fn(machine)`` must
        re-run the original program setup (same program, same seed) and
        return the program object.  ``restore_policy=False`` leaves
        ``self.policy`` untouched for callers that install their own
        (the explore layer gives each child its own controlled policy)."""
        from repro.sim.snapshot import restore

        return restore(self, snapshot, setup_fn, restore_policy)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def results(self):
        """Per-CPU program return values."""
        return {cpu.cpu_id: cpu.result for cpu in self.cpus}
