"""Execution-driven CMP simulation: the engine and the op vocabulary.

``Machine`` is exported lazily to avoid an import cycle (the engine
imports the ISA layer, which imports :mod:`repro.sim.ops`).
"""

from repro.sim import ops
from repro.sim.schedule import (
    DeterministicPolicy,
    PriorityPolicy,
    RandomPolicy,
    SchedulePolicy,
    make_policy,
)
from repro.sim.trace import ALL_KINDS, TraceEvent, Tracer

__all__ = ["ALL_KINDS", "CAPACITY_RETRY_LIMIT", "DeterministicPolicy",
           "Machine", "PriorityPolicy", "RandomPolicy", "SchedulePolicy",
           "TraceEvent", "Tracer", "make_policy", "ops"]


def __getattr__(name):
    if name in ("Machine", "CAPACITY_RETRY_LIMIT"):
        from repro.sim import engine

        return getattr(engine, name)
    raise AttributeError(name)
